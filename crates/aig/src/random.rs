//! Deterministic pseudo-random AIG generation for tests and fuzzing.
//!
//! Uses an embedded SplitMix64 generator so the crate stays
//! dependency-free; all generation is reproducible from the seed.

use crate::{Aig, Lit};

/// A tiny deterministic PRNG (SplitMix64), sufficient for structural
/// randomness in tests.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Returns a uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Generates a random combinational AIG with the requested interface.
///
/// Fanins are drawn from all previously created nodes with a bias toward
/// recent nodes, which yields deep, reconvergent structures similar to
/// optimized logic. The last `num_pos` created nodes drive the POs (with
/// random complementation).
///
/// # Panics
///
/// Panics if `num_pis == 0`.
pub fn random_aig(num_pis: usize, num_ands: usize, num_pos: usize, seed: u64) -> Aig {
    assert!(num_pis > 0, "a random AIG needs at least one input");
    let mut rng = SplitMix64::new(seed);
    let mut aig = Aig::with_capacity(1 + num_pis + num_ands);
    let mut lits: Vec<Lit> = (0..num_pis).map(|_| aig.add_input()).collect();
    let mut created = 0usize;
    let mut attempts = 0usize;
    while created < num_ands && attempts < num_ands * 8 {
        attempts += 1;
        // Bias toward recent nodes: pick from the last half most of the time.
        let pick = |rng: &mut SplitMix64, n: usize| {
            if n > 2 && rng.below(4) != 0 {
                n / 2 + rng.below(n - n / 2)
            } else {
                rng.below(n)
            }
        };
        let a = lits[pick(&mut rng, lits.len())].xor(rng.bool());
        let b = lits[pick(&mut rng, lits.len())].xor(rng.bool());
        let before = aig.num_nodes();
        let f = aig.and(a, b);
        if aig.num_nodes() > before {
            lits.push(f);
            created += 1;
        }
    }
    let n = lits.len();
    for k in 0..num_pos {
        let idx = n - 1 - (k % n.min(num_pos.max(1)));
        aig.add_po(lits[idx].xor(rng.bool()));
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = random_aig(8, 50, 4, 42);
        let b = random_aig(8, 50, 4, 42);
        assert_eq!(a.num_nodes(), b.num_nodes());
        for v in 0..16u32 {
            let bits: Vec<bool> = (0..8).map(|i| v >> i & 1 == 1).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_aig(8, 60, 2, 1);
        let b = random_aig(8, 60, 2, 2);
        let same = (0..256u32).all(|v| {
            let bits: Vec<bool> = (0..8).map(|i| v >> i & 1 == 1).collect();
            a.eval(&bits) == b.eval(&bits)
        });
        assert!(!same, "distinct seeds should give distinct functions");
    }

    #[test]
    fn respects_interface_counts() {
        let aig = random_aig(5, 30, 3, 7);
        assert_eq!(aig.num_pis(), 5);
        assert_eq!(aig.num_pos(), 3);
        assert!(aig.num_ands() <= 30);
        aig.check_invariants().unwrap();
    }

    #[test]
    fn splitmix_below_is_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}

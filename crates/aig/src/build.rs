//! Structure-preserving construction helpers: importing one AIG into
//! another, duplication (`double`), cone extraction and substitution-based
//! rebuilding (the mechanism behind miter reduction).

use crate::{Aig, Lit, Node, Var};

impl Aig {
    /// Copies the logic of `other` into `self`, driving `other`'s PIs with
    /// the literals in `pi_map`, and returns `other`'s PO literals expressed
    /// in `self`.
    ///
    /// New gates are structurally hashed into `self`, so shared logic is
    /// deduplicated automatically.
    ///
    /// # Panics
    ///
    /// Panics if `pi_map.len() != other.num_pis()`.
    pub fn append(&mut self, other: &Aig, pi_map: &[Lit]) -> Vec<Lit> {
        assert_eq!(
            pi_map.len(),
            other.num_pis(),
            "pi_map must cover all PIs of the appended AIG"
        );
        let mut map: Vec<Lit> = Vec::with_capacity(other.num_nodes());
        for node in other.nodes() {
            let lit = match node {
                Node::Const => Lit::FALSE,
                Node::Input(pi) => pi_map[*pi as usize],
                Node::And(a, b) => {
                    let fa = map[a.var().index()].xor(a.is_complemented());
                    let fb = map[b.var().index()].xor(b.is_complemented());
                    self.and(fa, fb)
                }
            };
            map.push(lit);
        }
        other
            .pos()
            .iter()
            .map(|po| map[po.var().index()].xor(po.is_complemented()))
            .collect()
    }

    /// Produces a network containing two independent copies of this one,
    /// doubling PIs, POs and gates — the equivalent of the ABC `double`
    /// command used by the paper to enlarge benchmarks.
    pub fn double(&self) -> Aig {
        let mut out = Aig::with_capacity(self.num_nodes() * 2);
        let pis_a: Vec<Lit> = (0..self.num_pis()).map(|_| out.add_input()).collect();
        let pis_b: Vec<Lit> = (0..self.num_pis()).map(|_| out.add_input()).collect();
        let pos_a = out.append(self, &pis_a);
        let pos_b = out.append(self, &pis_b);
        for po in pos_a.into_iter().chain(pos_b) {
            out.add_po(po);
        }
        out
    }

    /// Applies `double` `n` times (the paper's `nxd` benchmark suffix).
    pub fn double_times(&self, n: usize) -> Aig {
        let mut aig = self.clone();
        for _ in 0..n {
            aig = aig.double();
        }
        aig
    }

    /// Rebuilds the network keeping only logic reachable from the POs,
    /// removing dangling nodes and re-hashing all gates.
    ///
    /// All PIs are kept (in order) even if unreferenced, so the PI
    /// interface is stable. Returns the cleaned AIG.
    pub fn clean(&self) -> Aig {
        self.clean_with_map().0
    }

    /// Like [`Aig::clean`], additionally returning the map from this
    /// network's variables to literals of the cleaned network. Variables
    /// whose logic was unreachable from the POs map to the [`Lit::FALSE`]
    /// sentinel (only the constant variable itself maps there
    /// legitimately).
    pub fn clean_with_map(&self) -> (Aig, Vec<Lit>) {
        let mut reachable = vec![false; self.num_nodes()];
        let mut stack: Vec<Var> = self.pos().iter().map(|po| po.var()).collect();
        while let Some(v) = stack.pop() {
            if reachable[v.index()] {
                continue;
            }
            reachable[v.index()] = true;
            if let Node::And(a, b) = self.node(v) {
                stack.push(a.var());
                stack.push(b.var());
            }
        }
        let mut out = Aig::with_capacity(self.num_nodes());
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.num_nodes()];
        for pi in self.pis() {
            map[pi.index()] = out.add_input();
        }
        for (i, node) in self.nodes().iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            if let Node::And(a, b) = node {
                let fa = map[a.var().index()].xor(a.is_complemented());
                let fb = map[b.var().index()].xor(b.is_complemented());
                map[i] = out.and(fa, fb);
            }
        }
        for po in self.pos() {
            let lit = map[po.var().index()].xor(po.is_complemented());
            out.add_po(lit);
        }
        (out, map)
    }

    /// Rebuilds the network while substituting nodes by equivalent
    /// literals: `subst[v]` is the literal (over *this* network's
    /// variables) that must implement variable `v` in the result.
    ///
    /// This is the merge step of sweeping: after a pair `(repr, n)` is
    /// proved equivalent, setting `subst[n] = repr_lit` redirects all of
    /// `n`'s fanouts to the representative. Substitution targets must have
    /// smaller variable indices than the node they replace (guaranteed when
    /// representatives are minimum-id class members).
    ///
    /// Returns the reduced AIG and a map from old variables to literals
    /// *of the returned (cleaned) AIG*: `map[v]` implements old variable
    /// `v` in the result. Old variables whose logic is absent from the
    /// result — substituted to a constant, or left dangling by the
    /// clean-up — map to a constant literal (the [`Lit::FALSE`] sentinel
    /// for dangling nodes).
    ///
    /// # Panics
    ///
    /// Panics if `subst.len() != self.num_nodes()` or if a substitution
    /// target does not precede the substituted node.
    pub fn rebuild_with_substitution(&self, subst: &[Lit]) -> (Aig, Vec<Lit>) {
        assert_eq!(
            subst.len(),
            self.num_nodes(),
            "substitution map size mismatch"
        );
        let mut out = Aig::with_capacity(self.num_nodes());
        let mut map: Vec<Lit> = Vec::with_capacity(self.num_nodes());
        for (i, node) in self.nodes().iter().enumerate() {
            let target = subst[i];
            let lit = if target != Var::new(i as u32).lit() {
                // Redirected to an equivalent literal built earlier.
                assert!(
                    target.var().index() < i,
                    "substitution target must precede node {i}"
                );
                map[target.var().index()].xor(target.is_complemented())
            } else {
                match node {
                    Node::Const => Lit::FALSE,
                    Node::Input(_) => out.add_input(),
                    Node::And(a, b) => {
                        let fa = map[a.var().index()].xor(a.is_complemented());
                        let fb = map[b.var().index()].xor(b.is_complemented());
                        out.and(fa, fb)
                    }
                }
            };
            map.push(lit);
        }
        for po in self.pos() {
            let lit = map[po.var().index()].xor(po.is_complemented());
            out.add_po(lit);
        }
        // Compose the substitution map through the clean-up's renumbering
        // so the returned map is valid over the returned AIG.
        let (cleaned, clean_map) = out.clean_with_map();
        for lit in &mut map {
            *lit = clean_map[lit.var().index()].xor(lit.is_complemented());
        }
        (cleaned, map)
    }
}

impl Aig {
    /// Specializes the network by pinning one primary input to a constant
    /// (the circuit cofactor). The pinned PI is *removed* from the
    /// interface; remaining PIs keep their relative order.
    ///
    /// # Panics
    ///
    /// Panics if `pi_index >= self.num_pis()`.
    pub fn cofactor_pi(&self, pi_index: usize, value: bool) -> Aig {
        assert!(pi_index < self.num_pis(), "PI index out of range");
        let mut out = Aig::with_capacity(self.num_nodes());
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.num_nodes()];
        for (k, pi) in self.pis().iter().enumerate() {
            map[pi.index()] = if k == pi_index {
                if value {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            } else {
                out.add_input()
            };
        }
        for (i, node) in self.nodes().iter().enumerate() {
            if let Node::And(a, b) = node {
                let fa = map[a.var().index()].xor(a.is_complemented());
                let fb = map[b.var().index()].xor(b.is_complemented());
                map[i] = out.and(fa, fb);
            }
        }
        for po in self.pos() {
            let lit = map[po.var().index()].xor(po.is_complemented());
            out.add_po(lit);
        }
        out.clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let f = aig.xor(xs[0], xs[1]);
        let g = aig.mux(xs[2], f, xs[0]);
        aig.add_po(g);
        aig
    }

    #[test]
    fn append_preserves_function() {
        let inner = sample();
        let mut outer = Aig::new();
        let pis = outer.add_inputs(3);
        let pos = outer.append(&inner, &pis);
        for po in pos {
            outer.add_po(po);
        }
        for v in 0..8u32 {
            let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
            assert_eq!(outer.eval(&bits), inner.eval(&bits));
        }
    }

    #[test]
    fn double_doubles_interface() {
        let aig = sample();
        let d = aig.double();
        assert_eq!(d.num_pis(), 2 * aig.num_pis());
        assert_eq!(d.num_pos(), 2 * aig.num_pos());
        // Both halves compute the original function.
        for v in 0..8u32 {
            let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
            let mut both = bits.to_vec();
            both.extend_from_slice(&bits);
            let got = d.eval(&both);
            let want = aig.eval(&bits);
            assert_eq!(&got[..1], &want[..]);
            assert_eq!(&got[1..], &want[..]);
        }
    }

    #[test]
    fn double_times_grows_geometrically() {
        let aig = sample();
        let d = aig.double_times(3);
        assert_eq!(d.num_pis(), 8 * aig.num_pis());
        assert_eq!(d.num_pos(), 8 * aig.num_pos());
    }

    #[test]
    fn clean_removes_dangling() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let used = aig.and(xs[0], xs[1]);
        let _dangling = aig.or(xs[0], xs[1]);
        aig.add_po(used);
        let cleaned = aig.clean();
        assert_eq!(cleaned.num_ands(), 1);
        assert_eq!(cleaned.num_pis(), 2);
        for v in 0..4u32 {
            let bits = [(v & 1) != 0, (v & 2) != 0];
            assert_eq!(cleaned.eval(&bits), aig.eval(&bits));
        }
    }

    #[test]
    fn cofactor_pins_an_input() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let f = aig.mux(xs[0], xs[1], xs[2]);
        aig.add_po(f);
        // Pin the select to 1: the mux becomes a wire to xs[1].
        let c1 = aig.cofactor_pi(0, true);
        assert_eq!(c1.num_pis(), 2);
        assert_eq!(c1.num_ands(), 0);
        assert_eq!(c1.eval(&[true, false]), vec![true]);
        assert_eq!(c1.eval(&[false, true]), vec![false]);
        // Pin it to 0: wire to xs[2].
        let c0 = aig.cofactor_pi(0, false);
        assert_eq!(c0.eval(&[false, true]), vec![true]);
        // Shannon check against the original on all patterns.
        for v in 0..4u32 {
            let bits = [(v & 1) != 0, (v & 2) != 0];
            let full1 = aig.eval(&[true, bits[0], bits[1]]);
            assert_eq!(c1.eval(&bits), full1);
            let full0 = aig.eval(&[false, bits[0], bits[1]]);
            assert_eq!(c0.eval(&bits), full0);
        }
    }

    #[test]
    fn substitution_merges_equivalent_nodes() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        // Two structurally different forms of the same function: a XOR b
        // and !(a XNOR b). Build them without letting strash collapse them.
        let x1 = aig.xor(xs[0], xs[1]);
        let t0 = aig.and(xs[0], xs[1]);
        let t1 = aig.and(!xs[0], !xs[1]);
        let xnor = aig.or(t0, t1);
        aig.add_po(x1);
        aig.add_po(!xnor);
        // The literal !xnor computes the same function as x1, hence the
        // underlying variable is equivalent to x1 adjusted by the
        // complement of !xnor.
        let eq = !xnor;
        let mut subst: Vec<Lit> = (0..aig.num_nodes())
            .map(|i| Var::new(i as u32).lit())
            .collect();
        subst[eq.var().index()] = x1.xor(eq.is_complemented());
        let (reduced, _) = aig.rebuild_with_substitution(&subst);
        assert!(reduced.num_ands() < aig.num_ands());
        for v in 0..4u32 {
            let bits = [(v & 1) != 0, (v & 2) != 0];
            assert_eq!(reduced.eval(&bits), aig.eval(&bits));
        }
    }

    #[test]
    fn substitution_map_is_valid_over_the_cleaned_result() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let x1 = aig.xor(xs[0], xs[1]);
        let t0 = aig.and(xs[0], xs[1]);
        let t1 = aig.and(!xs[0], !xs[1]);
        let xnor = aig.or(t0, t1);
        aig.add_po(x1);
        aig.add_po(!xnor);
        let eq = !xnor;
        let mut subst: Vec<Lit> = (0..aig.num_nodes())
            .map(|i| Var::new(i as u32).lit())
            .collect();
        subst[eq.var().index()] = x1.xor(eq.is_complemented());
        let (reduced, map) = aig.rebuild_with_substitution(&subst);
        assert_eq!(map.len(), aig.num_nodes());
        // Every mapped literal indexes the *returned* AIG and implements
        // the old variable's function; nodes the clean-up dropped map to
        // a constant literal instead.
        for v in 0..4u32 {
            let bits = [(v & 1) != 0, (v & 2) != 0];
            let old_vals = aig.eval_nodes(&bits);
            let new_vals = reduced.eval_nodes(&bits);
            for (i, lit) in map.iter().enumerate() {
                assert!(lit.var().index() < reduced.num_nodes());
                if lit.is_const() && i != 0 && subst[i] == Var::new(i as u32).lit() {
                    continue; // dangling node dropped by the clean-up
                }
                let got = lit.eval(new_vals[lit.var().index()]);
                assert_eq!(got, old_vals[i], "map wrong for old var {i}");
            }
        }
    }
}

//! AIG node representation.

use crate::Lit;

/// A node in an [`Aig`](crate::Aig).
///
/// Nodes are stored in a flat vector indexed by [`Var`](crate::Var); the
/// vector order is always a valid topological order because AND nodes can
/// only be created after their fanins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// The constant-false node (always variable 0).
    Const,
    /// A primary input; the payload is the input's position in the PI list.
    Input(u32),
    /// A two-input AND gate over two (possibly complemented) literals.
    ///
    /// Invariant maintained by [`Aig`](crate::Aig): `fanins.0 <= fanins.1`.
    And(Lit, Lit),
}

impl Node {
    /// Returns true if this node is an AND gate.
    #[inline]
    pub const fn is_and(&self) -> bool {
        matches!(self, Node::And(_, _))
    }

    /// Returns true if this node is a primary input.
    #[inline]
    pub const fn is_input(&self) -> bool {
        matches!(self, Node::Input(_))
    }

    /// Returns true if this node is the constant node.
    #[inline]
    pub const fn is_const(&self) -> bool {
        matches!(self, Node::Const)
    }

    /// Returns the fanins of an AND node, or `None` otherwise.
    #[inline]
    pub const fn fanins(&self) -> Option<(Lit, Lit)> {
        match self {
            Node::And(a, b) => Some((*a, *b)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_predicates() {
        let a = Lit::new(1, false);
        let b = Lit::new(2, true);
        assert!(Node::Const.is_const());
        assert!(Node::Input(0).is_input());
        assert!(Node::And(a, b).is_and());
        assert_eq!(Node::And(a, b).fanins(), Some((a, b)));
        assert_eq!(Node::Input(3).fanins(), None);
    }
}

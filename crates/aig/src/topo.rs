//! Topological utilities: levels, fanouts, supports, cones.
//!
//! Because [`Aig`] nodes are created fanins-first, the variable order is
//! always a valid topological order; everything here exploits that.

use crate::{Aig, Node, Var};

/// The structural support of a node, possibly truncated at a bound.
///
/// The simulation-based engine only ever needs supports up to a threshold
/// (`k_P`, `k_p`, `k_g` in the paper); computing exact supports for every
/// node of a large network is quadratic, so supports larger than the bound
/// saturate to [`Support::Over`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Support {
    /// The exact support: a sorted list of PI variables.
    Exact(Vec<Var>),
    /// The support is larger than the requested bound.
    Over,
}

impl Support {
    /// Returns the support size, or `None` if it exceeded the bound.
    pub fn size(&self) -> Option<usize> {
        match self {
            Support::Exact(v) => Some(v.len()),
            Support::Over => None,
        }
    }

    /// Returns the PI list, or `None` if the bound was exceeded.
    pub fn vars(&self) -> Option<&[Var]> {
        match self {
            Support::Exact(v) => Some(v),
            Support::Over => None,
        }
    }
}

/// Merges two sorted variable lists, giving up when the union exceeds `cap`.
fn merge_bounded(a: &[Var], b: &[Var], cap: usize) -> Option<Vec<Var>> {
    let mut out = Vec::with_capacity((a.len() + b.len()).min(cap + 1));
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            if j < b.len() && a[i] == b[j] {
                j += 1;
            }
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        if out.len() == cap {
            return None;
        }
        out.push(next);
    }
    Some(out)
}

impl Aig {
    /// Computes the level of every node: PIs and the constant have level 0,
    /// an AND has the maximum fanin level plus one.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.num_nodes()];
        for (i, node) in self.nodes().iter().enumerate() {
            if let Node::And(a, b) = node {
                levels[i] = 1 + levels[a.var().index()].max(levels[b.var().index()]);
            }
        }
        levels
    }

    /// Returns the level of the network: the largest PO level.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.pos()
            .iter()
            .map(|po| levels[po.var().index()])
            .max()
            .unwrap_or(0)
    }

    /// Counts, for every node, how many AND gates and POs reference it.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_nodes()];
        for node in self.nodes() {
            if let Node::And(a, b) = node {
                counts[a.var().index()] += 1;
                counts[b.var().index()] += 1;
            }
        }
        for po in self.pos() {
            counts[po.var().index()] += 1;
        }
        counts
    }

    /// Groups all variables by level; entry `l` holds the variables with
    /// level `l` in increasing order. Used for level-wise parallel passes.
    pub fn level_groups(&self) -> Vec<Vec<Var>> {
        let levels = self.levels();
        let max = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut groups = vec![Vec::new(); max + 1];
        for (i, &l) in levels.iter().enumerate() {
            groups[l as usize].push(Var::new(i as u32));
        }
        groups
    }

    /// Computes the structural support of every node, truncated at `cap`.
    ///
    /// The result is indexed by variable. PIs have themselves as support;
    /// the constant node has empty support; an AND node's support is the
    /// union of its fanins', saturating to [`Support::Over`] beyond `cap`.
    pub fn bounded_supports(&self, cap: usize) -> Vec<Support> {
        let mut supports: Vec<Support> = Vec::with_capacity(self.num_nodes());
        for node in self.nodes() {
            let s = match node {
                Node::Const => Support::Exact(Vec::new()),
                Node::Input(_) => Support::Exact(vec![Var::new(supports.len() as u32)]),
                Node::And(a, b) => match (&supports[a.var().index()], &supports[b.var().index()]) {
                    (Support::Exact(sa), Support::Exact(sb)) => match merge_bounded(sa, sb, cap) {
                        Some(m) => Support::Exact(m),
                        None => Support::Over,
                    },
                    _ => Support::Over,
                },
            };
            supports.push(s);
        }
        supports
    }

    /// Computes the exact structural support of a set of root nodes by a
    /// backward traversal.
    ///
    /// **Sorted invariant:** the result is strictly ascending in variable
    /// id (deduplicated); callers may rely on it — e.g. pass it directly
    /// as pre-sorted window inputs — without re-sorting.
    pub fn support(&self, roots: &[Var]) -> Vec<Var> {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack: Vec<Var> = roots.to_vec();
        let mut support = Vec::new();
        while let Some(v) = stack.pop() {
            if seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            match self.node(v) {
                Node::Const => {}
                Node::Input(_) => support.push(v),
                Node::And(a, b) => {
                    stack.push(a.var());
                    stack.push(b.var());
                }
            }
        }
        support.sort_unstable();
        support
    }

    /// Collects the transitive fanin cone of a set of roots (roots
    /// included).
    ///
    /// **Sorted invariant:** the result is strictly ascending in variable
    /// id (deduplicated), which is also a valid topological order because
    /// nodes are created fanins-first. Callers may iterate it as a
    /// fanins-before-users schedule or binary-search it without
    /// re-sorting.
    pub fn tfi_cone(&self, roots: &[Var]) -> Vec<Var> {
        let mut seen = vec![false; self.num_nodes()];
        let mut stack: Vec<Var> = roots.to_vec();
        let mut cone = Vec::new();
        while let Some(v) = stack.pop() {
            if seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            cone.push(v);
            if let Node::And(a, b) = self.node(v) {
                stack.push(a.var());
                stack.push(b.var());
            }
        }
        cone.sort_unstable();
        cone
    }

    /// Collects the logic cone between `roots` and a cut `inputs`: the
    /// intersection of the roots' TFIs with the inputs' TFOs, plus the roots
    /// themselves (the paper's *simulation window* contents).
    ///
    /// The backward traversal stops at the cut nodes. Returns `None` if a
    /// path from a root escapes the cut (reaches a PI or the constant node
    /// that is not itself in `inputs`), i.e. `inputs` is not a valid cut of
    /// the roots.
    ///
    /// **Sorted invariant:** the returned interior nodes exclude the
    /// inputs and are strictly ascending in variable id (deduplicated) —
    /// a valid topological order, since nodes are created fanins-first.
    /// Callers (e.g. simulation windows, which evaluate the list in
    /// order) may rely on this without re-sorting.
    pub fn cone_between(&self, roots: &[Var], inputs: &[Var]) -> Option<Vec<Var>> {
        if roots.len() + inputs.len() < 64 && self.num_nodes() > 4096 {
            // Sparse traversal: avoids O(network) allocations per window,
            // which dominates when many small windows are extracted from a
            // large miter.
            return self.cone_between_sparse(roots, inputs);
        }
        self.cone_between_dense(roots, inputs)
    }

    fn cone_between_sparse(&self, roots: &[Var], inputs: &[Var]) -> Option<Vec<Var>> {
        use std::collections::HashSet;
        let is_input: HashSet<Var> = inputs.iter().copied().collect();
        let mut seen: HashSet<Var> = HashSet::new();
        let mut stack: Vec<Var> = Vec::new();
        let mut cone = Vec::new();
        for &r in roots {
            if !is_input.contains(&r) {
                stack.push(r);
            }
        }
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            match self.node(v) {
                Node::Const | Node::Input(_) => return None,
                Node::And(a, b) => {
                    cone.push(v);
                    for f in [a.var(), b.var()] {
                        if !is_input.contains(&f) {
                            stack.push(f);
                        }
                    }
                }
            }
        }
        cone.sort_unstable();
        Some(cone)
    }

    fn cone_between_dense(&self, roots: &[Var], inputs: &[Var]) -> Option<Vec<Var>> {
        let mut is_input = vec![false; self.num_nodes()];
        for v in inputs {
            is_input[v.index()] = true;
        }
        let mut seen = vec![false; self.num_nodes()];
        let mut stack: Vec<Var> = Vec::new();
        let mut cone = Vec::new();
        for &r in roots {
            if !is_input[r.index()] {
                stack.push(r);
            }
        }
        while let Some(v) = stack.pop() {
            if seen[v.index()] {
                continue;
            }
            seen[v.index()] = true;
            match self.node(v) {
                // A non-input PI or constant on the path: the cut is invalid
                // for these roots.
                Node::Const | Node::Input(_) => return None,
                Node::And(a, b) => {
                    cone.push(v);
                    for f in [a.var(), b.var()] {
                        if !is_input[f.index()] {
                            stack.push(f);
                        }
                    }
                }
            }
        }
        cone.sort_unstable();
        Some(cone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aig;

    fn chain4() -> (Aig, Vec<crate::Lit>) {
        // f = ((a & b) & c) & d
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let ab = aig.and(xs[0], xs[1]);
        let abc = aig.and(ab, xs[2]);
        let abcd = aig.and(abc, xs[3]);
        aig.add_po(abcd);
        (aig, xs)
    }

    #[test]
    fn levels_of_chain() {
        let (aig, _) = chain4();
        assert_eq!(aig.depth(), 3);
        let levels = aig.levels();
        assert_eq!(levels[0], 0); // const
        assert_eq!(levels[1], 0); // PI
        assert_eq!(*levels.last().unwrap(), 3);
    }

    #[test]
    fn fanout_counts_include_pos() {
        let (aig, _) = chain4();
        let counts = aig.fanout_counts();
        // Last node feeds only the PO.
        assert_eq!(counts[aig.num_nodes() - 1], 1);
        // Each PI feeds exactly one AND.
        for pi in aig.pis() {
            assert_eq!(counts[pi.index()], 1);
        }
    }

    #[test]
    fn level_groups_partition_all_nodes() {
        let (aig, _) = chain4();
        let groups = aig.level_groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, aig.num_nodes());
        assert_eq!(groups.len() as u32, aig.depth() + 1);
    }

    #[test]
    fn bounded_supports_exact_and_over() {
        let (aig, _) = chain4();
        let sup = aig.bounded_supports(4);
        assert_eq!(sup.last().unwrap().size(), Some(4));
        let sup2 = aig.bounded_supports(3);
        assert_eq!(*sup2.last().unwrap(), Support::Over);
    }

    #[test]
    fn support_matches_bounded() {
        let (aig, _) = chain4();
        let root = Var::new(aig.num_nodes() as u32 - 1);
        let s = aig.support(&[root]);
        assert_eq!(s.len(), 4);
        assert_eq!(s, aig.pis());
    }

    #[test]
    fn tfi_cone_of_root_contains_everything() {
        let (aig, _) = chain4();
        let root = Var::new(aig.num_nodes() as u32 - 1);
        let cone = aig.tfi_cone(&[root]);
        // Everything except the constant node drives the root.
        assert_eq!(cone.len(), aig.num_nodes() - 1);
    }

    #[test]
    fn cone_between_respects_cut() {
        let (aig, _) = chain4();
        let root = Var::new(aig.num_nodes() as u32 - 1);
        // Cut = {abc, d}: interior should be only the root.
        let abc = Var::new(aig.num_nodes() as u32 - 2);
        let d = aig.pis()[3];
        let cone = aig.cone_between(&[root], &[abc, d]).unwrap();
        assert_eq!(cone, vec![root]);
        // Cut that misses input d is invalid.
        assert!(aig.cone_between(&[root], &[abc]).is_none());
    }

    #[test]
    fn cone_between_with_pi_cut_is_whole_cone() {
        let (aig, _) = chain4();
        let root = Var::new(aig.num_nodes() as u32 - 1);
        let pis: Vec<Var> = aig.pis().to_vec();
        let cone = aig.cone_between(&[root], &pis).unwrap();
        assert_eq!(cone.len(), 3); // the three AND gates
    }
}

//! AIGER file format support (ASCII `aag` and binary `aig`).
//!
//! Combinational networks only: latch counts other than zero are rejected.
//! On write, variables are renumbered into the canonical AIGER layout
//! (inputs first, then AND gates in topological order).

use std::fmt;
use std::io::{self, BufRead, Read, Write};

use crate::{Aig, Lit, Node};

/// Error reading an AIGER file.
#[derive(Debug)]
pub enum ParseAigerError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The header line is malformed.
    BadHeader(String),
    /// The file contains latches, which are not supported.
    HasLatches(usize),
    /// A literal or line is malformed.
    BadLine {
        /// 1-based line number (0 for binary section).
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The binary delta encoding is invalid or truncated.
    BadBinary(String),
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAigerError::Io(e) => write!(f, "i/o error: {e}"),
            ParseAigerError::BadHeader(h) => write!(f, "malformed AIGER header: {h:?}"),
            ParseAigerError::HasLatches(n) => {
                write!(f, "sequential AIGER not supported ({n} latches)")
            }
            ParseAigerError::BadLine { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseAigerError::BadBinary(m) => write!(f, "bad binary AND section: {m}"),
        }
    }
}

impl std::error::Error for ParseAigerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseAigerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseAigerError {
    fn from(e: io::Error) -> Self {
        ParseAigerError::Io(e)
    }
}

struct Header {
    m: u32,
    i: u32,
    o: u32,
    a: u32,
    binary: bool,
}

fn parse_header(line: &str) -> Result<Header, ParseAigerError> {
    let mut it = line.split_whitespace();
    let tag = it
        .next()
        .ok_or_else(|| ParseAigerError::BadHeader(line.into()))?;
    let binary = match tag {
        "aag" => false,
        "aig" => true,
        _ => return Err(ParseAigerError::BadHeader(line.into())),
    };
    let mut nums = [0u32; 5];
    for slot in nums.iter_mut() {
        *slot = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| ParseAigerError::BadHeader(line.into()))?;
    }
    if nums[2] != 0 {
        return Err(ParseAigerError::HasLatches(nums[2] as usize));
    }
    Ok(Header {
        m: nums[0],
        i: nums[1],
        o: nums[3],
        a: nums[4],
        binary,
    })
}

/// Reads an AIGER network (ASCII or binary, auto-detected from the header).
///
/// # Errors
///
/// Returns [`ParseAigerError`] on I/O failure or malformed input, including
/// files with latches.
pub fn read_aiger<R: Read>(reader: R) -> Result<Aig, ParseAigerError> {
    let mut reader = io::BufReader::new(reader);
    let mut header_line = String::new();
    reader.read_line(&mut header_line)?;
    let header = parse_header(header_line.trim_end())?;
    if header.binary {
        read_binary(reader, &header)
    } else {
        read_ascii(reader, &header)
    }
}

fn parse_lit_token(tok: &str, line: usize) -> Result<u32, ParseAigerError> {
    tok.parse().map_err(|_| ParseAigerError::BadLine {
        line,
        message: format!("bad literal {tok:?}"),
    })
}

#[allow(clippy::needless_range_loop)] // body-line indices double as error line numbers
fn read_ascii<R: BufRead>(reader: R, h: &Header) -> Result<Aig, ParseAigerError> {
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    let need = (h.i + h.o + h.a) as usize;
    if lines.len() < need {
        return Err(ParseAigerError::BadLine {
            line: lines.len() + 2,
            message: "unexpected end of file".into(),
        });
    }
    // `line_of(k)` is the 1-based file line of body line k (header is 1).
    let line_of = |k: usize| k + 2;

    // Map from AIGER variable index to our literal.
    let mut var_map: Vec<Option<Lit>> = vec![None; h.m as usize + 1];
    var_map[0] = Some(Lit::FALSE);
    let mut aig = Aig::with_capacity(h.m as usize + 1);

    let mut input_vars = Vec::with_capacity(h.i as usize);
    for k in 0..h.i as usize {
        let code = parse_lit_token(lines[k].trim(), line_of(k))?;
        if code < 2 || code & 1 == 1 {
            return Err(ParseAigerError::BadLine {
                line: line_of(k),
                message: format!("invalid input literal {code}"),
            });
        }
        input_vars.push(code >> 1);
    }
    for &v in &input_vars {
        let lit = aig.add_input();
        var_map[v as usize] = Some(lit);
    }

    let mut po_codes = Vec::with_capacity(h.o as usize);
    for k in h.i as usize..(h.i + h.o) as usize {
        po_codes.push(parse_lit_token(lines[k].trim(), line_of(k))?);
    }

    let mut and_defs = Vec::with_capacity(h.a as usize);
    for k in (h.i + h.o) as usize..need {
        let mut it = lines[k].split_whitespace();
        let mut get = || -> Result<u32, ParseAigerError> {
            let tok = it.next().ok_or(ParseAigerError::BadLine {
                line: line_of(k),
                message: "expected three literals".into(),
            })?;
            parse_lit_token(tok, line_of(k))
        };
        let lhs = get()?;
        let rhs0 = get()?;
        let rhs1 = get()?;
        if lhs < 2 || lhs & 1 == 1 {
            return Err(ParseAigerError::BadLine {
                line: line_of(k),
                message: format!("invalid AND lhs {lhs}"),
            });
        }
        and_defs.push((lhs >> 1, rhs0, rhs1));
    }

    build_ands(&mut aig, &mut var_map, &and_defs)?;
    finish_pos(&mut aig, &var_map, &po_codes)?;
    Ok(aig)
}

fn read_binary<R: BufRead>(mut reader: R, h: &Header) -> Result<Aig, ParseAigerError> {
    let mut aig = Aig::with_capacity(h.m as usize + 1);
    let mut var_map: Vec<Option<Lit>> = vec![None; h.m as usize + 1];
    var_map[0] = Some(Lit::FALSE);
    // Binary format: inputs are implicitly variables 1..=I.
    for v in 1..=h.i {
        var_map[v as usize] = Some(aig.add_input());
    }
    // Output literals, one per line.
    let mut po_codes = Vec::with_capacity(h.o as usize);
    let mut line = String::new();
    for i in 0..h.o {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(ParseAigerError::BadLine {
                line: 1 + i as usize,
                message: "unexpected end of file in output section".into(),
            });
        }
        po_codes.push(line.trim().parse().map_err(|_| ParseAigerError::BadLine {
            line: 1 + i as usize,
            message: format!("bad output literal {:?}", line.trim()),
        })?);
    }
    // Delta-encoded AND section.
    let read_delta = |reader: &mut R| -> Result<u32, ParseAigerError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            reader
                .read_exact(&mut byte)
                .map_err(|_| ParseAigerError::BadBinary("truncated delta".into()))?;
            result |= u64::from(byte[0] & 0x7f) << shift;
            if byte[0] & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 35 {
                return Err(ParseAigerError::BadBinary("delta too large".into()));
            }
        }
        u32::try_from(result).map_err(|_| ParseAigerError::BadBinary("delta overflow".into()))
    };
    let mut and_defs = Vec::with_capacity(h.a as usize);
    for k in 0..h.a {
        let lhs = 2 * (h.i + 1 + k);
        let delta0 = read_delta(&mut reader)?;
        let delta1 = read_delta(&mut reader)?;
        let rhs0 = lhs
            .checked_sub(delta0)
            .ok_or_else(|| ParseAigerError::BadBinary("delta0 exceeds lhs".into()))?;
        let rhs1 = rhs0
            .checked_sub(delta1)
            .ok_or_else(|| ParseAigerError::BadBinary("delta1 exceeds rhs0".into()))?;
        and_defs.push((lhs >> 1, rhs0, rhs1));
    }
    build_ands(&mut aig, &mut var_map, &and_defs)?;
    finish_pos(&mut aig, &var_map, &po_codes)?;
    Ok(aig)
}

fn build_ands(
    aig: &mut Aig,
    var_map: &mut [Option<Lit>],
    and_defs: &[(u32, u32, u32)],
) -> Result<(), ParseAigerError> {
    // ASCII AIGER does not require topological order in the file; process
    // definitions in dependency order with a simple worklist over passes.
    let mut remaining: Vec<(u32, u32, u32)> = and_defs.to_vec();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&(lhs, rhs0, rhs1)| {
            let f0 = var_map.get(rhs0 as usize >> 1).copied().flatten();
            let f1 = var_map.get(rhs1 as usize >> 1).copied().flatten();
            match (f0, f1) {
                (Some(a), Some(b)) => {
                    let la = a.xor(rhs0 & 1 == 1);
                    let lb = b.xor(rhs1 & 1 == 1);
                    let lit = aig.and(la, lb);
                    var_map[lhs as usize] = Some(lit);
                    false
                }
                _ => true,
            }
        });
        if remaining.len() == before {
            return Err(ParseAigerError::BadBinary(
                "cyclic or undefined AND definitions".into(),
            ));
        }
    }
    Ok(())
}

fn finish_pos(
    aig: &mut Aig,
    var_map: &[Option<Lit>],
    po_codes: &[u32],
) -> Result<(), ParseAigerError> {
    for &code in po_codes {
        let base = var_map
            .get(code as usize >> 1)
            .copied()
            .flatten()
            .ok_or_else(|| ParseAigerError::BadLine {
                line: 0,
                message: format!("output references undefined literal {code}"),
            })?;
        aig.add_po(base.xor(code & 1 == 1));
    }
    Ok(())
}

/// Computes the canonical AIGER numbering of an [`Aig`]: inputs get
/// variables `1..=I`, AND gates follow in topological order.
fn aiger_numbering(aig: &Aig) -> Vec<u32> {
    let mut number = vec![0u32; aig.num_nodes()];
    let mut next = 1u32;
    for pi in aig.pis() {
        number[pi.index()] = next;
        next += 1;
    }
    for v in aig.and_vars() {
        number[v.index()] = next;
        next += 1;
    }
    number
}

fn lit_code(number: &[u32], lit: Lit) -> u32 {
    (number[lit.var().index()] << 1) | lit.is_complemented() as u32
}

/// Writes an ASCII AIGER (`aag`) file.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_ascii<W: Write>(aig: &Aig, writer: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(writer);
    let number = aiger_numbering(aig);
    let i = aig.num_pis() as u32;
    let a = aig.num_ands() as u32;
    writeln!(w, "aag {} {} 0 {} {}", i + a, i, aig.num_pos(), a)?;
    for pi in aig.pis() {
        writeln!(w, "{}", number[pi.index()] << 1)?;
    }
    for &po in aig.pos() {
        writeln!(w, "{}", lit_code(&number, po))?;
    }
    for v in aig.and_vars() {
        if let Node::And(f0, f1) = aig.node(v) {
            let lhs = number[v.index()] << 1;
            let (c0, c1) = (lit_code(&number, f0), lit_code(&number, f1));
            // AIGER convention: rhs0 >= rhs1.
            let (hi, lo) = if c0 >= c1 { (c0, c1) } else { (c1, c0) };
            writeln!(w, "{lhs} {hi} {lo}")?;
        }
    }
    w.flush()
}

/// Writes a binary AIGER (`aig`) file.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_binary<W: Write>(aig: &Aig, writer: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(writer);
    let number = aiger_numbering(aig);
    let i = aig.num_pis() as u32;
    let a = aig.num_ands() as u32;
    writeln!(w, "aig {} {} 0 {} {}", i + a, i, aig.num_pos(), a)?;
    for &po in aig.pos() {
        writeln!(w, "{}", lit_code(&number, po))?;
    }
    let write_delta = |w: &mut io::BufWriter<W>, mut d: u32| -> io::Result<()> {
        loop {
            let mut byte = (d & 0x7f) as u8;
            d >>= 7;
            if d != 0 {
                byte |= 0x80;
            }
            w.write_all(&[byte])?;
            if d == 0 {
                return Ok(());
            }
        }
    };
    for v in aig.and_vars() {
        if let Node::And(f0, f1) = aig.node(v) {
            let lhs = number[v.index()] << 1;
            let (c0, c1) = (lit_code(&number, f0), lit_code(&number, f1));
            let (hi, lo) = if c0 >= c1 { (c0, c1) } else { (c1, c0) };
            debug_assert!(lhs > hi, "AIG must be topologically ordered");
            write_delta(&mut w, lhs - hi)?;
            write_delta(&mut w, hi - lo)?;
        }
    }
    w.flush()
}

/// Reads an AIGER file from a path (ASCII or binary).
///
/// # Errors
///
/// Returns [`ParseAigerError`] on I/O failure or malformed input.
pub fn read_aiger_file<P: AsRef<std::path::Path>>(path: P) -> Result<Aig, ParseAigerError> {
    read_aiger(std::fs::File::open(path)?)
}

/// Writes an AIGER file to a path; format chosen by extension (`.aag` is
/// ASCII, anything else binary).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_aiger_file<P: AsRef<std::path::Path>>(aig: &Aig, path: P) -> io::Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path)?;
    if path.extension().is_some_and(|e| e == "aag") {
        write_ascii(aig, file)
    } else {
        write_binary(aig, file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let f = aig.xor(xs[0], xs[1]);
        let g = aig.mux(xs[2], f, !xs[0]);
        aig.add_po(g);
        aig.add_po(!f);
        aig
    }

    fn equivalent(a: &Aig, b: &Aig) -> bool {
        assert_eq!(a.num_pis(), b.num_pis());
        let n = a.num_pis();
        (0..1u32 << n).all(|v| {
            let bits: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
            a.eval(&bits) == b.eval(&bits)
        })
    }

    #[test]
    fn ascii_roundtrip() {
        let aig = sample();
        let mut buf = Vec::new();
        write_ascii(&aig, &mut buf).unwrap();
        let back = read_aiger(&buf[..]).unwrap();
        assert_eq!(back.num_pis(), aig.num_pis());
        assert_eq!(back.num_pos(), aig.num_pos());
        assert!(equivalent(&aig, &back));
    }

    #[test]
    fn binary_roundtrip() {
        let aig = sample();
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).unwrap();
        let back = read_aiger(&buf[..]).unwrap();
        assert_eq!(back.num_pis(), aig.num_pis());
        assert_eq!(back.num_ands(), aig.num_ands());
        assert!(equivalent(&aig, &back));
    }

    #[test]
    fn constant_pos_roundtrip() {
        let mut aig = Aig::new();
        aig.add_inputs(1);
        aig.add_po(Lit::FALSE);
        aig.add_po(Lit::TRUE);
        let mut buf = Vec::new();
        write_ascii(&aig, &mut buf).unwrap();
        let back = read_aiger(&buf[..]).unwrap();
        assert_eq!(back.pos(), &[Lit::FALSE, Lit::TRUE]);
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(
            read_aiger(text.as_bytes()),
            Err(ParseAigerError::HasLatches(1))
        ));
    }

    #[test]
    fn rejects_garbage_header() {
        assert!(matches!(
            read_aiger("bogus 1 2 3".as_bytes()),
            Err(ParseAigerError::BadHeader(_))
        ));
    }

    #[test]
    fn parses_reference_ascii_example() {
        // AND of two inputs, from the AIGER spec.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let aig = read_aiger(text.as_bytes()).unwrap();
        assert_eq!(aig.num_pis(), 2);
        assert_eq!(aig.num_ands(), 1);
        assert_eq!(aig.eval(&[true, true]), vec![true]);
        assert_eq!(aig.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn inverted_output_preserved() {
        let text = "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n";
        let aig = read_aiger(text.as_bytes()).unwrap();
        assert_eq!(aig.eval(&[true, true]), vec![false]);
        assert_eq!(aig.eval(&[false, false]), vec![true]);
    }

    #[test]
    fn large_roundtrip_binary() {
        // A bigger random-ish structure to exercise delta encoding widths.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(8);
        let mut acc = xs[0];
        for (i, &x) in xs.iter().enumerate().skip(1) {
            acc = if i % 2 == 0 {
                aig.xor(acc, x)
            } else {
                aig.mux(x, acc, !x)
            };
        }
        aig.add_po(acc);
        let mut buf = Vec::new();
        write_binary(&aig, &mut buf).unwrap();
        let back = read_aiger(&buf[..]).unwrap();
        assert!(equivalent(&aig, &back));
        let _ = Var::new(0);
    }
}

//! Graphviz DOT export for visual debugging of small networks.

use std::io::{self, Write};

use crate::{Aig, Node};

/// Writes the network as a Graphviz digraph: AND gates as circles, PIs as
/// boxes, POs as inverted houses; complemented edges are dashed.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_dot<W: Write>(aig: &Aig, writer: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(writer);
    writeln!(w, "digraph aig {{")?;
    writeln!(w, "  rankdir=BT;")?;
    writeln!(w, "  node [fontname=\"monospace\"];")?;
    for (i, node) in aig.nodes().iter().enumerate() {
        match node {
            Node::Const => {
                writeln!(w, "  n0 [label=\"0\", shape=doublecircle];")?;
            }
            Node::Input(pi) => {
                writeln!(w, "  n{i} [label=\"i{pi}\", shape=box];")?;
            }
            Node::And(a, b) => {
                writeln!(w, "  n{i} [label=\"{i}\", shape=circle];")?;
                for f in [a, b] {
                    let style = if f.is_complemented() {
                        " [style=dashed]"
                    } else {
                        ""
                    };
                    writeln!(w, "  n{} -> n{i}{style};", f.var().index())?;
                }
            }
        }
    }
    for (k, po) in aig.pos().iter().enumerate() {
        writeln!(w, "  o{k} [label=\"o{k}\", shape=invhouse];")?;
        let style = if po.is_complemented() {
            " [style=dashed]"
        } else {
            ""
        };
        writeln!(w, "  n{} -> o{k}{style};", po.var().index())?;
    }
    writeln!(w, "}}")?;
    w.flush()
}

/// Renders the network to a DOT string.
pub fn to_dot_string(aig: &Aig) -> String {
    let mut buf = Vec::new();
    write_dot(aig, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("dot output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_elements() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], !xs[1]);
        aig.add_po(!f);
        let dot = to_dot_string(&aig);
        assert!(dot.starts_with("digraph aig {"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("shape=invhouse"));
        // Two dashed edges: one complemented fanin, one complemented PO.
        assert_eq!(dot.matches("style=dashed").count(), 2);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_empty_network() {
        let aig = Aig::new();
        let dot = to_dot_string(&aig);
        assert!(dot.contains("doublecircle"));
    }
}

//! Output-cone extraction and canonical structural hashing.
//!
//! A combinational miter decomposes into independent sub-problems along
//! its output cones: the miter is proved iff every PO's transitive-fanin
//! cone is proved constant zero. [`Aig::extract_cone`] cuts a selected set
//! of POs out into a standalone sub-AIG whose PIs are exactly the cone's
//! support (with a remap back to the original inputs), and
//! [`Aig::structural_hash`] gives the extracted cone a canonical identity
//! so structurally identical sub-problems — ubiquitous in `double`d
//! benchmarks and repeated service traffic — can share one proof through a
//! result cache.

use crate::{Aig, Lit, Node, Var};

/// A sub-AIG cut out of a larger network along a set of output cones,
/// with the maps needed to translate results back.
#[derive(Clone, Debug)]
pub struct ConeExtraction {
    /// The standalone cone: PIs are the cone's support in ascending
    /// original-variable order, POs are the selected outputs.
    pub cone: Aig,
    /// For each cone PI position, the original network's PI variable it
    /// was cut from (`pi_map[new_pi_position] == old_var`). Counter-example
    /// assignments over the cone's inputs lift to the original network
    /// through this map (unlisted original PIs are don't-cares).
    pub pi_map: Vec<Var>,
    /// For each cone PO position, the original PO index it carries.
    pub po_map: Vec<usize>,
}

impl Aig {
    /// Extracts the logic cone of the selected POs into a standalone AIG.
    ///
    /// The extraction is structure-preserving: every AND gate in the
    /// selected cones maps to one AND gate in the result (modulo strashing,
    /// which cannot fire on an already-strashed source), PIs are compacted
    /// to the cone's support in ascending original-variable order, and the
    /// result's POs are the selected POs in the given order. Two
    /// structurally identical cones therefore extract to identical AIGs,
    /// which is what makes [`Aig::structural_hash`] a usable cache key.
    ///
    /// # Panics
    ///
    /// Panics if a PO index is out of range.
    ///
    /// ```
    /// use parsweep_aig::Aig;
    /// let mut aig = Aig::new();
    /// let xs = aig.add_inputs(4);
    /// let f = aig.and(xs[0], xs[1]);
    /// let g = aig.and(xs[2], xs[3]);
    /// aig.add_po(f);
    /// aig.add_po(g);
    /// let ext = aig.extract_cone(&[1]);
    /// assert_eq!(ext.cone.num_pis(), 2);
    /// assert_eq!(ext.cone.num_ands(), 1);
    /// assert_eq!(ext.pi_map, vec![xs[2].var(), xs[3].var()]);
    /// ```
    pub fn extract_cone(&self, po_indices: &[usize]) -> ConeExtraction {
        let mut roots: Vec<Var> = Vec::with_capacity(po_indices.len());
        for &i in po_indices {
            let v = self.po(i).var();
            if !v.is_const() && !roots.contains(&v) {
                roots.push(v);
            }
        }
        // tfi_cone returns ascending variable order, which is a topological
        // order, so fanins are always mapped before their users.
        let cone_nodes = self.tfi_cone(&roots);
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.num_nodes()];
        let mut cone = Aig::with_capacity(cone_nodes.len());
        let mut pi_map = Vec::new();
        for &v in &cone_nodes {
            map[v.index()] = match self.node(v) {
                Node::Const => Lit::FALSE,
                Node::Input(_) => {
                    pi_map.push(v);
                    cone.add_input()
                }
                Node::And(a, b) => {
                    let fa = map[a.var().index()].xor(a.is_complemented());
                    let fb = map[b.var().index()].xor(b.is_complemented());
                    cone.and(fa, fb)
                }
            };
        }
        for &i in po_indices {
            let po = self.po(i);
            cone.add_po(map[po.var().index()].xor(po.is_complemented()));
        }
        ConeExtraction {
            cone,
            pi_map,
            po_map: po_indices.to_vec(),
        }
    }

    /// A canonical 64-bit hash of this network's structure: the node list
    /// (kinds and fanin literals), the PO literals, and the PI count.
    ///
    /// Two networks built the same way — in particular, two cones produced
    /// by [`Aig::extract_cone`] from structurally identical sub-problems —
    /// hash equal; the hash changes with any gate, polarity, or output
    /// difference. Collisions between structurally different networks are
    /// possible (it is a 64-bit digest), so exact-match users (e.g. a
    /// result cache) should verify candidates with [`Aig::same_structure`].
    pub fn structural_hash(&self) -> u64 {
        #[inline]
        fn mix(state: u64, value: u64) -> u64 {
            // splitmix64 over a running state: cheap, well-distributed.
            let mut z = state
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(value);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut h = mix(0x5eed_c0de, self.num_pis() as u64);
        for node in self.nodes() {
            h = match node {
                Node::Const => mix(h, 1),
                Node::Input(i) => mix(h, 2 | (u64::from(*i) << 2)),
                Node::And(a, b) => {
                    let fanins = (u64::from(a.code()) << 32) | u64::from(b.code());
                    mix(h, 3 | (fanins << 2))
                }
            };
        }
        for po in self.pos() {
            h = mix(h, u64::from(po.code()));
        }
        h
    }

    /// A second structural digest, independent of [`Aig::structural_hash`]
    /// (different seed, different per-node encoding, reversed mixing
    /// order). Lookups that key on `structural_hash` but cannot afford to
    /// retain the whole network can store this fingerprint alongside the
    /// key and re-check it on hit: for two different networks to
    /// cross-serve, both 64-bit digests would have to collide at once.
    pub fn structural_fingerprint(&self) -> u64 {
        #[inline]
        fn mix(state: u64, value: u64) -> u64 {
            // splitmix64 again, but over a distinct constant schedule so
            // the two digests do not collide together.
            let mut z = state
                .wrapping_add(0xd1b5_4a32_d192_ed03)
                .wrapping_add(value);
            z = (z ^ (z >> 32)).wrapping_mul(0xff51_afd7_ed55_8ccd);
            z = (z ^ (z >> 29)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            z ^ (z >> 32)
        }
        let mut h = mix(0x0f1b_e12f_1b0e_12f1, self.num_pos() as u64);
        for po in self.pos() {
            h = mix(h, u64::from(po.code()).rotate_left(17));
        }
        for node in self.nodes().iter().rev() {
            h = match node {
                Node::Const => mix(h, 0x11),
                Node::Input(i) => mix(h, 0x22 ^ (u64::from(*i) << 8)),
                Node::And(a, b) => {
                    let fanins = (u64::from(b.code()) << 32) | u64::from(a.code());
                    mix(h, 0x33 ^ (fanins << 8))
                }
            };
        }
        mix(h, self.num_pis() as u64)
    }

    /// True if `other` has exactly the same structure: node list, PO
    /// literals and PI count. The exactness check behind
    /// [`Aig::structural_hash`]-keyed caches.
    pub fn same_structure(&self, other: &Aig) -> bool {
        self.num_pis() == other.num_pis()
            && self.nodes() == other.nodes()
            && self.pos() == other.pos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miter;

    fn two_cone_net() -> (Aig, Vec<Lit>) {
        // PO0 = (x0 & x1) ^ x2 over {x0,x1,x2}; PO1 = x3 & x4 over {x3,x4}.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(5);
        let a = aig.and(xs[0], xs[1]);
        let f = aig.xor(a, xs[2]);
        let g = aig.and(xs[3], xs[4]);
        aig.add_po(f);
        aig.add_po(g);
        (aig, xs)
    }

    #[test]
    fn extraction_compacts_support() {
        let (aig, xs) = two_cone_net();
        let e0 = aig.extract_cone(&[0]);
        assert_eq!(e0.cone.num_pis(), 3);
        assert_eq!(e0.cone.num_pos(), 1);
        assert_eq!(
            e0.pi_map,
            vec![xs[0].var(), xs[1].var(), xs[2].var()],
            "ascending original-variable order"
        );
        let e1 = aig.extract_cone(&[1]);
        assert_eq!(e1.cone.num_pis(), 2);
        assert_eq!(e1.cone.num_ands(), 1);
        assert_eq!(e1.po_map, vec![1]);
    }

    #[test]
    fn extraction_preserves_function() {
        let (aig, _) = two_cone_net();
        let e = aig.extract_cone(&[0]);
        for v in 0..32u32 {
            let full: Vec<bool> = (0..5).map(|i| (v >> i) & 1 != 0).collect();
            let cone_in: Vec<bool> = e
                .pi_map
                .iter()
                .map(|pv| {
                    let pi_pos = aig.pis().iter().position(|p| p == pv).unwrap();
                    full[pi_pos]
                })
                .collect();
            assert_eq!(aig.eval(&full)[0], e.cone.eval(&cone_in)[0]);
        }
    }

    #[test]
    fn constant_po_extracts_to_constant() {
        let mut aig = Aig::new();
        aig.add_inputs(2);
        aig.add_po(Lit::TRUE);
        aig.add_po(Lit::FALSE);
        let e = aig.extract_cone(&[0, 1]);
        assert_eq!(e.cone.num_pis(), 0);
        assert_eq!(e.cone.pos(), &[Lit::TRUE, Lit::FALSE]);
    }

    #[test]
    fn identical_cones_hash_equal() {
        // A doubled miter: the two halves are structurally identical, so
        // their per-PO extractions must agree in hash and structure.
        let mut a = Aig::new();
        let xs = a.add_inputs(3);
        let f = a.maj3(xs[0], xs[1], xs[2]);
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(3);
        let t = b.or(ys[1], ys[2]);
        let u = b.and(ys[1], ys[2]);
        let g = b.mux(ys[0], t, u);
        b.add_po(g);
        let m = miter(&a.double(), &b.double()).unwrap();
        assert_eq!(m.num_pos(), 2);
        let e0 = m.extract_cone(&[0]);
        let e1 = m.extract_cone(&[1]);
        assert_eq!(e0.cone.structural_hash(), e1.cone.structural_hash());
        assert!(e0.cone.same_structure(&e1.cone));
        assert_ne!(e0.pi_map, e1.pi_map, "the cones live on disjoint PIs");
    }

    #[test]
    fn hash_distinguishes_polarity_and_outputs() {
        let mut a = Aig::new();
        let xs = a.add_inputs(2);
        let f = a.and(xs[0], xs[1]);
        a.add_po(f);
        let mut b = a.clone();
        b.set_po(0, !b.po(0));
        assert_ne!(a.structural_hash(), b.structural_hash());
        assert!(!a.same_structure(&b));
        let mut c = a.clone();
        c.add_po(Lit::FALSE);
        assert_ne!(a.structural_hash(), c.structural_hash());
    }

    #[test]
    fn fingerprint_is_independent_of_primary_hash() {
        let mut a = Aig::new();
        let xs = a.add_inputs(2);
        let f = a.and(xs[0], xs[1]);
        a.add_po(f);
        // Identical structures share both digests.
        assert_eq!(
            a.structural_fingerprint(),
            a.clone().structural_fingerprint()
        );
        // Different structures split on the fingerprint too.
        let mut b = a.clone();
        b.set_po(0, !b.po(0));
        assert_ne!(a.structural_fingerprint(), b.structural_fingerprint());
        // The two digests of the same network disagree with each other —
        // evidence they mix differently and will not collide in tandem.
        for g in [&a, &b] {
            assert_ne!(g.structural_hash(), g.structural_fingerprint());
        }
    }
}

//! Miter construction for combinational equivalence checking.
//!
//! A miter shares the corresponding PIs of the two circuits under
//! comparison and XORs corresponding PO pairs; the XOR outputs become the
//! miter POs. The two circuits are equivalent iff every miter PO is
//! constant zero.

use std::fmt;

use crate::{Aig, Lit};

/// Error building a miter from two circuits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildMiterError {
    /// The circuits have different numbers of primary inputs.
    PiCountMismatch {
        /// PI count of the first circuit.
        left: usize,
        /// PI count of the second circuit.
        right: usize,
    },
    /// The circuits have different numbers of primary outputs.
    PoCountMismatch {
        /// PO count of the first circuit.
        left: usize,
        /// PO count of the second circuit.
        right: usize,
    },
}

impl fmt::Display for BuildMiterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildMiterError::PiCountMismatch { left, right } => {
                write!(f, "primary input counts differ: {left} vs {right}")
            }
            BuildMiterError::PoCountMismatch { left, right } => {
                write!(f, "primary output counts differ: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for BuildMiterError {}

/// Builds the miter of two circuits with matching interfaces.
///
/// PO pair `i` of the result is `left.po(i) XOR right.po(i)`; the circuits
/// are equivalent iff all miter POs are constant false.
///
/// # Errors
///
/// Returns [`BuildMiterError`] if the PI or PO counts differ.
///
/// ```
/// use parsweep_aig::{Aig, miter};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Aig::new();
/// let xs = a.add_inputs(2);
/// let f = a.and(xs[0], xs[1]);
/// a.add_po(f);
/// // De Morgan form of the same function.
/// let mut b = Aig::new();
/// let ys = b.add_inputs(2);
/// let g = b.or(!ys[0], !ys[1]);
/// b.add_po(!g);
/// let m = miter(&a, &b)?;
/// assert_eq!(m.num_pos(), 1);
/// # Ok(())
/// # }
/// ```
pub fn miter(left: &Aig, right: &Aig) -> Result<Aig, BuildMiterError> {
    if left.num_pis() != right.num_pis() {
        return Err(BuildMiterError::PiCountMismatch {
            left: left.num_pis(),
            right: right.num_pis(),
        });
    }
    if left.num_pos() != right.num_pos() {
        return Err(BuildMiterError::PoCountMismatch {
            left: left.num_pos(),
            right: right.num_pos(),
        });
    }
    let mut m = Aig::with_capacity(left.num_nodes() + right.num_nodes());
    let pis: Vec<Lit> = (0..left.num_pis()).map(|_| m.add_input()).collect();
    let pos_l = m.append(left, &pis);
    let pos_r = m.append(right, &pis);
    for (l, r) in pos_l.into_iter().zip(pos_r) {
        let x = m.xor(l, r);
        m.add_po(x);
    }
    Ok(m)
}

/// Returns true if every PO of `aig` is the constant-false literal, i.e. a
/// miter in this state is *proved*: the original circuits are equivalent.
pub fn is_proved(aig: &Aig) -> bool {
    aig.pos().iter().all(|&po| po == Lit::FALSE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miter_of_identical_circuits_strashes_to_zero() {
        let mut a = Aig::new();
        let xs = a.add_inputs(2);
        let f = a.and(xs[0], xs[1]);
        a.add_po(f);
        let m = miter(&a, &a).unwrap();
        // Identical structure is strashed; the XOR folds to constant 0.
        assert!(is_proved(&m));
    }

    #[test]
    fn miter_of_different_functions_is_not_constant() {
        let mut a = Aig::new();
        let xs = a.add_inputs(2);
        let f = a.and(xs[0], xs[1]);
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(2);
        let g = b.or(ys[0], ys[1]);
        b.add_po(g);
        let m = miter(&a, &b).unwrap();
        assert!(!is_proved(&m));
        // AND=0, OR=1 under (1, 0): the miter fires.
        assert_eq!(m.eval(&[true, false]), vec![true]);
        assert_eq!(m.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn mismatched_interfaces_error() {
        let mut a = Aig::new();
        a.add_inputs(2);
        let mut b = Aig::new();
        b.add_inputs(3);
        assert!(matches!(
            miter(&a, &b),
            Err(BuildMiterError::PiCountMismatch { .. })
        ));
        let mut c = Aig::new();
        let xs = c.add_inputs(2);
        c.add_po(xs[0]);
        let mut d = Aig::new();
        d.add_inputs(2);
        assert!(matches!(
            miter(&c, &d),
            Err(BuildMiterError::PoCountMismatch { .. })
        ));
    }

    #[test]
    fn miter_detects_equivalence_semantically() {
        // a XOR b built two different ways.
        let mut a = Aig::new();
        let xs = a.add_inputs(2);
        let f = a.xor(xs[0], xs[1]);
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(2);
        let t0 = b.and(ys[0], ys[1]);
        let t1 = b.and(!ys[0], !ys[1]);
        let g = b.or(t0, t1);
        b.add_po(!g);
        let m = miter(&a, &b).unwrap();
        for v in 0..4u32 {
            let bits = [(v & 1) != 0, (v & 2) != 0];
            assert_eq!(m.eval(&bits), vec![false]);
        }
    }
}

//! The And-Inverter Graph container.

use std::collections::HashMap;

use crate::{Lit, Node, Var};

/// An And-Inverter Graph: a Boolean network of two-input AND gates with
/// optional inverters on edges, plus primary inputs and outputs.
///
/// Nodes are stored in topological order (fanins always precede a node), and
/// new AND gates are structurally hashed: building the same gate twice
/// returns the same literal, and trivial gates (constants, `x & x`,
/// `x & !x`) are folded away.
///
/// ```
/// use parsweep_aig::Aig;
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.and(a, b);
/// aig.add_po(f);
/// assert_eq!(aig.num_ands(), 1);
/// assert_eq!(aig.eval(&[true, true]), vec![true]);
/// assert_eq!(aig.eval(&[true, false]), vec![false]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    pis: Vec<Var>,
    pos: Vec<Lit>,
    strash: HashMap<(Lit, Lit), Var>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Const],
            pis: Vec::new(),
            pos: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Creates an empty AIG with capacity reserved for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        let mut aig = Aig::new();
        aig.nodes.reserve(n);
        aig.strash.reserve(n);
        aig
    }

    /// Appends a new primary input and returns its (positive) literal.
    pub fn add_input(&mut self) -> Lit {
        let var = Var::new(self.nodes.len() as u32);
        self.nodes.push(Node::Input(self.pis.len() as u32));
        self.pis.push(var);
        var.lit()
    }

    /// Appends `n` new primary inputs and returns their literals.
    pub fn add_inputs(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.add_input()).collect()
    }

    /// Registers `lit` as a primary output and returns its PO index.
    pub fn add_po(&mut self, lit: Lit) -> usize {
        self.pos.push(lit);
        self.pos.len() - 1
    }

    /// Builds (or finds) the AND of two literals.
    ///
    /// Constant folding and trivial rules are applied, and the gate is
    /// structurally hashed, so the result may be an existing literal.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Normalize operand order so the strash key is canonical.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        // Trivial rules.
        if a == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if a == b {
            return a;
        }
        if let Some(&var) = self.strash.get(&(a, b)) {
            return var.lit();
        }
        let var = Var::new(self.nodes.len() as u32);
        self.nodes.push(Node::And(a, b));
        self.strash.insert((a, b), var);
        var.lit()
    }

    /// Builds the OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Builds the XOR of two literals (three AND gates).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n0 = self.and(a, !b);
        let n1 = self.and(!a, b);
        self.or(n0, n1)
    }

    /// Builds the XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Builds a 2:1 multiplexer: `if s { t } else { e }`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let n0 = self.and(s, t);
        let n1 = self.and(!s, e);
        self.or(n0, n1)
    }

    /// Builds the majority of three literals.
    pub fn maj3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let o = self.or(ab, ac);
        self.or(o, bc)
    }

    /// Builds the AND over an iterator of literals (balanced tree).
    pub fn and_all<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let mut layer: Vec<Lit> = lits.into_iter().collect();
        if layer.is_empty() {
            return Lit::TRUE;
        }
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.and(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Builds the OR over an iterator of literals (balanced tree).
    pub fn or_all<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let inv: Vec<Lit> = lits.into_iter().map(|l| !l).collect();
        !self.and_all(inv)
    }

    /// Returns the node stored at `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of bounds.
    #[inline]
    pub fn node(&self, var: Var) -> Node {
        self.nodes[var.index()]
    }

    /// Returns the full node slice, indexed by variable.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Returns the number of nodes including the constant node.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.pis.len()
    }

    /// Returns the number of primary inputs.
    #[inline]
    pub fn num_pis(&self) -> usize {
        self.pis.len()
    }

    /// Returns the number of primary outputs.
    #[inline]
    pub fn num_pos(&self) -> usize {
        self.pos.len()
    }

    /// Returns the primary input variables in input order.
    #[inline]
    pub fn pis(&self) -> &[Var] {
        &self.pis
    }

    /// Returns the primary output literals in output order.
    #[inline]
    pub fn pos(&self) -> &[Lit] {
        &self.pos
    }

    /// Returns the `i`-th primary output literal.
    #[inline]
    pub fn po(&self, i: usize) -> Lit {
        self.pos[i]
    }

    /// Replaces the `i`-th primary output literal.
    pub fn set_po(&mut self, i: usize, lit: Lit) {
        self.pos[i] = lit;
    }

    /// Iterates over the variables of all AND nodes, in topological order.
    pub fn and_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| {
            if n.is_and() {
                Some(Var::new(i as u32))
            } else {
                None
            }
        })
    }

    /// Evaluates all POs under one assignment of the PIs.
    ///
    /// This is the reference (slow, one pattern at a time) evaluator used by
    /// tests and counter-example validation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_pis()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.pis.len(), "wrong number of input values");
        let values = self.eval_nodes(inputs);
        self.pos
            .iter()
            .map(|po| po.eval(values[po.var().index()]))
            .collect()
    }

    /// Evaluates every node under one assignment of the PIs and returns the
    /// value of each variable.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_pis()`.
    pub fn eval_nodes(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.pis.len(), "wrong number of input values");
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                Node::Const => false,
                Node::Input(pi) => inputs[*pi as usize],
                Node::And(a, b) => {
                    a.eval(values[a.var().index()]) && b.eval(values[b.var().index()])
                }
            };
        }
        values
    }

    /// Checks basic structural invariants; used by tests and debug builds.
    ///
    /// Verifies that node 0 is the constant, fanins precede their node, AND
    /// fanins are ordered, and PI bookkeeping is consistent.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.is_empty() || !self.nodes[0].is_const() {
            return Err("node 0 must be the constant node".into());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Const => {
                    if i != 0 {
                        return Err(format!("constant node at index {i}"));
                    }
                }
                Node::Input(pi) => {
                    if self.pis.get(*pi as usize) != Some(&Var::new(i as u32)) {
                        return Err(format!("PI bookkeeping broken at node {i}"));
                    }
                }
                Node::And(a, b) => {
                    if a > b {
                        return Err(format!("unordered fanins at node {i}"));
                    }
                    if a.var().index() >= i || b.var().index() >= i {
                        return Err(format!("fanin does not precede node {i}"));
                    }
                }
            }
        }
        for po in &self.pos {
            if po.var().index() >= self.nodes.len() {
                return Err("PO literal out of range".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strash_dedups_gates() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a, b);
        let g = aig.and(b, a);
        assert_eq!(f, g);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn trivial_rules_fold() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn xor_truth_table() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.xor(a, b);
        aig.add_po(f);
        assert_eq!(aig.eval(&[false, false]), vec![false]);
        assert_eq!(aig.eval(&[true, false]), vec![true]);
        assert_eq!(aig.eval(&[false, true]), vec![true]);
        assert_eq!(aig.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn mux_truth_table() {
        let mut aig = Aig::new();
        let s = aig.add_input();
        let t = aig.add_input();
        let e = aig.add_input();
        let f = aig.mux(s, t, e);
        aig.add_po(f);
        for s_v in [false, true] {
            for t_v in [false, true] {
                for e_v in [false, true] {
                    let expect = if s_v { t_v } else { e_v };
                    assert_eq!(aig.eval(&[s_v, t_v, e_v]), vec![expect]);
                }
            }
        }
    }

    #[test]
    fn maj3_truth_table() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f = aig.maj3(a, b, c);
        aig.add_po(f);
        for v in 0..8u32 {
            let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
            let expect = bits.iter().filter(|&&x| x).count() >= 2;
            assert_eq!(aig.eval(&bits), vec![expect]);
        }
    }

    #[test]
    fn and_all_empty_is_true() {
        let mut aig = Aig::new();
        assert_eq!(aig.and_all(std::iter::empty()), Lit::TRUE);
        assert_eq!(aig.or_all(std::iter::empty()), Lit::FALSE);
    }

    #[test]
    fn and_or_all_wide() {
        let mut aig = Aig::new();
        let inputs = aig.add_inputs(7);
        let f = aig.and_all(inputs.iter().copied());
        let g = aig.or_all(inputs.iter().copied());
        aig.add_po(f);
        aig.add_po(g);
        assert_eq!(aig.eval(&[true; 7]), vec![true, true]);
        assert_eq!(aig.eval(&[false; 7]), vec![false, false]);
        let mut mixed = [false; 7];
        mixed[3] = true;
        assert_eq!(aig.eval(&mixed), vec![false, true]);
    }

    #[test]
    fn invariants_hold_after_construction() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let f = aig.xor(xs[0], xs[1]);
        let g = aig.mux(xs[2], f, xs[3]);
        aig.add_po(g);
        aig.check_invariants().unwrap();
    }
}

//! # parsweep-aig — And-Inverter Graph substrate
//!
//! The circuit representation underlying the `parsweep` combinational
//! equivalence checker: a structurally hashed [`Aig`] with topological
//! utilities, [AIGER](https://fmv.jku.at/aiger/) I/O, miter construction,
//! benchmark enlargement (`double`) and the substitution-based rebuilding
//! used by sweeping to merge proved-equivalent nodes.
//!
//! ```
//! use parsweep_aig::{Aig, miter, is_proved};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a half adder twice, differently, and miter the two versions.
//! let mut a = Aig::new();
//! let xs = a.add_inputs(2);
//! let sum = a.xor(xs[0], xs[1]);
//! a.add_po(sum);
//!
//! let mut b = Aig::new();
//! let ys = b.add_inputs(2);
//! let o = b.or(ys[0], ys[1]);
//! let n = b.and(ys[0], ys[1]);
//! let sum2 = b.and(o, !n); // (a|b) & !(a&b) == a^b
//! b.add_po(sum2);
//!
//! let m = miter(&a, &b)?;
//! // Not structurally identical, so the miter is not trivially proved...
//! assert!(!is_proved(&m));
//! // ...but semantically every PO is zero.
//! assert_eq!(m.eval(&[true, false]), vec![false]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod aig;
pub mod aiger;
pub mod bench_fmt;
mod build;
pub mod dot;
mod extract;
mod lit;
mod miter;
mod node;
pub mod random;
mod stats;
mod topo;
pub mod verilog;

pub use aig::Aig;
pub use aiger::{read_aiger, read_aiger_file, write_aiger_file, ParseAigerError};
pub use extract::ConeExtraction;
pub use lit::{Lit, Var};
pub use miter::{is_proved, miter, BuildMiterError};
pub use node::Node;
pub use stats::NetworkStats;
pub use topo::Support;

//! Variables and literals.
//!
//! An AIG is addressed by [`Var`] (node index) and [`Lit`] (a variable with
//! an optional complement bit), following the AIGER convention: a literal is
//! `2 * var + complement`. Variable 0 is reserved for the constant node, so
//! literal 0 is constant false and literal 1 is constant true.

use std::fmt;

/// A variable: the index of a node in an [`Aig`](crate::Aig).
///
/// Variable 0 always denotes the constant-false node.
///
/// ```
/// use parsweep_aig::{Var, Lit};
/// let v = Var::new(3);
/// assert_eq!(v.lit(), Lit::new(3, false));
/// assert_eq!(v.lit().var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Var(u32);

impl Var {
    /// The constant-false variable.
    pub const FALSE: Var = Var(0);

    /// Creates a variable from its index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the index of this variable.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive (non-complemented) literal of this variable.
    #[inline]
    pub const fn lit(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// Returns the literal of this variable with the given complement bit.
    #[inline]
    pub const fn lit_with(self, complement: bool) -> Lit {
        Lit((self.0 << 1) | complement as u32)
    }

    /// Returns true if this is the constant-false variable.
    #[inline]
    pub const fn is_const(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a [`Var`] plus a complement bit, encoded as `2 * var + c`.
///
/// ```
/// use parsweep_aig::Lit;
/// let a = Lit::new(5, false);
/// assert_eq!((!a).var(), a.var());
/// assert!((!a).is_complemented());
/// assert_eq!(!!a, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lit(u32);

impl Lit {
    /// Constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// Constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal from a variable index and complement flag.
    #[inline]
    pub const fn new(var: u32, complement: bool) -> Self {
        Lit((var << 1) | complement as u32)
    }

    /// Creates a literal from its AIGER encoding (`2 * var + c`).
    #[inline]
    pub const fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the AIGER encoding of this literal.
    #[inline]
    pub const fn code(self) -> u32 {
        self.0
    }

    /// Returns the variable of this literal.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns true if the literal is complemented.
    #[inline]
    pub const fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns this literal with the complement bit cleared.
    #[inline]
    pub const fn abs(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// Returns this literal complemented iff `c` is true.
    #[inline]
    pub const fn xor(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }

    /// Returns true if this literal is constant false or true.
    #[inline]
    pub const fn is_const(self) -> bool {
        self.0 < 2
    }

    /// Evaluates the literal given the value of its variable.
    #[inline]
    pub const fn eval(self, var_value: bool) -> bool {
        var_value != self.is_complemented()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(v: Var) -> Lit {
        v.lit()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!v{}", self.var().0)
        } else {
            write!(f, "v{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding_roundtrip() {
        for code in 0..100u32 {
            let l = Lit::from_code(code);
            assert_eq!(l.code(), code);
            assert_eq!(l.var().index(), (code >> 1) as usize);
            assert_eq!(l.is_complemented(), code & 1 == 1);
        }
    }

    #[test]
    fn complement_is_involution() {
        let l = Lit::new(7, true);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn constants() {
        assert_eq!(Lit::FALSE.var(), Var::FALSE);
        assert_eq!(!Lit::FALSE, Lit::TRUE);
        assert!(Lit::FALSE.is_const());
        assert!(Lit::TRUE.is_const());
        assert!(!Lit::new(1, false).is_const());
    }

    #[test]
    fn xor_flag() {
        let l = Lit::new(4, false);
        assert_eq!(l.xor(true), !l);
        assert_eq!(l.xor(false), l);
    }

    #[test]
    fn eval_respects_complement() {
        let l = Lit::new(2, true);
        assert!(l.eval(false));
        assert!(!l.eval(true));
        assert!(!(!l).eval(false));
    }

    #[test]
    fn ordering_groups_by_var() {
        let a = Lit::new(1, true);
        let b = Lit::new(2, false);
        assert!(a < b);
        assert!(Lit::new(2, false) < Lit::new(2, true));
    }
}

//! Network statistics: size, depth, structural histograms — the numbers
//! reported in benchmark tables (the paper's Table II statistics columns).

use std::fmt;

use crate::{Aig, Node};

/// Aggregate structural statistics of an [`Aig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkStats {
    /// Primary inputs.
    pub num_pis: usize,
    /// Primary outputs.
    pub num_pos: usize,
    /// AND gates.
    pub num_ands: usize,
    /// Network depth (maximum PO level).
    pub depth: u32,
    /// Number of nodes per level (index = level).
    pub level_histogram: Vec<usize>,
    /// Edges with an inverter (complemented fanins, POs included).
    pub complemented_edges: usize,
    /// Nodes with more than one fanout.
    pub multi_fanout_nodes: usize,
    /// Dangling AND nodes (no path to any PO).
    pub dangling_nodes: usize,
}

impl NetworkStats {
    /// Computes the statistics of a network.
    pub fn of(aig: &Aig) -> NetworkStats {
        let levels = aig.levels();
        let depth = aig.depth();
        let mut level_histogram = vec![0usize; depth as usize + 1];
        let mut complemented_edges = 0usize;
        for (i, node) in aig.nodes().iter().enumerate() {
            if let Node::And(a, b) = node {
                if (levels[i] as usize) < level_histogram.len() {
                    level_histogram[levels[i] as usize] += 1;
                }
                complemented_edges += a.is_complemented() as usize + b.is_complemented() as usize;
            }
        }
        complemented_edges += aig.pos().iter().filter(|po| po.is_complemented()).count();
        let fanouts = aig.fanout_counts();
        let multi_fanout_nodes = aig.and_vars().filter(|v| fanouts[v.index()] > 1).count();
        let dangling_nodes = aig.num_ands() - aig.clean().num_ands().min(aig.num_ands());
        NetworkStats {
            num_pis: aig.num_pis(),
            num_pos: aig.num_pos(),
            num_ands: aig.num_ands(),
            depth,
            level_histogram,
            complemented_edges,
            multi_fanout_nodes,
            dangling_nodes,
        }
    }

    /// Average number of AND gates per level.
    pub fn avg_level_width(&self) -> f64 {
        if self.level_histogram.is_empty() {
            0.0
        } else {
            self.num_ands as f64 / self.level_histogram.len() as f64
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pis={} pos={} ands={} depth={} inv-edges={} multi-fanout={} dangling={}",
            self.num_pis,
            self.num_pos,
            self.num_ands,
            self.depth,
            self.complemented_edges,
            self.multi_fanout_nodes,
            self.dangling_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_network() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        let g = aig.and(f, !xs[0]);
        aig.add_po(!g);
        let s = NetworkStats::of(&aig);
        assert_eq!(s.num_pis, 2);
        assert_eq!(s.num_ands, 2);
        assert_eq!(s.depth, 2);
        assert_eq!(s.level_histogram, vec![0, 1, 1]);
        // One inverter on g's fanin, one on the PO.
        assert_eq!(s.complemented_edges, 2);
        assert_eq!(s.dangling_nodes, 0);
        assert!(s.to_string().contains("ands=2"));
    }

    #[test]
    fn dangling_nodes_counted() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let used = aig.and(xs[0], xs[1]);
        let _dead = aig.or(xs[0], xs[1]);
        aig.add_po(used);
        let s = NetworkStats::of(&aig);
        assert_eq!(s.dangling_nodes, 1);
    }

    #[test]
    fn multi_fanout_detection() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let shared = aig.and(xs[0], xs[1]);
        let a = aig.and(shared, xs[0]);
        let b = aig.and(shared, xs[1]);
        aig.add_po(a);
        aig.add_po(b);
        let s = NetworkStats::of(&aig);
        assert_eq!(s.multi_fanout_nodes, 1);
        assert!(s.avg_level_width() > 0.0);
    }
}

//! Typed kernel graphs: record a launch DAG once, replay it with new
//! bindings — the executor-model analogue of CUDA graphs
//! (`cudaGraphInstantiate` / `cudaGraphLaunch`).
//!
//! Iterative engines relaunch the same kernel topology every round (the
//! paper's Fig. 5 multi-round exhaustive-simulation loop is the canonical
//! case: per-window input projection → per-level AND evaluation → output
//! comparison, once per pattern round). A [`KernelGraph`] records that
//! topology once; [`KernelGraph::replay`] then executes it for a concrete
//! *bindings* value `B` (the round index, active sets, bound buffers…),
//! with node widths themselves functions of the bindings so a replay can
//! shrink or skip nodes (width 0) as work drains.
//!
//! Replay schedules the DAG in *waves* (antichains of equal depth): all
//! nodes of a wave run as one [`Executor::join`] epoch on separate
//! streams, so independent branches genuinely interleave on the worker
//! pool and the cost model charges the wave at the width of its heaviest
//! branch only.
//!
//! ```
//! use parsweep_par::{Executor, KernelGraphBuilder};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! struct Round<'a> {
//!     scale: u64,
//!     acc: &'a AtomicU64,
//! }
//! let exec = Executor::with_threads(2);
//! let acc = AtomicU64::new(0);
//! let mut g = KernelGraphBuilder::<Round>::new();
//! let a = g.kernel("a", &[], |_| 8, |tid, r: &Round| {
//!     r.acc.fetch_add(r.scale * tid as u64, Ordering::Relaxed);
//! });
//! let _b = g.kernel("b", &[a], |_| 4, |_, r: &Round| {
//!     r.acc.fetch_add(1, Ordering::Relaxed);
//! });
//! let graph = g.build();
//! graph.replay(&exec, &Round { scale: 2, acc: &acc });
//! graph.replay(&exec, &Round { scale: 0, acc: &acc });
//! assert_eq!(acc.load(Ordering::Relaxed), 2 * 28 + 4 + 4);
//! assert_eq!(exec.stats().total_launches(), 4);
//! ```

use crate::effects::{self, BufferDecl, DeclaredLaunch, DeclaredPeer, Effect, StaticHazard};
use crate::stream::Pending;
use crate::{BufId, EffectTable, Executor, Stream};
use parsweep_trace as trace;
use std::sync::Arc;

/// Handle to a node of a [`KernelGraphBuilder`] / [`KernelGraph`], used to
/// declare dependencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(usize);

/// A recorded kernel body: `(tid, bindings)`.
type NodeKernel<'env, B> = Box<dyn Fn(usize, &B) + Send + Sync + 'env>;

struct Node<'env, B> {
    label: String,
    width: Box<dyn Fn(&B) -> usize + Send + Sync + 'env>,
    kernel: NodeKernel<'env, B>,
    depth: usize,
    /// Declared static effects plus the maximum width the node was
    /// verified at, for nodes recorded with
    /// [`KernelGraphBuilder::kernel_declared`].
    declared: Option<(Arc<Vec<Effect>>, usize)>,
}

/// Builder recording the nodes and edges of a [`KernelGraph`].
///
/// Dependencies can only point at already-created nodes, so the recorded
/// structure is a DAG by construction.
pub struct KernelGraphBuilder<'env, B> {
    nodes: Vec<Node<'env, B>>,
    table: Option<EffectTable>,
    /// `(buffer, depth)`: the buffer's storage is released (arena lease
    /// returned, slice dropped) once every node of depth `< depth` has
    /// run; any declared use at depth `>= depth` is a use-after-release.
    releases: Vec<(BufId, usize)>,
}

impl<B> Default for KernelGraphBuilder<'_, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'env, B> KernelGraphBuilder<'env, B> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        KernelGraphBuilder {
            nodes: Vec::new(),
            table: None,
            releases: Vec::new(),
        }
    }

    /// Attaches the [`EffectTable`] that declared nodes' effects refer
    /// to. Required before [`KernelGraphBuilder::kernel_declared`].
    pub fn with_table(mut self, table: &EffectTable) -> Self {
        self.table = Some(table.clone());
        self
    }

    /// Records a kernel node that runs after every node in `deps`.
    ///
    /// `width` maps the replay bindings to the launch width (0 skips the
    /// node for that replay); `kernel(tid, bindings)` is the kernel body.
    ///
    /// **Replay invariant**: all nodes of equal depth run as *one
    /// unordered join epoch* (one stream each), for every replay. An
    /// undeclared node must therefore touch data disjoint from every
    /// same-depth node under *every* possible binding — the builder
    /// cannot check this. Nodes recorded with
    /// [`KernelGraphBuilder::kernel_declared`] are instead proven
    /// disjoint at their declared maximum widths, which covers every
    /// narrower replay (footprints only shrink as widths shrink).
    pub fn kernel<W, K>(&mut self, label: &str, deps: &[NodeId], width: W, kernel: K) -> NodeId
    where
        W: Fn(&B) -> usize + Send + Sync + 'env,
        K: Fn(usize, &B) + Send + Sync + 'env,
    {
        let depth = self.depth_after(deps);
        self.nodes.push(Node {
            label: label.to_string(),
            width: Box::new(width),
            kernel: Box::new(kernel),
            depth,
            declared: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Records a kernel node with declared static [`Effect`]s.
    ///
    /// `max_width` is the largest width the node's `width` function may
    /// return for any binding; the static checker verifies the effects
    /// at this width, and [`KernelGraph::replay`] asserts every runtime
    /// width stays within it. A graph whose nodes are all declared and
    /// hazard-free replays without dynamic sanitization.
    ///
    /// # Panics
    ///
    /// Panics if no [`EffectTable`] was attached with
    /// [`KernelGraphBuilder::with_table`].
    #[allow(clippy::too_many_arguments)]
    pub fn kernel_declared<W, K>(
        &mut self,
        label: &str,
        deps: &[NodeId],
        width: W,
        max_width: usize,
        effects: Vec<Effect>,
        kernel: K,
    ) -> NodeId
    where
        W: Fn(&B) -> usize + Send + Sync + 'env,
        K: Fn(usize, &B) + Send + Sync + 'env,
    {
        assert!(
            self.table.is_some(),
            "kernel_declared requires with_table() before declaring effects"
        );
        let depth = self.depth_after(deps);
        self.nodes.push(Node {
            label: label.to_string(),
            width: Box::new(width),
            kernel: Box::new(kernel),
            depth,
            declared: Some((Arc::new(effects), max_width)),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Declares that `buf`'s storage is released once every node in
    /// `deps` has run: any declared use of it by a node scheduled at or
    /// after that point is flagged as a use-after-release at build time.
    pub fn release(&mut self, buf: BufId, deps: &[NodeId]) {
        let depth = self.depth_after(deps);
        self.releases.push((buf, depth));
    }

    fn depth_after(&self, deps: &[NodeId]) -> usize {
        deps.iter()
            .map(|d| self.nodes[d.0].depth + 1)
            .max()
            .unwrap_or(0)
    }

    /// Finalizes the recording into a replayable graph, panicking if
    /// the static effect checker finds a hazard. See
    /// [`KernelGraphBuilder::try_build`].
    pub fn build(self) -> KernelGraph<'env, B> {
        self.try_build().unwrap_or_else(|hazards| {
            panic!(
                "static effect check failed at graph build:\n{}",
                hazards
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        })
    }

    /// Finalizes the recording into a replayable graph, running the
    /// static effect checker over all declared nodes:
    ///
    /// * every declared node is checked in isolation at its declared
    ///   maximum width (bounds, thread disjointness);
    /// * every *same-depth* pair of declared nodes — which replay as
    ///   one unordered epoch — is checked for footprint disjointness at
    ///   their maximum widths;
    /// * declared uses of a buffer at or past its
    ///   [`release`](KernelGraphBuilder::release) depth are flagged.
    ///
    /// The resulting graph is [`verified`](KernelGraph::verified) when
    /// a table was attached, every node is declared, and no hazard was
    /// found — verified graphs replay without dynamic sanitization.
    pub fn try_build(self) -> Result<KernelGraph<'env, B>, Vec<StaticHazard>> {
        let buffers = self.table.as_ref().map(|t| t.snapshot());
        let mut hazards = Vec::new();
        if let Some(buffers) = &buffers {
            for node in &self.nodes {
                let Some((effects_list, max_width)) = &node.declared else {
                    continue;
                };
                hazards.extend(effects::check_launch(
                    &node.label,
                    *max_width,
                    effects_list,
                    buffers,
                ));
                for &(buf, depth) in &self.releases {
                    if node.depth >= depth && effects_list.iter().any(|e| e.buf == buf) {
                        hazards.push(StaticHazard::UseAfterRelease {
                            kernel: node.label.clone(),
                            buffer: buffers[buf.0 as usize].label.clone(),
                        });
                    }
                }
            }
            // Same-depth nodes replay as one unordered epoch, so every
            // pair must have disjoint footprints. Wide graphs (one node
            // per window, thousands of windows per wave) make the naive
            // all-pairs check quadratic, so candidate pairs are found
            // with an interval sweep first: only nodes whose coarse
            // per-buffer envelopes overlap (write-vs-anything) get the
            // full `check_unordered` treatment. Envelope-disjoint pairs
            // cannot conflict — the precise overlap test refines the
            // envelope, never widens it.
            let mut depth_groups: Vec<Vec<usize>> = Vec::new();
            for (i, node) in self.nodes.iter().enumerate() {
                if depth_groups.len() <= node.depth {
                    depth_groups.resize(node.depth + 1, Vec::new());
                }
                depth_groups[node.depth].push(i);
            }
            for group in &depth_groups {
                // (lo, hi, node, is_write) envelopes, bucketed by buffer
                // label — `check_unordered` matches buffers by label.
                let mut by_label: std::collections::HashMap<
                    &str,
                    Vec<(usize, usize, usize, bool)>,
                > = std::collections::HashMap::new();
                for &i in group {
                    let Some((effects_list, w)) = &self.nodes[i].declared else {
                        continue;
                    };
                    for e in effects_list.iter() {
                        let decl = &buffers[e.buf.0 as usize];
                        if let Some((lo, hi)) = e.pattern.footprint(*w, decl.len) {
                            by_label.entry(decl.label.as_str()).or_default().push((
                                lo,
                                hi,
                                i,
                                e.is_write(),
                            ));
                        }
                    }
                }
                let mut candidates = std::collections::BTreeSet::new();
                for entries in by_label.values_mut() {
                    entries.sort_unstable();
                    for (k, &(_, hi_a, na, wr_a)) in entries.iter().enumerate() {
                        for &(lo_b, _, nb, wr_b) in &entries[k + 1..] {
                            if lo_b >= hi_a {
                                break;
                            }
                            if na != nb && (wr_a || wr_b) {
                                candidates.insert((na.min(nb), na.max(nb)));
                            }
                        }
                    }
                }
                for (i, j) in candidates {
                    let (a, b) = (&self.nodes[i], &self.nodes[j]);
                    let (ea, wa) = a.declared.as_ref().expect("candidate nodes are declared");
                    let (eb, wb) = b.declared.as_ref().expect("candidate nodes are declared");
                    hazards.extend(effects::check_unordered(
                        &DeclaredPeer {
                            label: &a.label,
                            width: *wa,
                            buffers,
                            effects: ea,
                        },
                        &DeclaredPeer {
                            label: &b.label,
                            width: *wb,
                            buffers,
                            effects: eb,
                        },
                    ));
                }
            }
        }
        if !hazards.is_empty() {
            return Err(hazards);
        }
        let verified = buffers.is_some() && self.nodes.iter().all(|n| n.declared.is_some());
        let max_depth = self.nodes.iter().map(|n| n.depth).max();
        let mut waves = vec![Vec::new(); max_depth.map_or(0, |d| d + 1)];
        for (i, node) in self.nodes.iter().enumerate() {
            waves[node.depth].push(i);
        }
        Ok(KernelGraph {
            nodes: self.nodes,
            waves,
            buffers: buffers.unwrap_or_default(),
            verified,
        })
    }
}

/// A recorded launch DAG, replayable against fresh bindings — the
/// executor-model analogue of an instantiated CUDA graph.
pub struct KernelGraph<'env, B> {
    nodes: Vec<Node<'env, B>>,
    waves: Vec<Vec<usize>>,
    /// Snapshot of the builder's effect table (empty without one).
    buffers: Arc<Vec<BufferDecl>>,
    verified: bool,
}

impl<B: Sync> KernelGraph<'_, B> {
    /// Number of recorded kernel nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of scheduling waves (the graph's depth).
    pub fn num_waves(&self) -> usize {
        self.waves.len()
    }

    /// True when every node carries statically-checked effect
    /// declarations: replays of this graph skip dynamic sanitization
    /// (counted in
    /// [`LaunchStats::static_verified_replays`](crate::LaunchStats::static_verified_replays)),
    /// unless the executor is in cross-check mode.
    pub fn verified(&self) -> bool {
        self.verified
    }

    /// Executes the graph for one bindings value.
    ///
    /// Each wave of dependency-free nodes becomes one [`Executor::join`]
    /// epoch — one stream per node — so independent nodes interleave and
    /// only the heaviest node of each wave lands on the modeled critical
    /// path. Nodes whose width evaluates to 0 are skipped entirely (no
    /// launch is recorded).
    pub fn replay(&self, exec: &Executor, bindings: &B) {
        let mut span = trace::span("graph", "graph.replay");
        span.arg_u64("nodes", self.num_nodes() as u64);
        span.arg_u64("waves", self.num_waves() as u64);
        span.arg_u64("verified", self.verified as u64);
        for wave in &self.waves {
            let mut streams: Vec<Stream<'_, '_>> = Vec::with_capacity(wave.len());
            for &id in wave {
                let node = &self.nodes[id];
                let width = (node.width)(bindings);
                if width == 0 {
                    continue;
                }
                let kernel = &node.kernel;
                let mut stream = exec.stream();
                if let Some((effects_list, max_width)) = &node.declared {
                    assert!(
                        width <= *max_width,
                        "graph node `{}` replayed at width {width}, beyond its \
                         statically verified maximum {max_width}",
                        node.label
                    );
                    // Already checked at build time at max_width, which
                    // dominates this width — queue without re-checking.
                    stream.queue.push(Pending {
                        label: node.label.clone(),
                        n: width,
                        coverage: None,
                        declared: Some(DeclaredLaunch {
                            buffers: Arc::clone(&self.buffers),
                            effects: Arc::clone(effects_list),
                        }),
                        // Same-depth disjointness was proven at build
                        // time at max widths; the epoch drain must not
                        // re-check O(wave²) pairs on every replay.
                        preverified: true,
                        kernel: Box::new(move |tid| kernel(tid, bindings)),
                    });
                } else {
                    stream.launch_labeled(&node.label, width, move |tid| kernel(tid, bindings));
                }
                streams.push(stream);
            }
            if !streams.is_empty() {
                let mut refs: Vec<&mut Stream<'_, '_>> = streams.iter_mut().collect();
                exec.join(&mut refs);
            }
        }
        if self.verified && !exec.cross_checking() {
            exec.note_verified_replay();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn waves_follow_dependency_depth() {
        let mut g = KernelGraphBuilder::<()>::new();
        let a = g.kernel("a", &[], |_| 1, |_, _| {});
        let b = g.kernel("b", &[], |_| 1, |_, _| {});
        let c = g.kernel("c", &[a, b], |_| 1, |_, _| {});
        let _d = g.kernel("d", &[c], |_| 1, |_, _| {});
        let graph = g.build();
        assert_eq!(graph.num_nodes(), 4);
        assert_eq!(graph.num_waves(), 3);
    }

    #[test]
    fn replay_respects_ordering_edges() {
        // b depends on a: every replay must observe a's writes.
        let mut g = KernelGraphBuilder::<Vec<AtomicUsize>>::new();
        let a = g.kernel(
            "a",
            &[],
            |cells: &Vec<AtomicUsize>| cells.len(),
            |tid, cells| cells[tid].store(tid + 1, Ordering::SeqCst),
        );
        g.kernel(
            "b",
            &[a],
            |cells: &Vec<AtomicUsize>| cells.len(),
            |tid, cells| {
                let seen = cells[tid].load(Ordering::SeqCst);
                assert_eq!(seen, tid + 1, "b ran before its dependency a");
                cells[tid].store(seen * 10, Ordering::SeqCst);
            },
        );
        let graph = g.build();
        let exec = Executor::with_threads(4);
        for _ in 0..3 {
            let cells: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
            graph.replay(&exec, &cells);
            assert!(cells
                .iter()
                .enumerate()
                .all(|(i, c)| c.load(Ordering::SeqCst) == (i + 1) * 10));
        }
    }

    #[test]
    fn zero_width_nodes_are_skipped() {
        let mut g = KernelGraphBuilder::<usize>::new();
        g.kernel("gated", &[], |&active| active, |_, _| {});
        let graph = g.build();
        let exec = Executor::with_threads(2);
        graph.replay(&exec, &0);
        assert_eq!(exec.stats().total_launches(), 0);
        graph.replay(&exec, &5);
        assert_eq!(exec.stats().total_launches(), 1);
        assert_eq!(exec.stats().total_threads, 5);
    }
}

//! Typed kernel graphs: record a launch DAG once, replay it with new
//! bindings — the executor-model analogue of CUDA graphs
//! (`cudaGraphInstantiate` / `cudaGraphLaunch`).
//!
//! Iterative engines relaunch the same kernel topology every round (the
//! paper's Fig. 5 multi-round exhaustive-simulation loop is the canonical
//! case: per-window input projection → per-level AND evaluation → output
//! comparison, once per pattern round). A [`KernelGraph`] records that
//! topology once; [`KernelGraph::replay`] then executes it for a concrete
//! *bindings* value `B` (the round index, active sets, bound buffers…),
//! with node widths themselves functions of the bindings so a replay can
//! shrink or skip nodes (width 0) as work drains.
//!
//! Replay schedules the DAG in *waves* (antichains of equal depth): all
//! nodes of a wave run as one [`Executor::join`] epoch on separate
//! streams, so independent branches genuinely interleave on the worker
//! pool and the cost model charges the wave at the width of its heaviest
//! branch only.
//!
//! ```
//! use parsweep_par::{Executor, KernelGraphBuilder};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! struct Round<'a> {
//!     scale: u64,
//!     acc: &'a AtomicU64,
//! }
//! let exec = Executor::with_threads(2);
//! let acc = AtomicU64::new(0);
//! let mut g = KernelGraphBuilder::<Round>::new();
//! let a = g.kernel("a", &[], |_| 8, |tid, r: &Round| {
//!     r.acc.fetch_add(r.scale * tid as u64, Ordering::Relaxed);
//! });
//! let _b = g.kernel("b", &[a], |_| 4, |_, r: &Round| {
//!     r.acc.fetch_add(1, Ordering::Relaxed);
//! });
//! let graph = g.build();
//! graph.replay(&exec, &Round { scale: 2, acc: &acc });
//! graph.replay(&exec, &Round { scale: 0, acc: &acc });
//! assert_eq!(acc.load(Ordering::Relaxed), 2 * 28 + 4 + 4);
//! assert_eq!(exec.stats().total_launches(), 4);
//! ```

use crate::{Executor, Stream};
use parsweep_trace as trace;

/// Handle to a node of a [`KernelGraphBuilder`] / [`KernelGraph`], used to
/// declare dependencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(usize);

/// A recorded kernel body: `(tid, bindings)`.
type NodeKernel<'env, B> = Box<dyn Fn(usize, &B) + Send + Sync + 'env>;

struct Node<'env, B> {
    label: String,
    width: Box<dyn Fn(&B) -> usize + Send + Sync + 'env>,
    kernel: NodeKernel<'env, B>,
    depth: usize,
}

/// Builder recording the nodes and edges of a [`KernelGraph`].
///
/// Dependencies can only point at already-created nodes, so the recorded
/// structure is a DAG by construction.
pub struct KernelGraphBuilder<'env, B> {
    nodes: Vec<Node<'env, B>>,
}

impl<B> Default for KernelGraphBuilder<'_, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'env, B> KernelGraphBuilder<'env, B> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        KernelGraphBuilder { nodes: Vec::new() }
    }

    /// Records a kernel node that runs after every node in `deps`.
    ///
    /// `width` maps the replay bindings to the launch width (0 skips the
    /// node for that replay); `kernel(tid, bindings)` is the kernel body.
    pub fn kernel<W, K>(&mut self, label: &str, deps: &[NodeId], width: W, kernel: K) -> NodeId
    where
        W: Fn(&B) -> usize + Send + Sync + 'env,
        K: Fn(usize, &B) + Send + Sync + 'env,
    {
        let depth = deps
            .iter()
            .map(|d| self.nodes[d.0].depth + 1)
            .max()
            .unwrap_or(0);
        self.nodes.push(Node {
            label: label.to_string(),
            width: Box::new(width),
            kernel: Box::new(kernel),
            depth,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Finalizes the recording into a replayable graph.
    pub fn build(self) -> KernelGraph<'env, B> {
        let max_depth = self.nodes.iter().map(|n| n.depth).max();
        let mut waves = vec![Vec::new(); max_depth.map_or(0, |d| d + 1)];
        for (i, node) in self.nodes.iter().enumerate() {
            waves[node.depth].push(i);
        }
        KernelGraph {
            nodes: self.nodes,
            waves,
        }
    }
}

/// A recorded launch DAG, replayable against fresh bindings — the
/// executor-model analogue of an instantiated CUDA graph.
pub struct KernelGraph<'env, B> {
    nodes: Vec<Node<'env, B>>,
    waves: Vec<Vec<usize>>,
}

impl<B: Sync> KernelGraph<'_, B> {
    /// Number of recorded kernel nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of scheduling waves (the graph's depth).
    pub fn num_waves(&self) -> usize {
        self.waves.len()
    }

    /// Executes the graph for one bindings value.
    ///
    /// Each wave of dependency-free nodes becomes one [`Executor::join`]
    /// epoch — one stream per node — so independent nodes interleave and
    /// only the heaviest node of each wave lands on the modeled critical
    /// path. Nodes whose width evaluates to 0 are skipped entirely (no
    /// launch is recorded).
    pub fn replay(&self, exec: &Executor, bindings: &B) {
        let mut span = trace::span("graph", "graph.replay");
        span.arg_u64("nodes", self.num_nodes() as u64);
        span.arg_u64("waves", self.num_waves() as u64);
        for wave in &self.waves {
            let mut streams: Vec<Stream<'_, '_>> = Vec::with_capacity(wave.len());
            for &id in wave {
                let node = &self.nodes[id];
                let width = (node.width)(bindings);
                if width == 0 {
                    continue;
                }
                let kernel = &node.kernel;
                let mut stream = exec.stream();
                stream.launch_labeled(&node.label, width, move |tid| kernel(tid, bindings));
                streams.push(stream);
            }
            if !streams.is_empty() {
                let mut refs: Vec<&mut Stream<'_, '_>> = streams.iter_mut().collect();
                exec.join(&mut refs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn waves_follow_dependency_depth() {
        let mut g = KernelGraphBuilder::<()>::new();
        let a = g.kernel("a", &[], |_| 1, |_, _| {});
        let b = g.kernel("b", &[], |_| 1, |_, _| {});
        let c = g.kernel("c", &[a, b], |_| 1, |_, _| {});
        let _d = g.kernel("d", &[c], |_| 1, |_, _| {});
        let graph = g.build();
        assert_eq!(graph.num_nodes(), 4);
        assert_eq!(graph.num_waves(), 3);
    }

    #[test]
    fn replay_respects_ordering_edges() {
        // b depends on a: every replay must observe a's writes.
        let mut g = KernelGraphBuilder::<Vec<AtomicUsize>>::new();
        let a = g.kernel(
            "a",
            &[],
            |cells: &Vec<AtomicUsize>| cells.len(),
            |tid, cells| cells[tid].store(tid + 1, Ordering::SeqCst),
        );
        g.kernel(
            "b",
            &[a],
            |cells: &Vec<AtomicUsize>| cells.len(),
            |tid, cells| {
                let seen = cells[tid].load(Ordering::SeqCst);
                assert_eq!(seen, tid + 1, "b ran before its dependency a");
                cells[tid].store(seen * 10, Ordering::SeqCst);
            },
        );
        let graph = g.build();
        let exec = Executor::with_threads(4);
        for _ in 0..3 {
            let cells: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
            graph.replay(&exec, &cells);
            assert!(cells
                .iter()
                .enumerate()
                .all(|(i, c)| c.load(Ordering::SeqCst) == (i + 1) * 10));
        }
    }

    #[test]
    fn zero_width_nodes_are_skipped() {
        let mut g = KernelGraphBuilder::<usize>::new();
        g.kernel("gated", &[], |&active| active, |_, _| {});
        let graph = g.build();
        let exec = Executor::with_threads(2);
        graph.replay(&exec, &0);
        assert_eq!(exec.stats().total_launches(), 0);
        graph.replay(&exec, &5);
        assert_eq!(exec.stats().total_launches(), 1);
        assert_eq!(exec.stats().total_threads, 5);
    }
}

//! The kernel sanitizer: a `compute-sanitizer --tool racecheck` analogue
//! for the executor's kernel-launch model.
//!
//! Real CUDA development leans on `compute-sanitizer` to find kernel data
//! races; our substitution preserves the same failure mode — kernels
//! writing [`DeviceSlice`](crate::DeviceSlice) buffers under an *unchecked*
//! "each tid owns its slot" discipline — so it needs the same tooling. When
//! a sanitizing [`Executor`](crate::Executor) runs a launch, every buffer
//! access is logged as `(buffer, index, virtual tid, kind)` and a
//! post-launch analysis detects, per launch:
//!
//! * **write–write hazards** — two distinct tids wrote one slot;
//! * **read–write hazards** — one tid read a slot another tid wrote in the
//!   same launch (inter-launch reads are ordered by the launch barrier and
//!   are fine, exactly as on a GPU stream);
//! * **out-of-bounds accesses** — index past the bound buffer's length;
//! * **unwritten slots** — a `map`/`fill` launch that failed to write some
//!   output slot it promised to initialize.
//!
//! Sanitized launches execute *serialized* in tid order: hazards are
//! detected from the virtual-tid access log rather than by racing real
//! threads, so a detected race is never physically exercised as UB —
//! the same trade (speed for determinism) racecheck makes.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// The kind of a logged buffer access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A read of one slot.
    Read,
    /// A write of one slot.
    Write,
}

/// The kind of hazard a [`RaceReport`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Two distinct tids wrote the same slot within one launch.
    WriteWrite {
        /// The two conflicting virtual thread ids.
        tids: (usize, usize),
    },
    /// A tid read a slot that a different tid wrote within the same
    /// launch, so the observed value depends on the schedule.
    ReadWrite {
        /// The reading and the writing virtual thread ids.
        tids: (usize, usize),
    },
    /// An access outside the bound buffer's length.
    OutOfBounds {
        /// The offending virtual thread id.
        tid: usize,
    },
    /// A slot of an exclusive-fill launch (`map`/`fill`) was never
    /// written, so reading it afterwards would observe uninitialized or
    /// stale memory.
    UnwrittenSlot,
}

/// One hazard found by the sanitizer's post-launch analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Label of the kernel launch the hazard occurred in.
    pub kernel: String,
    /// Launch ordinal (1-based, counting all launches of the executor).
    pub launch: u64,
    /// Label of the buffer the hazard occurred on.
    pub buffer: String,
    /// Slot index of the hazard.
    pub index: usize,
    /// What went wrong, including the conflicting virtual thread ids.
    pub kind: ConflictKind,
}

impl RaceReport {
    /// The pair of conflicting virtual thread ids, when the hazard
    /// involves two threads.
    pub fn conflicting_tids(&self) -> Option<(usize, usize)> {
        match self.kind {
            ConflictKind::WriteWrite { tids } | ConflictKind::ReadWrite { tids } => Some(tids),
            ConflictKind::OutOfBounds { .. } | ConflictKind::UnwrittenSlot => None,
        }
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let RaceReport {
            kernel,
            launch,
            buffer,
            index,
            kind,
        } = self;
        match kind {
            ConflictKind::WriteWrite { tids: (a, b) } => write!(
                f,
                "racecheck: write-write hazard on `{buffer}`[{index}] in kernel \
                 `{kernel}` (launch #{launch}): tids {a} and {b}"
            ),
            ConflictKind::ReadWrite { tids: (r, w) } => write!(
                f,
                "racecheck: read-write hazard on `{buffer}`[{index}] in kernel \
                 `{kernel}` (launch #{launch}): tid {r} read, tid {w} wrote"
            ),
            ConflictKind::OutOfBounds { tid } => write!(
                f,
                "racecheck: out-of-bounds access to `{buffer}`[{index}] in kernel \
                 `{kernel}` (launch #{launch}) by tid {tid}"
            ),
            ConflictKind::UnwrittenSlot => write!(
                f,
                "racecheck: slot `{buffer}`[{index}] left unwritten by exclusive-fill \
                 kernel `{kernel}` (launch #{launch})"
            ),
        }
    }
}

/// Configuration of a sanitizing executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Panic at the end of the first launch that produced hazard reports
    /// (like `compute-sanitizer --error-exitcode`). When `false`, reports
    /// accumulate for inspection via
    /// [`Executor::take_reports`](crate::Executor::take_reports).
    pub fail_fast: bool,
    /// Hard cap on retained reports, to bound memory on very racy kernels.
    pub max_reports: usize,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            fail_fast: true,
            max_reports: 64,
        }
    }
}

/// One logged access of one slot.
#[derive(Clone, Copy, Debug)]
struct AccessRecord {
    buffer: u32,
    index: usize,
    tid: usize,
    kind: AccessKind,
}

/// The launch currently executing under the sanitizer.
#[derive(Debug)]
struct LaunchCtx {
    label: String,
    ordinal: u64,
    /// `(buffer, n)`: the launch promises to write every slot `0..n` of
    /// `buffer` exactly once (`map`/`fill` coverage checking).
    coverage: Option<(u32, usize)>,
}

#[derive(Debug, Default)]
struct SanState {
    buffers: Vec<(String, usize)>,
    current: Option<LaunchCtx>,
    log: Vec<AccessRecord>,
    reports: Vec<RaceReport>,
}

/// Shared sanitizer state of one executor. All mutation goes through one
/// mutex; sanitized launches are serialized, so the lock is uncontended
/// and exists only to keep the executor `Sync`.
#[derive(Debug)]
pub(crate) struct Sanitizer {
    cfg: SanitizerConfig,
    state: Mutex<SanState>,
}

impl Sanitizer {
    pub(crate) fn new(cfg: SanitizerConfig) -> Self {
        Sanitizer {
            cfg,
            state: Mutex::new(SanState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SanState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers a buffer binding and returns its id.
    pub(crate) fn register_buffer(&self, label: &str, len: usize) -> u32 {
        let mut s = self.lock();
        s.buffers.push((label.to_string(), len));
        (s.buffers.len() - 1) as u32
    }

    /// Opens the per-launch access log.
    pub(crate) fn begin_launch(&self, label: &str, ordinal: u64, coverage: Option<(u32, usize)>) {
        let mut s = self.lock();
        assert!(
            s.current.is_none(),
            "sanitizer: nested kernel launch (`{label}` inside `{}`)",
            s.current.as_ref().map_or("?", |c| c.label.as_str())
        );
        s.current = Some(LaunchCtx {
            label: label.to_string(),
            ordinal,
            coverage,
        });
        s.log.clear();
    }

    /// Logs a write. Returns `false` when the write is out of bounds and
    /// must not be performed (the hazard is reported instead; in
    /// `fail_fast` mode it panics).
    pub(crate) fn record_write(&self, buffer: u32, index: usize, tid: usize) -> bool {
        match self.record(buffer, index, tid, AccessKind::Write) {
            None => true,
            Some(report) => {
                if self.cfg.fail_fast {
                    panic!("{report}");
                }
                false
            }
        }
    }

    /// Logs a read.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds read regardless of `fail_fast`: unlike a
    /// skipped write, there is no value the read could return.
    pub(crate) fn record_read(&self, buffer: u32, index: usize, tid: usize) {
        if let Some(report) = self.record(buffer, index, tid, AccessKind::Read) {
            panic!("{report}");
        }
    }

    /// Logs one access; returns the report when it was out of bounds.
    fn record(
        &self,
        buffer: u32,
        index: usize,
        tid: usize,
        kind: AccessKind,
    ) -> Option<RaceReport> {
        let mut s = self.lock();
        let len = s.buffers[buffer as usize].1;
        if index >= len {
            let report = RaceReport {
                kernel: s
                    .current
                    .as_ref()
                    .map_or_else(String::new, |c| c.label.clone()),
                launch: s.current.as_ref().map_or(0, |c| c.ordinal),
                buffer: s.buffers[buffer as usize].0.clone(),
                index,
                kind: ConflictKind::OutOfBounds { tid },
            };
            if s.reports.len() < self.cfg.max_reports {
                s.reports.push(report.clone());
            }
            return Some(report);
        }
        s.log.push(AccessRecord {
            buffer,
            index,
            tid,
            kind,
        });
        None
    }

    /// Closes the launch, runs the hazard analysis over the access log,
    /// and (in `fail_fast` mode) panics on the first hazard found.
    pub(crate) fn end_launch(&self) {
        let mut s = self.lock();
        let ctx = s.current.take().expect("end_launch without begin_launch");
        let log = std::mem::take(&mut s.log);
        let new_reports = analyze(&ctx, &log, &s.buffers);
        let first = new_reports.first().cloned();
        let room = self.cfg.max_reports.saturating_sub(s.reports.len());
        s.reports.extend(new_reports.into_iter().take(room));
        drop(s);
        if self.cfg.fail_fast {
            if let Some(report) = first {
                panic!("{report}");
            }
        }
    }

    /// Drains all accumulated reports.
    pub(crate) fn take_reports(&self) -> Vec<RaceReport> {
        std::mem::take(&mut self.lock().reports)
    }

    /// Clones all accumulated reports.
    pub(crate) fn reports(&self) -> Vec<RaceReport> {
        self.lock().reports.clone()
    }
}

/// Per-slot state accumulated while scanning a launch's access log.
#[derive(Clone, Copy, Debug, Default)]
struct SlotState {
    writer: Option<usize>,
    reader: Option<usize>,
    reported_ww: bool,
    reported_rw: bool,
}

/// Scans one launch's access log for hazards (at most one report of each
/// kind per slot, to keep racy kernels from flooding the report list).
fn analyze(ctx: &LaunchCtx, log: &[AccessRecord], buffers: &[(String, usize)]) -> Vec<RaceReport> {
    let mut slots: HashMap<(u32, usize), SlotState> = HashMap::new();
    let mut reports = Vec::new();
    let mut report = |buffer: u32, index: usize, kind: ConflictKind| {
        reports.push(RaceReport {
            kernel: ctx.label.clone(),
            launch: ctx.ordinal,
            buffer: buffers[buffer as usize].0.clone(),
            index,
            kind,
        });
    };
    for rec in log {
        let slot = slots.entry((rec.buffer, rec.index)).or_default();
        match rec.kind {
            AccessKind::Write => {
                match slot.writer {
                    Some(w) if w != rec.tid && !slot.reported_ww => {
                        slot.reported_ww = true;
                        report(
                            rec.buffer,
                            rec.index,
                            ConflictKind::WriteWrite { tids: (w, rec.tid) },
                        );
                    }
                    Some(_) => {}
                    None => slot.writer = Some(rec.tid),
                }
                if let Some(r) = slot.reader {
                    if r != rec.tid && !slot.reported_rw {
                        slot.reported_rw = true;
                        report(
                            rec.buffer,
                            rec.index,
                            ConflictKind::ReadWrite { tids: (r, rec.tid) },
                        );
                    }
                }
            }
            AccessKind::Read => {
                if let Some(w) = slot.writer {
                    if w != rec.tid && !slot.reported_rw {
                        slot.reported_rw = true;
                        report(
                            rec.buffer,
                            rec.index,
                            ConflictKind::ReadWrite { tids: (rec.tid, w) },
                        );
                    }
                }
                if slot.reader.is_none() {
                    slot.reader = Some(rec.tid);
                }
            }
        }
    }
    if let Some((buffer, n)) = ctx.coverage {
        for index in 0..n {
            let written = slots
                .get(&(buffer, index))
                .is_some_and(|s| s.writer.is_some());
            if !written {
                report(buffer, index, ConflictKind::UnwrittenSlot);
            }
        }
    }
    reports
}

//! The kernel sanitizer: a `compute-sanitizer --tool racecheck` analogue
//! for the executor's kernel-launch model.
//!
//! Real CUDA development leans on `compute-sanitizer` to find kernel data
//! races; our substitution preserves the same failure mode — kernels
//! writing [`DeviceSlice`](crate::DeviceSlice) buffers under an *unchecked*
//! "each tid owns its slot" discipline — so it needs the same tooling. When
//! a sanitizing [`Executor`](crate::Executor) runs a launch, every buffer
//! access is logged as `(buffer, index, virtual tid, kind)` and a
//! post-launch analysis detects, per launch:
//!
//! * **write–write hazards** — two distinct tids wrote one slot;
//! * **read–write hazards** — one tid read a slot another tid wrote in the
//!   same launch (inter-launch reads are ordered by the launch barrier and
//!   are fine, exactly as on a GPU stream);
//! * **out-of-bounds accesses** — index past the bound buffer's length;
//! * **unwritten slots** — a `map`/`fill` launch that failed to write some
//!   output slot it promised to initialize.
//!
//! With the stream runtime the sanitizer also understands *ordering
//! edges*: launches queued on one [`Stream`](crate::Stream) are ordered
//! by program order, and synchronization points (`sync`, `join`, eager
//! launches) are barriers ordering everything before against everything
//! after. Launches of *different* streams inside one join epoch have no
//! ordering edge, so the analysis additionally reports
//!
//! * **stream races** — two unordered launches touched one slot and at
//!   least one wrote it.
//!
//! Sanitized launches execute *serialized* in tid order: hazards are
//! detected from the virtual-tid access log rather than by racing real
//! threads, so a detected race is never physically exercised as UB —
//! the same trade (speed for determinism) racecheck makes.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Mutex;

use crate::effects::{DeclaredLaunch, EffectKind, Pattern};

/// The kind of a logged buffer access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A read of one slot.
    Read,
    /// A write of one slot.
    Write,
}

/// The kind of hazard a [`RaceReport`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Two distinct tids wrote the same slot within one launch.
    WriteWrite {
        /// The two conflicting virtual thread ids.
        tids: (usize, usize),
    },
    /// A tid read a slot that a different tid wrote within the same
    /// launch, so the observed value depends on the schedule.
    ReadWrite {
        /// The reading and the writing virtual thread ids.
        tids: (usize, usize),
    },
    /// An access outside the bound buffer's length.
    OutOfBounds {
        /// The offending virtual thread id.
        tid: usize,
    },
    /// A slot of an exclusive-fill launch (`map`/`fill`) was never
    /// written, so reading it afterwards would observe uninitialized or
    /// stale memory.
    UnwrittenSlot,
    /// Two launches on *different streams* with no ordering edge between
    /// them (same join epoch) accessed one slot, at least one writing —
    /// a race even if each launch is internally disciplined. The earlier
    /// launch (in sanitizer serialization order) comes first in each pair.
    StreamRace {
        /// Access kinds of the (earlier, later) launch at this slot.
        kinds: (AccessKind, AccessKind),
        /// Stream ids of the (earlier, later) launch.
        streams: (u64, u64),
        /// Virtual thread ids of the (earlier, later) access.
        tids: (usize, usize),
    },
    /// Cross-check mode only: a launch with declared static effects
    /// performed an access its declared footprints do not cover — the
    /// declaration under-approximates the kernel's real behavior, so
    /// the static checker's verdict for this launch is unsound.
    UndeclaredAccess {
        /// The offending virtual thread id.
        tid: usize,
        /// Whether the uncovered access was a read or a write.
        access: AccessKind,
    },
}

/// One hazard found by the sanitizer's post-launch analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaceReport {
    /// Label of the kernel launch the hazard occurred in.
    pub kernel: String,
    /// Launch ordinal (1-based, counting all launches of the executor).
    pub launch: u64,
    /// Label of the buffer the hazard occurred on.
    pub buffer: String,
    /// Slot index of the hazard.
    pub index: usize,
    /// What went wrong, including the conflicting virtual thread ids.
    pub kind: ConflictKind,
    /// For stream races: label of the unordered peer launch (the earlier
    /// one in serialization order). `None` for intra-launch hazards.
    pub other_kernel: Option<String>,
}

impl RaceReport {
    /// The pair of conflicting virtual thread ids, when the hazard
    /// involves two threads.
    pub fn conflicting_tids(&self) -> Option<(usize, usize)> {
        match self.kind {
            ConflictKind::WriteWrite { tids }
            | ConflictKind::ReadWrite { tids }
            | ConflictKind::StreamRace { tids, .. } => Some(tids),
            ConflictKind::OutOfBounds { .. }
            | ConflictKind::UnwrittenSlot
            | ConflictKind::UndeclaredAccess { .. } => None,
        }
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let RaceReport {
            kernel,
            launch,
            buffer,
            index,
            kind,
            other_kernel,
        } = self;
        match kind {
            ConflictKind::WriteWrite { tids: (a, b) } => write!(
                f,
                "racecheck: write-write hazard on `{buffer}`[{index}] in kernel \
                 `{kernel}` (launch #{launch}): tids {a} and {b}"
            ),
            ConflictKind::ReadWrite { tids: (r, w) } => write!(
                f,
                "racecheck: read-write hazard on `{buffer}`[{index}] in kernel \
                 `{kernel}` (launch #{launch}): tid {r} read, tid {w} wrote"
            ),
            ConflictKind::OutOfBounds { tid } => write!(
                f,
                "racecheck: out-of-bounds access to `{buffer}`[{index}] in kernel \
                 `{kernel}` (launch #{launch}) by tid {tid}"
            ),
            ConflictKind::UnwrittenSlot => write!(
                f,
                "racecheck: slot `{buffer}`[{index}] left unwritten by exclusive-fill \
                 kernel `{kernel}` (launch #{launch})"
            ),
            ConflictKind::StreamRace {
                kinds: (a, b),
                streams: (sa, sb),
                tids: (ta, tb),
            } => {
                let peer = other_kernel.as_deref().unwrap_or("?");
                let verb = |k: &AccessKind| match k {
                    AccessKind::Read => "read",
                    AccessKind::Write => "wrote",
                };
                write!(
                    f,
                    "racecheck: stream race on `{buffer}`[{index}]: kernel `{peer}` \
                     (stream {sa}, tid {ta}) {} it and unordered kernel `{kernel}` \
                     (launch #{launch}, stream {sb}, tid {tb}) {} it — no ordering \
                     edge between the launches",
                    verb(a),
                    verb(b)
                )
            }
            ConflictKind::UndeclaredAccess { tid, access } => {
                let verb = match access {
                    AccessKind::Read => "read",
                    AccessKind::Write => "write",
                };
                write!(
                    f,
                    "racecheck: undeclared {verb} of `{buffer}`[{index}] in kernel \
                     `{kernel}` (launch #{launch}) by tid {tid}: the launch's declared \
                     effects do not cover this access"
                )
            }
        }
    }
}

/// Configuration of a sanitizing executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SanitizerConfig {
    /// Panic at the end of the first launch that produced hazard reports
    /// (like `compute-sanitizer --error-exitcode`). When `false`, reports
    /// accumulate for inspection via
    /// [`Executor::take_reports`](crate::Executor::take_reports).
    pub fail_fast: bool,
    /// Hard cap on retained reports, to bound memory on very racy kernels.
    pub max_reports: usize,
    /// Cross-check mode: audit launches that carry static effect
    /// declarations instead of letting them skip dynamic sanitization.
    /// Every access such a launch performs must fall inside a declared
    /// footprint; an uncovered access is reported as
    /// [`ConflictKind::UndeclaredAccess`]. Forced on by
    /// `PARSWEEP_SANITIZE=all`.
    pub check_declared: bool,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            fail_fast: true,
            max_reports: 64,
            check_declared: false,
        }
    }
}

/// One logged access of one slot.
#[derive(Clone, Copy, Debug)]
struct AccessRecord {
    buffer: u32,
    index: usize,
    tid: usize,
    kind: AccessKind,
}

/// The launch currently executing under the sanitizer.
#[derive(Debug)]
struct LaunchCtx {
    label: String,
    ordinal: u64,
    /// `(buffer, n)`: the launch promises to write every slot `0..n` of
    /// `buffer` exactly once (`map`/`fill` coverage checking).
    coverage: Option<(u32, usize)>,
    /// Stream the launch was queued on (0 for eager launches).
    stream: u64,
    /// Cross-check mode: the launch's declared effects, resolved to the
    /// executor's dynamic buffer ids. Every logged access must be
    /// covered by some effect here.
    declared: Option<HashMap<u32, Vec<(EffectKind, Pattern)>>>,
}

/// First accesses of one slot accumulated across the launches of one
/// ordering epoch, for cross-stream (unordered-launch) race detection.
#[derive(Clone, Copy, Debug, Default)]
struct EpochSlot {
    /// `(epoch launch index, tid)` of the first write, if any.
    writer: Option<(usize, usize)>,
    /// `(epoch launch index, tid)` of the first read, if any.
    reader: Option<(usize, usize)>,
    /// One stream-race report per slot per epoch.
    reported: bool,
}

#[derive(Debug, Default)]
struct SanState {
    buffers: Vec<(String, usize)>,
    current: Option<LaunchCtx>,
    log: Vec<AccessRecord>,
    reports: Vec<RaceReport>,
    /// `(label, stream)` of every launch completed in the current epoch.
    epoch_launches: Vec<(String, u64)>,
    /// Per-slot first accesses across the current epoch's launches.
    epoch_slots: HashMap<(u32, usize), EpochSlot>,
}

/// Shared sanitizer state of one executor. All mutation goes through one
/// mutex; sanitized launches are serialized, so the lock is uncontended
/// and exists only to keep the executor `Sync`.
#[derive(Debug)]
pub(crate) struct Sanitizer {
    cfg: SanitizerConfig,
    state: Mutex<SanState>,
}

impl Sanitizer {
    pub(crate) fn new(cfg: SanitizerConfig) -> Self {
        Sanitizer {
            cfg,
            state: Mutex::new(SanState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SanState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers a buffer binding and returns its id.
    pub(crate) fn register_buffer(&self, label: &str, len: usize) -> u32 {
        let mut s = self.lock();
        s.buffers.push((label.to_string(), len));
        (s.buffers.len() - 1) as u32
    }

    /// Opens a new ordering epoch: everything before is ordered against
    /// everything after (a synchronization barrier), so cross-launch
    /// state from the previous epoch is discarded. Called at every eager
    /// launch and at the start of every stream `sync`/`join`.
    pub(crate) fn begin_epoch(&self) {
        let mut s = self.lock();
        s.epoch_launches.clear();
        s.epoch_slots.clear();
    }

    /// Whether declared launches must still run under the dynamic
    /// sanitizer so their declarations can be audited (cross-check
    /// mode).
    pub(crate) fn cross_check(&self) -> bool {
        self.cfg.check_declared
    }

    /// Opens the per-launch access log. `stream` is the id of the stream
    /// the launch was queued on (0 for eager launches); launches of the
    /// same epoch are mutually ordered only when they share a stream.
    /// In cross-check mode, `declared` carries the launch's static
    /// effect declarations for coverage auditing.
    pub(crate) fn begin_launch(
        &self,
        label: &str,
        ordinal: u64,
        coverage: Option<(u32, usize)>,
        stream: u64,
        declared: Option<&DeclaredLaunch>,
    ) {
        let mut s = self.lock();
        assert!(
            s.current.is_none(),
            "sanitizer: nested kernel launch (`{label}` inside `{}`)",
            s.current.as_ref().map_or("?", |c| c.label.as_str())
        );
        let resolved = declared.filter(|_| self.cfg.check_declared).map(|d| {
            // Map each effect's declared buffer label to the *latest*
            // dynamic buffer registered under that label (re-binding a
            // label shadows earlier epochs, so the newest id is the
            // live one).
            let mut per_buffer: HashMap<u32, Vec<(EffectKind, Pattern)>> = HashMap::new();
            for e in d.effects.iter() {
                let want = &d.buffers[e.buf.0 as usize].label;
                let dynamic = s
                    .buffers
                    .iter()
                    .rposition(|(label, _)| label == want)
                    .unwrap_or_else(|| {
                        panic!("sanitizer cross-check: declared buffer '{want}' was never bound")
                    }) as u32;
                per_buffer
                    .entry(dynamic)
                    .or_default()
                    .push((e.kind, e.pattern));
            }
            per_buffer
        });
        s.current = Some(LaunchCtx {
            label: label.to_string(),
            ordinal,
            coverage,
            stream,
            declared: resolved,
        });
        s.log.clear();
    }

    /// Logs a write. Returns `false` when the write is out of bounds and
    /// must not be performed (the hazard is reported instead; in
    /// `fail_fast` mode it panics).
    pub(crate) fn record_write(&self, buffer: u32, index: usize, tid: usize) -> bool {
        match self.record(buffer, index, tid, AccessKind::Write) {
            None => true,
            Some(report) => {
                if self.cfg.fail_fast {
                    panic!("{report}");
                }
                false
            }
        }
    }

    /// Logs a read.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-bounds read regardless of `fail_fast`: unlike a
    /// skipped write, there is no value the read could return.
    pub(crate) fn record_read(&self, buffer: u32, index: usize, tid: usize) {
        if let Some(report) = self.record(buffer, index, tid, AccessKind::Read) {
            panic!("{report}");
        }
    }

    /// Logs one access; returns the report when it was out of bounds.
    fn record(
        &self,
        buffer: u32,
        index: usize,
        tid: usize,
        kind: AccessKind,
    ) -> Option<RaceReport> {
        let mut s = self.lock();
        let len = s.buffers[buffer as usize].1;
        if index >= len {
            let report = RaceReport {
                kernel: s
                    .current
                    .as_ref()
                    .map_or_else(String::new, |c| c.label.clone()),
                launch: s.current.as_ref().map_or(0, |c| c.ordinal),
                buffer: s.buffers[buffer as usize].0.clone(),
                index,
                kind: ConflictKind::OutOfBounds { tid },
                other_kernel: None,
            };
            if s.reports.len() < self.cfg.max_reports {
                s.reports.push(report.clone());
            }
            return Some(report);
        }
        // Accesses outside any launch (host-side pokes between epochs)
        // are ordered by the launch barriers and need no logging.
        let ctx = s.current.as_ref()?;
        // Cross-check: a declared launch must cover every access it
        // performs. An uncovered access is reported (and panics under
        // fail_fast) but is still *performed* — unlike OOB there is
        // nothing unsafe about it, only the declaration is wrong.
        if let Some(declared) = ctx.declared.as_ref() {
            let covered = declared.get(&buffer).is_some_and(|effects| {
                effects.iter().any(|(k, pattern)| {
                    let kind_ok = match kind {
                        AccessKind::Read => matches!(k, EffectKind::Read | EffectKind::Atomic),
                        AccessKind::Write => matches!(k, EffectKind::Write | EffectKind::Atomic),
                    };
                    kind_ok && pattern.covers(tid, index)
                })
            });
            if !covered {
                let report = RaceReport {
                    kernel: ctx.label.clone(),
                    launch: ctx.ordinal,
                    buffer: s.buffers[buffer as usize].0.clone(),
                    index,
                    kind: ConflictKind::UndeclaredAccess { tid, access: kind },
                    other_kernel: None,
                };
                if s.reports.len() < self.cfg.max_reports {
                    s.reports.push(report.clone());
                }
                if self.cfg.fail_fast {
                    panic!("{report}");
                }
            }
        }
        s.log.push(AccessRecord {
            buffer,
            index,
            tid,
            kind,
        });
        None
    }

    /// Closes the launch, runs the intra-launch hazard analysis over the
    /// access log and the cross-launch (stream-ordering) analysis against
    /// the epoch state, and (in `fail_fast` mode) panics on the first
    /// hazard found.
    pub(crate) fn end_launch(&self) {
        let mut s = self.lock();
        let ctx = s.current.take().expect("end_launch without begin_launch");
        let log = std::mem::take(&mut s.log);
        let mut new_reports = analyze(&ctx, &log, &s.buffers);
        new_reports.extend(epoch_analyze(&ctx, &log, &mut s));
        let first = new_reports.first().cloned();
        let room = self.cfg.max_reports.saturating_sub(s.reports.len());
        s.reports.extend(new_reports.into_iter().take(room));
        drop(s);
        if self.cfg.fail_fast {
            if let Some(report) = first {
                panic!("{report}");
            }
        }
    }

    /// Drains all accumulated reports.
    pub(crate) fn take_reports(&self) -> Vec<RaceReport> {
        std::mem::take(&mut self.lock().reports)
    }

    /// Clones all accumulated reports.
    pub(crate) fn reports(&self) -> Vec<RaceReport> {
        self.lock().reports.clone()
    }
}

/// Per-slot state accumulated while scanning a launch's access log.
#[derive(Clone, Copy, Debug, Default)]
struct SlotState {
    writer: Option<usize>,
    reader: Option<usize>,
    reported_ww: bool,
    reported_rw: bool,
}

/// Scans one launch's access log for hazards (at most one report of each
/// kind per slot, to keep racy kernels from flooding the report list).
fn analyze(ctx: &LaunchCtx, log: &[AccessRecord], buffers: &[(String, usize)]) -> Vec<RaceReport> {
    let mut slots: HashMap<(u32, usize), SlotState> = HashMap::new();
    let mut reports = Vec::new();
    let mut report = |buffer: u32, index: usize, kind: ConflictKind| {
        reports.push(RaceReport {
            kernel: ctx.label.clone(),
            launch: ctx.ordinal,
            buffer: buffers[buffer as usize].0.clone(),
            index,
            kind,
            other_kernel: None,
        });
    };
    for rec in log {
        let slot = slots.entry((rec.buffer, rec.index)).or_default();
        match rec.kind {
            AccessKind::Write => {
                match slot.writer {
                    Some(w) if w != rec.tid && !slot.reported_ww => {
                        slot.reported_ww = true;
                        report(
                            rec.buffer,
                            rec.index,
                            ConflictKind::WriteWrite { tids: (w, rec.tid) },
                        );
                    }
                    Some(_) => {}
                    None => slot.writer = Some(rec.tid),
                }
                if let Some(r) = slot.reader {
                    if r != rec.tid && !slot.reported_rw {
                        slot.reported_rw = true;
                        report(
                            rec.buffer,
                            rec.index,
                            ConflictKind::ReadWrite { tids: (r, rec.tid) },
                        );
                    }
                }
            }
            AccessKind::Read => {
                if let Some(w) = slot.writer {
                    if w != rec.tid && !slot.reported_rw {
                        slot.reported_rw = true;
                        report(
                            rec.buffer,
                            rec.index,
                            ConflictKind::ReadWrite { tids: (rec.tid, w) },
                        );
                    }
                }
                if slot.reader.is_none() {
                    slot.reader = Some(rec.tid);
                }
            }
        }
    }
    if let Some((buffer, n)) = ctx.coverage {
        for index in 0..n {
            let written = slots
                .get(&(buffer, index))
                .is_some_and(|s| s.writer.is_some());
            if !written {
                report(buffer, index, ConflictKind::UnwrittenSlot);
            }
        }
    }
    reports
}

/// Folds one finished launch into the epoch's cross-launch state and
/// reports conflicts with *unordered* earlier launches: launches of the
/// same epoch are ordered only when they share a stream (program order);
/// an access pair on different streams with at least one write is a
/// stream race. Epoch boundaries (eager launches, `sync`, `join`) clear
/// the state, encoding the barrier's happens-before edge.
fn epoch_analyze(ctx: &LaunchCtx, log: &[AccessRecord], s: &mut SanState) -> Vec<RaceReport> {
    // Summarize this launch: first writer / first reader per slot
    // (ordered map so report order is deterministic).
    let mut summary: BTreeMap<(u32, usize), (Option<usize>, Option<usize>)> = BTreeMap::new();
    for rec in log {
        let slot = summary.entry((rec.buffer, rec.index)).or_default();
        match rec.kind {
            AccessKind::Write => {
                if slot.0.is_none() {
                    slot.0 = Some(rec.tid);
                }
            }
            AccessKind::Read => {
                if slot.1.is_none() {
                    slot.1 = Some(rec.tid);
                }
            }
        }
    }
    let SanState {
        buffers,
        epoch_launches,
        epoch_slots,
        ..
    } = s;
    let launch_idx = epoch_launches.len();
    epoch_launches.push((ctx.label.clone(), ctx.stream));
    let mut reports = Vec::new();
    for (&(buffer, index), &(wrote, read)) in &summary {
        let slot = epoch_slots.entry((buffer, index)).or_default();
        // A conflict needs an earlier access from a *different stream*
        // with a write on at least one side. Prefer reporting against the
        // earlier writer, else the earlier reader.
        let peer = match (wrote, slot.writer, slot.reader) {
            (Some(_), Some(w), _) => Some((w, AccessKind::Write)),
            (Some(_), None, Some(r)) => Some((r, AccessKind::Read)),
            (None, Some(w), _) if read.is_some() => Some((w, AccessKind::Write)),
            _ => None,
        };
        if let Some(((peer_idx, peer_tid), peer_kind)) = peer {
            let (peer_label, peer_stream) = &epoch_launches[peer_idx];
            if *peer_stream != ctx.stream && !slot.reported {
                slot.reported = true;
                let this_kind = if wrote.is_some() {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let this_tid = wrote.or(read).unwrap_or(0);
                reports.push(RaceReport {
                    kernel: ctx.label.clone(),
                    launch: ctx.ordinal,
                    buffer: buffers[buffer as usize].0.clone(),
                    index,
                    kind: ConflictKind::StreamRace {
                        kinds: (peer_kind, this_kind),
                        streams: (*peer_stream, ctx.stream),
                        tids: (peer_tid, this_tid),
                    },
                    other_kernel: Some(peer_label.clone()),
                });
            }
        }
        // Merge this launch's accesses (first access of the epoch wins).
        if let Some(tid) = wrote {
            if slot.writer.is_none() {
                slot.writer = Some((launch_idx, tid));
            }
        }
        if let Some(tid) = read {
            if slot.reader.is_none() {
                slot.reader = Some((launch_idx, tid));
            }
        }
    }
    reports
}

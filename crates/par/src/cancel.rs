//! Cooperative cancellation with optional deadlines.
//!
//! A [`CancelToken`] is the runtime's unit of *prompt job termination*:
//! long-running checkers (the simulation engine's P/G/L phases, the SAT
//! sweeper's per-pair conflict budgets) poll it at their natural
//! checkpoint boundaries and wind down with a partial — never incorrect —
//! verdict when it trips. Tokens are cheap to clone and share: a service
//! hands one token to every sub-job of a larger job, so one `cancel()`
//! (or an elapsed deadline) stops the whole fan-out.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shareable cancellation token with an optional wall-clock deadline.
///
/// The token trips when [`CancelToken::cancel`] is called on any clone or
/// when its deadline (if set) passes. [`CancelToken::never`] produces a
/// token that can never trip and whose polling is branch-cheap, so
/// hot-path code can take a token unconditionally.
///
/// ```
/// use parsweep_par::CancelToken;
/// use std::time::Duration;
///
/// let never = CancelToken::never();
/// assert!(!never.is_cancelled());
///
/// let token = CancelToken::new();
/// let clone = token.clone();
/// token.cancel();
/// assert!(clone.is_cancelled());
///
/// let expired = CancelToken::with_deadline(Duration::ZERO);
/// assert!(expired.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels (the default). Polling it is a single
    /// `Option` check, so APIs can take `&CancelToken` unconditionally.
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A manually-cancellable token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that trips `timeout` from now (and is also manually
    /// cancellable).
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// A token that trips at `deadline` (and is also manually
    /// cancellable).
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            })),
        }
    }

    /// Trips the token for every clone. A no-op on [`CancelToken::never`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// True once the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                if inner.cancelled.load(Ordering::Acquire) {
                    return true;
                }
                match inner.deadline {
                    Some(d) if Instant::now() >= d => {
                        // Latch the deadline so later polls skip the clock.
                        inner.cancelled.store(true, Ordering::Release);
                        true
                    }
                    _ => false,
                }
            }
        }
    }

    /// The remaining time before the deadline, if one was set and has not
    /// yet passed (`None` for deadline-free or already-expired tokens).
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        let deadline = inner.deadline?;
        deadline.checked_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_cancels() {
        let t = CancelToken::never();
        t.cancel();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_trips_and_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "latched after first observation");
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn future_deadline_reports_remaining() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn default_is_never() {
        assert!(!CancelToken::default().is_cancelled());
    }
}

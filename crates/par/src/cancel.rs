//! Cooperative cancellation with optional deadlines.
//!
//! A [`CancelToken`] is the runtime's unit of *prompt job termination*:
//! long-running checkers (the simulation engine's P/G/L phases, the SAT
//! sweeper's per-pair conflict budgets) poll it at their natural
//! checkpoint boundaries and wind down with a partial — never incorrect —
//! verdict when it trips. Tokens are cheap to clone and share: a service
//! hands one token to every sub-job of a larger job, so one `cancel()`
//! (or an elapsed deadline) stops the whole fan-out.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// A child token trips when any ancestor trips; cancelling the child
    /// never propagates upward.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                // Latch the deadline so later polls skip the clock.
                self.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        match &self.parent {
            Some(p) if p.is_cancelled() => {
                // Latch the ancestor's state so later polls stop here.
                self.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }
}

/// A shareable cancellation token with an optional wall-clock deadline.
///
/// The token trips when [`CancelToken::cancel`] is called on any clone or
/// when its deadline (if set) passes. [`CancelToken::never`] produces a
/// token that can never trip and whose polling is branch-cheap, so
/// hot-path code can take a token unconditionally.
///
/// ```
/// use parsweep_par::CancelToken;
/// use std::time::Duration;
///
/// let never = CancelToken::never();
/// assert!(!never.is_cancelled());
///
/// let token = CancelToken::new();
/// let clone = token.clone();
/// token.cancel();
/// assert!(clone.is_cancelled());
///
/// let expired = CancelToken::with_deadline(Duration::ZERO);
/// assert!(expired.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that never cancels (the default). Polling it is a single
    /// `Option` check, so APIs can take `&CancelToken` unconditionally.
    pub fn never() -> Self {
        CancelToken { inner: None }
    }

    /// A manually-cancellable token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            })),
        }
    }

    /// A token that trips `timeout` from now (and is also manually
    /// cancellable).
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// A token that trips at `deadline` (and is also manually
    /// cancellable).
    pub fn with_deadline_at(deadline: Instant) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: None,
            })),
        }
    }

    /// A *linked child* token: it trips when this token trips (including
    /// transitively through this token's own ancestors), or when the child
    /// itself is cancelled — but cancelling the child never affects the
    /// parent. This is the unit of *scoped* cancellation: a dispatcher
    /// racing several engines under one job token hands each lane a child,
    /// so the first verdict can cancel the losers without tripping the
    /// job, and a job-level cancel still stops every lane.
    ///
    /// A child of [`CancelToken::never`] is an ordinary standalone token.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: self.inner.clone(),
            })),
        }
    }

    /// A linked child (see [`CancelToken::child`]) that additionally trips
    /// `timeout` from now — the shape of a per-attempt wall budget under a
    /// job-level token.
    pub fn child_with_deadline(&self, timeout: Duration) -> Self {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                parent: self.inner.clone(),
            })),
        }
    }

    /// Trips the token for every clone. A no-op on [`CancelToken::never`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// True once the token has been cancelled, its deadline has passed, or
    /// (for linked children) an ancestor has tripped.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.is_cancelled(),
        }
    }

    /// The remaining time before the deadline, if one was set and has not
    /// yet passed (`None` for deadline-free or already-expired tokens).
    pub fn remaining(&self) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        let deadline = inner.deadline?;
        deadline.checked_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_cancels() {
        let t = CancelToken::never();
        t.cancel();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_trips_and_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "latched after first observation");
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn future_deadline_reports_remaining() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn default_is_never() {
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn child_trips_with_parent() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(
            child.is_cancelled(),
            "ancestor state latches into the child"
        );
    }

    #[test]
    fn child_cancel_does_not_propagate_up() {
        let parent = CancelToken::new();
        let child = parent.child();
        let sibling = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "parent unaffected by child cancel");
        assert!(!sibling.is_cancelled(), "siblings unaffected too");
    }

    #[test]
    fn grandchild_sees_grandparent_cancel() {
        let job = CancelToken::new();
        let race = job.child();
        let lane = race.child();
        job.cancel();
        assert!(lane.is_cancelled());
    }

    #[test]
    fn child_of_never_is_standalone() {
        let child = CancelToken::never().child();
        assert!(!child.is_cancelled());
        child.cancel();
        assert!(child.is_cancelled());
    }

    #[test]
    fn child_deadline_trips_independently() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Duration::from_millis(0));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn deadline_child_also_inherits_parent_cancel() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
    }
}

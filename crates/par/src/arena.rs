//! Pooled device-buffer arena — the executor-model analogue of a CUDA
//! memory pool (`cudaMemPool_t` / stream-ordered `cudaMallocAsync`).
//!
//! The engine's phase loop allocates the same large buffers over and over:
//! simulation tables every exhaustive-check round, signature words every
//! refinement round, cut sets every local phase. On a GPU those
//! allocations are the classic `cudaMalloc` bottleneck that memory pools
//! exist to remove; here they are `Vec` allocations with page-fault warmup
//! cost. [`BufferArena`] recycles freed buffers through size-class pools
//! so steady-state rounds allocate nothing, and exposes hit/miss/peak
//! counters (surfaced in [`LaunchStats`](crate::LaunchStats)) so reuse is
//! observable.
//!
//! ```
//! use parsweep_par::BufferArena;
//! let arena = BufferArena::new();
//! {
//!     let mut table = arena.take::<u64>(1000);
//!     table[3] = 7;
//! } // dropped: returned to the 1024-word pool
//! let again = arena.take::<u64>(900); // same size class: recycled
//! assert_eq!(again[3], 0, "recycled buffers are zeroed");
//! let s = arena.stats();
//! assert_eq!((s.hits, s.misses), (1, 1));
//! ```

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Counters of one [`BufferArena`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Number of `take` calls served from a pool (no allocation).
    pub hits: u64,
    /// Number of `take` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// High-water mark of the arena's footprint in bytes (buffers live
    /// plus buffers idling in pools — pooled memory is never freed).
    pub peak_bytes: u64,
    /// Current footprint in bytes.
    pub footprint_bytes: u64,
    /// Bytes currently checked out of the pools (live `PooledBuf`s only,
    /// not idle pooled memory). Unlike `footprint_bytes` this shrinks
    /// when buffers are dropped.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`. Because pools never free, the
    /// footprint-based `peak_bytes` of a later workload is floored at
    /// whatever an earlier workload in the same process allocated; this
    /// counter is the honest per-workload demand after a
    /// `reset_counters` rebase.
    pub peak_live_bytes: u64,
}

/// A pool bucket: freed buffers of one element type and size class.
type Pool = Vec<Box<dyn Any + Send>>;

#[derive(Default)]
struct ArenaInner {
    /// Freed buffers keyed by element type and power-of-two size class.
    pools: Mutex<HashMap<(TypeId, usize), Pool>>,
    hits: AtomicU64,
    misses: AtomicU64,
    footprint: AtomicU64,
    peak: AtomicU64,
    live: AtomicU64,
    peak_live: AtomicU64,
}

/// Pool size class of a requested length: the next power of two.
fn size_class(len: usize) -> usize {
    len.next_power_of_two().max(1)
}

impl ArenaInner {
    fn take_vec<T: Default + Clone + Send + 'static>(self: &Arc<Self>, len: usize) -> Vec<T> {
        let class = size_class(len);
        let key = (TypeId::of::<T>(), class);
        let class_bytes = (class * std::mem::size_of::<T>()) as u64;
        let live = self.live.fetch_add(class_bytes, Ordering::Relaxed) + class_bytes;
        self.peak_live.fetch_max(live, Ordering::Relaxed);
        let recycled = self
            .pools
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_mut(&key)
            .and_then(Vec::pop);
        let mut data: Vec<T> = match recycled {
            Some(boxed) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                *boxed
                    .downcast::<Vec<T>>()
                    .expect("arena pool type confusion")
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let bytes = (class * std::mem::size_of::<T>()) as u64;
                let footprint = self.footprint.fetch_add(bytes, Ordering::Relaxed) + bytes;
                self.peak.fetch_max(footprint, Ordering::Relaxed);
                Vec::with_capacity(class)
            }
        };
        // Recycled buffers must look freshly allocated: drop stale
        // contents and default-fill the requested length.
        data.clear();
        data.resize(len, T::default());
        data
    }

    fn put_back<T: Send + 'static>(&self, class: usize, data: Vec<T>) {
        let class_bytes = (class * std::mem::size_of::<T>()) as u64;
        self.live.fetch_sub(class_bytes, Ordering::Relaxed);
        self.pools
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry((TypeId::of::<T>(), class))
            .or_default()
            .push(Box::new(data));
    }
}

/// A size-class pooling allocator for device buffers — the substitution
/// for a CUDA memory pool. Cheap to clone (all clones share the pools).
///
/// Buffers are handed out as [`PooledBuf`] values that return themselves
/// to the pool on drop; a `take` of the same element type and size class
/// then reuses the allocation (counted as a *hit*). Requested lengths are
/// rounded up to the next power of two, so close-but-unequal round sizes
/// (e.g. shrinking active-window tables) still pool together.
#[derive(Clone, Default)]
pub struct BufferArena {
    inner: Arc<ArenaInner>,
}

impl BufferArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zero-initialized (`T::default()`-filled) buffer of `len`
    /// elements, recycling a pooled allocation of the same size class when
    /// one is available.
    pub fn take<T: Default + Clone + Send + 'static>(&self, len: usize) -> PooledBuf<T> {
        PooledBuf {
            class: size_class(len),
            data: self.inner.take_vec(len),
            arena: Arc::clone(&self.inner),
        }
    }

    /// Returns the arena's counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            peak_bytes: self.inner.peak.load(Ordering::Relaxed),
            footprint_bytes: self.inner.footprint.load(Ordering::Relaxed),
            live_bytes: self.inner.live.load(Ordering::Relaxed),
            peak_live_bytes: self.inner.peak_live.load(Ordering::Relaxed),
        }
    }

    /// Zeroes hit/miss counters and rebases the peak to the current
    /// footprint. Pools are left intact.
    pub(crate) fn reset_counters(&self) {
        self.inner.hits.store(0, Ordering::Relaxed);
        self.inner.misses.store(0, Ordering::Relaxed);
        self.inner.peak.store(
            self.inner.footprint.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.inner
            .peak_live
            .store(self.inner.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl fmt::Debug for BufferArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferArena")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// An owned, arena-backed buffer. Dereferences to `[T]`; the allocation
/// goes back to its arena's pool when the buffer is dropped.
pub struct PooledBuf<T: Send + 'static> {
    data: Vec<T>,
    /// Pool size class (the capacity the buffer was allocated with).
    class: usize,
    arena: Arc<ArenaInner>,
}

impl<T: Send + 'static> PooledBuf<T> {
    /// Length of the buffer in elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }
}

impl<T: Send + 'static> Deref for PooledBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Send + 'static> DerefMut for PooledBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Send + 'static> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        self.arena
            .put_back(self.class, std::mem::take(&mut self.data));
    }
}

impl<T: Default + Clone + Send + 'static> Clone for PooledBuf<T> {
    fn clone(&self) -> Self {
        let mut data: Vec<T> = self.arena.take_vec(self.data.len());
        data.clone_from_slice(&self.data);
        PooledBuf {
            class: size_class(data.len()),
            data,
            arena: Arc::clone(&self.arena),
        }
    }
}

impl<T: fmt::Debug + Send + 'static> fmt::Debug for PooledBuf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.data, f)
    }
}

impl<T: PartialEq + Send + 'static> PartialEq for PooledBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl<T: Eq + Send + 'static> Eq for PooledBuf<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_within_size_class() {
        let arena = BufferArena::new();
        {
            let mut a = arena.take::<u64>(100);
            a[0] = 42;
        }
        let b = arena.take::<u64>(128); // class 128, same as next_pow2(100)
        assert!(b.iter().all(|&w| w == 0));
        let s = arena.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.peak_bytes, 128 * 8);
    }

    #[test]
    fn distinct_types_do_not_alias() {
        let arena = BufferArena::new();
        drop(arena.take::<u64>(8));
        let _b = arena.take::<u32>(8); // different element type: a miss
        assert_eq!(arena.stats().misses, 2);
    }

    #[test]
    fn peak_tracks_live_and_pooled_bytes() {
        let arena = BufferArena::new();
        let a = arena.take::<u8>(1024);
        let b = arena.take::<u8>(1024);
        drop(a);
        drop(b);
        // Both buffers idle in the pool: footprint (and peak) stay 2 KiB.
        assert_eq!(arena.stats().footprint_bytes, 2048);
        assert_eq!(arena.stats().peak_bytes, 2048);
        let _c = arena.take::<u8>(1000);
        assert_eq!(arena.stats().hits, 1);
        assert_eq!(arena.stats().peak_bytes, 2048, "reuse adds no footprint");
    }

    #[test]
    fn live_bytes_shrink_on_drop_but_peak_live_remembers() {
        let arena = BufferArena::new();
        drop(arena.take::<u8>(1024));
        assert_eq!(arena.stats().live_bytes, 0);
        assert_eq!(arena.stats().peak_live_bytes, 1024);
        let _b = arena.take::<u8>(512);
        assert_eq!(arena.stats().live_bytes, 512);
        assert_eq!(arena.stats().peak_live_bytes, 1024);
        // Footprint-based peak never shrinks (the 1024-class buffer
        // still idles in its pool next to the live 512-class one); the
        // live peak rebases to what is actually held.
        arena.reset_counters();
        assert_eq!(arena.stats().peak_live_bytes, 512);
        assert_eq!(arena.stats().peak_bytes, 1536);
    }

    #[test]
    fn clone_goes_through_the_pool() {
        let arena = BufferArena::new();
        let a = arena.take::<u16>(16);
        drop(arena.take::<u16>(16)); // leaves one pooled buffer behind
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(arena.stats().hits, 1, "clone recycled the pooled buffer");
    }
}

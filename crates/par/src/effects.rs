//! Static effect analysis for kernel launches and recorded graphs.
//!
//! Kernels declare their read/write footprints over labeled device
//! buffers as small symbolic summaries (per-tid affine patterns, index
//! ranges, whole-buffer). A static checker then proves, once, the same
//! properties the dynamic sanitizer would re-validate on every launch:
//! write-write and read-write disjointness between threads and between
//! unordered launches, in-bounds access, and no use after a buffer's
//! release point. Launch sequences that check statically skip dynamic
//! sanitization on replay — verify once at record time, replay
//! unsanitized.
//!
//! The declaration grammar is deliberately tiny. Every footprint is one
//! of:
//!
//! * [`Pattern::Affine`] — thread `t` touches `base + t*stride ..
//!   base + t*stride + span`. This covers the common "each thread owns
//!   a fixed-size cell" layout exactly, and disjointness between two
//!   affine patterns is decided with closed-form integer arithmetic
//!   (no enumeration) when strides match, or a bounded scan otherwise.
//! * [`Pattern::Range`] — every thread may touch `lo..hi`. Used for
//!   broadcast reads and for footprints that depend on data, bounded
//!   by a statically known window.
//! * [`Pattern::All`] — the whole buffer. The coarsest summary.
//! * [`Pattern::Indexed`] — a data-dependent *disjoint-chunks*
//!   contract: threads touch disjoint sub-ranges of `lo..hi` chosen by
//!   runtime data (e.g. "thread `t` writes the slot of node
//!   `group[t]`"). The static checker trusts the intra-launch
//!   disjointness (it cannot see the index data) but still uses the
//!   `lo..hi` envelope against *other* launches and for bounds checks.
//!   The cross-check mode (dynamic sanitizer with
//!   [`check_declared`](crate::SanitizerConfig::check_declared) set)
//!   exists precisely so this trust is audited: every access a kernel
//!   actually performs must fall inside a declared pattern.
//!
//! Buffers live in an [`EffectTable`]: a per-epoch registry mapping a
//! stable label and length to a [`BufId`]. Bind real storage to a
//! declaration with [`Executor::bind_table`](crate::Executor::bind_table)
//! and launch with declared effects via
//! [`Executor::launch_declared`](crate::Executor::launch_declared),
//! [`Stream::launch_declared`](crate::Stream::launch_declared), or
//! [`KernelGraphBuilder::kernel_declared`](crate::KernelGraphBuilder::kernel_declared).

use std::fmt;
use std::sync::{Arc, Mutex};

/// Handle to a buffer declared in an [`EffectTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufId(pub(crate) u32);

/// One declared buffer: a stable label plus its element length.
#[derive(Clone, Debug)]
pub(crate) struct BufferDecl {
    pub(crate) label: String,
    pub(crate) len: usize,
}

/// Registry of declared buffers for one epoch / one recorded graph.
///
/// Cheap to clone (shared interior). Labels should be unique within a
/// table; cross-launch conflict checks identify buffers by label so two
/// tables naming the same storage agree.
#[derive(Clone, Default)]
pub struct EffectTable {
    buffers: Arc<Mutex<Vec<BufferDecl>>>,
}

impl EffectTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a buffer with a stable `label` and element `len`,
    /// returning its handle for use in [`Effect`]s.
    pub fn buffer(&self, label: &str, len: usize) -> BufId {
        let mut bufs = self.buffers.lock().unwrap();
        let id = BufId(bufs.len() as u32);
        bufs.push(BufferDecl {
            label: label.to_string(),
            len,
        });
        id
    }

    /// The declared element length of `buf`.
    pub fn len_of(&self, buf: BufId) -> usize {
        self.buffers.lock().unwrap()[buf.0 as usize].len
    }

    /// The declared label of `buf`.
    pub fn label_of(&self, buf: BufId) -> String {
        self.buffers.lock().unwrap()[buf.0 as usize].label.clone()
    }

    /// A point-in-time copy of all declarations.
    pub(crate) fn snapshot(&self) -> Arc<Vec<BufferDecl>> {
        Arc::new(self.buffers.lock().unwrap().clone())
    }
}

impl fmt::Debug for EffectTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bufs = self.buffers.lock().unwrap();
        f.debug_struct("EffectTable")
            .field("buffers", &bufs.len())
            .finish()
    }
}

/// Symbolic per-launch access footprint over one buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Thread `t` accesses `base + t*stride .. base + t*stride + span`.
    Affine {
        /// First index touched by thread 0.
        base: usize,
        /// Index distance between consecutive threads' footprints.
        stride: usize,
        /// Contiguous elements each thread touches (0 = nothing).
        span: usize,
    },
    /// Every thread may access any index in `lo..hi`.
    Range {
        /// Inclusive lower bound.
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    },
    /// Every thread may access the whole buffer.
    All,
    /// Data-dependent disjoint chunks inside `lo..hi`: threads touch
    /// runtime-chosen, pairwise-disjoint sub-ranges. Intra-launch
    /// disjointness is a *trusted contract* (audited by cross-check
    /// mode); the envelope is still used for bounds and cross-launch
    /// conflict checks.
    Indexed {
        /// Inclusive lower bound of the envelope.
        lo: usize,
        /// Exclusive upper bound of the envelope.
        hi: usize,
    },
}

impl Pattern {
    /// Whether thread `tid`'s declared footprint includes `index`.
    pub(crate) fn covers(&self, tid: usize, index: usize) -> bool {
        match *self {
            Pattern::Affine { base, stride, span } => {
                let lo = base.saturating_add(tid.saturating_mul(stride));
                index >= lo && index < lo.saturating_add(span)
            }
            Pattern::Range { lo, hi } | Pattern::Indexed { lo, hi } => index >= lo && index < hi,
            Pattern::All => true,
        }
    }

    /// `Some(end)` = one past the highest index any of `width` threads
    /// may touch; `None` = empty or whole-buffer (no static bound).
    fn max_end(&self, width: usize) -> Option<usize> {
        match *self {
            Pattern::Affine { base, stride, span } => {
                if span == 0 || width == 0 {
                    None
                } else {
                    Some(
                        base.saturating_add((width - 1).saturating_mul(stride))
                            .saturating_add(span),
                    )
                }
            }
            Pattern::Range { lo, hi } | Pattern::Indexed { lo, hi } => (hi > lo).then_some(hi),
            Pattern::All => None,
        }
    }

    /// The inclusive-exclusive index interval `[lo, hi)` this pattern
    /// may touch with `width` threads over a buffer of `len` elements,
    /// or `None` if it touches nothing.
    pub(crate) fn footprint(&self, width: usize, len: usize) -> Option<(usize, usize)> {
        match *self {
            Pattern::Affine { base, stride, span } => {
                if span == 0 || width == 0 {
                    None
                } else {
                    Some((
                        base,
                        base.saturating_add((width - 1).saturating_mul(stride))
                            .saturating_add(span),
                    ))
                }
            }
            Pattern::Range { lo, hi } | Pattern::Indexed { lo, hi } => {
                (hi > lo).then_some((lo, hi))
            }
            Pattern::All => (len > 0).then_some((0, len)),
        }
    }
}

/// How a declared effect touches its buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EffectKind {
    /// Reads only.
    Read,
    /// Plain (non-atomic) writes; conflicts with everything overlapping.
    Write,
    /// Atomic read-modify-write (reduction); two atomics to the same
    /// slot commute, but an atomic still conflicts with plain reads
    /// and writes.
    Atomic,
}

/// One declared access: a buffer, a kind, and a footprint pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Effect {
    /// The buffer touched.
    pub buf: BufId,
    /// Read, write, or atomic.
    pub kind: EffectKind,
    /// The symbolic footprint.
    pub pattern: Pattern,
}

impl Effect {
    /// A read effect.
    pub fn read(buf: BufId, pattern: Pattern) -> Self {
        Effect {
            buf,
            kind: EffectKind::Read,
            pattern,
        }
    }

    /// A plain-write effect.
    pub fn write(buf: BufId, pattern: Pattern) -> Self {
        Effect {
            buf,
            kind: EffectKind::Write,
            pattern,
        }
    }

    /// An atomic (reduction) effect.
    pub fn atomic(buf: BufId, pattern: Pattern) -> Self {
        Effect {
            buf,
            kind: EffectKind::Atomic,
            pattern,
        }
    }

    pub(crate) fn is_write(&self) -> bool {
        matches!(self.kind, EffectKind::Write | EffectKind::Atomic)
    }
}

/// A hazard found by the static checker — the static analogue of a
/// dynamic [`ConflictKind`](crate::ConflictKind).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StaticHazard {
    /// Two threads of one launch may write the same index.
    WriteWrite {
        /// Label of the offending kernel.
        kernel: String,
        /// Label of the buffer.
        buffer: String,
    },
    /// A read and a write of one launch may touch the same index from
    /// different threads.
    ReadWrite {
        /// Label of the offending kernel.
        kernel: String,
        /// Label of the buffer.
        buffer: String,
    },
    /// A declared footprint extends past the buffer's declared length.
    OutOfBounds {
        /// Label of the offending kernel.
        kernel: String,
        /// Label of the buffer.
        buffer: String,
        /// One past the highest index the footprint may touch.
        needed: usize,
        /// The buffer's declared length.
        len: usize,
    },
    /// Two launches not ordered by DAG edges or stream program order
    /// have conflicting footprints — the static analogue of
    /// [`ConflictKind::StreamRace`](crate::ConflictKind::StreamRace).
    UnorderedConflict {
        /// Labels of the two unordered kernels.
        kernels: (String, String),
        /// Label of the buffer.
        buffer: String,
    },
    /// A node accesses a buffer at or after the graph depth where its
    /// release was recorded.
    UseAfterRelease {
        /// Label of the offending kernel.
        kernel: String,
        /// Label of the buffer.
        buffer: String,
    },
}

impl fmt::Display for StaticHazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticHazard::WriteWrite { kernel, buffer } => write!(
                f,
                "static-check: possible write-write overlap between threads of kernel '{kernel}' on buffer '{buffer}'"
            ),
            StaticHazard::ReadWrite { kernel, buffer } => write!(
                f,
                "static-check: possible read-write overlap between threads of kernel '{kernel}' on buffer '{buffer}'"
            ),
            StaticHazard::OutOfBounds {
                kernel,
                buffer,
                needed,
                len,
            } => write!(
                f,
                "static-check: kernel '{kernel}' may access index {} of buffer '{buffer}' (len {len})",
                needed - 1
            ),
            StaticHazard::UnorderedConflict { kernels, buffer } => write!(
                f,
                "static-check: unordered kernels '{}' and '{}' have conflicting footprints on buffer '{}'",
                kernels.0, kernels.1, buffer
            ),
            StaticHazard::UseAfterRelease { kernel, buffer } => write!(
                f,
                "static-check: kernel '{kernel}' uses buffer '{buffer}' at or after its declared release"
            ),
        }
    }
}

/// Declarations carried by one pending launch: a snapshot of the table
/// plus the launch's effects. Used by the dynamic sanitizer's
/// cross-check mode to audit coverage.
#[derive(Clone)]
pub(crate) struct DeclaredLaunch {
    pub(crate) buffers: Arc<Vec<BufferDecl>>,
    pub(crate) effects: Arc<Vec<Effect>>,
}

/// One side of a cross-launch conflict check.
pub(crate) struct DeclaredPeer<'a> {
    pub(crate) label: &'a str,
    pub(crate) width: usize,
    pub(crate) buffers: &'a [BufferDecl],
    pub(crate) effects: &'a [Effect],
}

/// Checks one launch's declared effects in isolation: static bounds
/// plus intra-launch (thread-vs-thread) write-write / read-write
/// disjointness at the given `width`.
pub(crate) fn check_launch(
    label: &str,
    width: usize,
    effects: &[Effect],
    buffers: &[BufferDecl],
) -> Vec<StaticHazard> {
    let mut hazards = Vec::new();
    if width == 0 {
        return hazards;
    }
    for e in effects {
        let decl = &buffers[e.buf.0 as usize];
        if let Some(needed) = e.pattern.max_end(width) {
            if needed > decl.len {
                hazards.push(StaticHazard::OutOfBounds {
                    kernel: label.to_string(),
                    buffer: decl.label.clone(),
                    needed,
                    len: decl.len,
                });
            }
        }
    }
    for (i, a) in effects.iter().enumerate() {
        for b in &effects[i..] {
            if a.buf != b.buf || (!a.is_write() && !b.is_write()) {
                continue;
            }
            // Two atomics to the same slot commute.
            if a.kind == EffectKind::Atomic && b.kind == EffectKind::Atomic {
                continue;
            }
            // Indexed patterns carry a trusted intra-launch
            // disjointness contract — skip thread-vs-thread checks.
            if matches!(a.pattern, Pattern::Indexed { .. })
                || matches!(b.pattern, Pattern::Indexed { .. })
            {
                continue;
            }
            let decl = &buffers[a.buf.0 as usize];
            // Self-pair (a vs a) and distinct writes both use the
            // diagonal-excluded check: thread t racing with itself is
            // not a race.
            let same = std::ptr::eq(a, b);
            let overlap = pair_overlaps(&a.pattern, &b.pattern, width, width, true, decl.len);
            if !overlap {
                continue;
            }
            if a.is_write() && b.is_write() {
                hazards.push(StaticHazard::WriteWrite {
                    kernel: label.to_string(),
                    buffer: decl.label.clone(),
                });
            } else if !same {
                hazards.push(StaticHazard::ReadWrite {
                    kernel: label.to_string(),
                    buffer: decl.label.clone(),
                });
            }
        }
    }
    hazards
}

/// Checks two *unordered* launches against each other: any overlap
/// between a write of one and any access of the other is a hazard.
/// Buffers are matched by label so the two peers may use different
/// tables. At most one hazard is reported per pair.
pub(crate) fn check_unordered(a: &DeclaredPeer<'_>, b: &DeclaredPeer<'_>) -> Vec<StaticHazard> {
    if a.width == 0 || b.width == 0 {
        return Vec::new();
    }
    for ea in a.effects {
        let da = &a.buffers[ea.buf.0 as usize];
        for eb in b.effects {
            let db = &b.buffers[eb.buf.0 as usize];
            if da.label != db.label {
                continue;
            }
            if !ea.is_write() && !eb.is_write() {
                continue;
            }
            if ea.kind == EffectKind::Atomic && eb.kind == EffectKind::Atomic {
                continue;
            }
            // Cross-launch checks never exclude the diagonal (thread t
            // of launch A vs thread t of launch B are distinct
            // threads), and Indexed contracts only promise
            // disjointness *within* a launch, so only the envelope is
            // usable here — which `pair_overlaps` already does via
            // `footprint` for non-affine patterns.
            if pair_overlaps(&ea.pattern, &eb.pattern, a.width, b.width, false, da.len) {
                return vec![StaticHazard::UnorderedConflict {
                    kernels: (a.label.to_string(), b.label.to_string()),
                    buffer: da.label.clone(),
                }];
            }
        }
    }
    Vec::new()
}

/// Whether two patterns over the same buffer may touch a common index.
/// `exclude_diag` restricts to *distinct* thread pairs (intra-launch
/// checks, where thread t cannot race itself).
fn pair_overlaps(
    pa: &Pattern,
    pb: &Pattern,
    wa: usize,
    wb: usize,
    exclude_diag: bool,
    buf_len: usize,
) -> bool {
    if let (
        &Pattern::Affine {
            base: ba,
            stride: sa,
            span: spa,
        },
        &Pattern::Affine {
            base: bb,
            stride: sb,
            span: spb,
        },
    ) = (pa, pb)
    {
        return affine_overlap(
            ba as i128,
            sa as i128,
            spa as i128,
            wa as i128,
            bb as i128,
            sb as i128,
            spb as i128,
            wb as i128,
            exclude_diag,
        );
    }
    let fa = match pa.footprint(wa, buf_len) {
        Some(f) => f,
        None => return false,
    };
    let fb = match pb.footprint(wb, buf_len) {
        Some(f) => f,
        None => return false,
    };
    let intersects = fa.0 < fb.1 && fb.0 < fa.1;
    // With interval-level precision we can't tell same-thread overlap
    // from cross-thread overlap; a single-thread launch touching a
    // shared range only via the diagonal is the one case we can clear.
    intersects && (!exclude_diag || wa > 1 || wb > 1)
}

/// Exact (or conservatively bounded) overlap test between two affine
/// footprints: does there exist `t in 0..wa`, `u in 0..wb` (with `t !=
/// u` when `exclude_diag`) such that `[ba+t*sa, +spa)` and `[bb+u*sb,
/// +spb)` intersect?
///
/// Intersection condition: `-spb < (ba - bb) + t*sa - u*sb < spa`.
#[allow(clippy::too_many_arguments)]
fn affine_overlap(
    ba: i128,
    sa: i128,
    spa: i128,
    wa: i128,
    bb: i128,
    sb: i128,
    spb: i128,
    wb: i128,
    exclude_diag: bool,
) -> bool {
    if spa == 0 || spb == 0 || wa == 0 || wb == 0 {
        return false;
    }
    let d = ba - bb;
    if sa == sb {
        // Equal strides s: let k = t - u, k in [-(wb-1), wa-1].
        // Overlap of [ba+s*t, +spa) and [bb+s*u, +spb) needs
        // start_a < end_b and start_b < end_a: -spa < d + k*s < spb.
        let s = sa;
        let (klo, khi) = (-(wb - 1), wa - 1);
        if s == 0 {
            let hit = -spa < d && d < spb;
            // Every (t, u) pair gives the same condition; an
            // off-diagonal pair exists iff some launch has width > 1.
            return hit && (!exclude_diag || wa > 1 || wb > 1);
        }
        // k in ((-spa - d)/s, (spb - d)/s) intersected with [klo, khi];
        // a negative s flips the interval: (d - spb, d + spa) over |s|.
        let (lo_num, hi_num) = if s > 0 {
            (-spa - d, spb - d)
        } else {
            (d - spb, d + spa)
        };
        let s_abs = s.abs();
        // Open interval (lo_num/s_abs, hi_num/s_abs): smallest integer
        // strictly above, largest strictly below.
        let lo = lo_num.div_euclid(s_abs) + 1;
        let hi = if hi_num.rem_euclid(s_abs) == 0 {
            hi_num / s_abs - 1
        } else {
            hi_num.div_euclid(s_abs)
        };
        let lo = lo.max(klo);
        let hi = hi.min(khi);
        if lo > hi {
            return false;
        }
        // exclude_diag removes only k == 0.
        !(exclude_diag && lo == 0 && hi == 0)
    } else {
        // Unequal strides: bounded scan of the narrower launch.
        const CAP: i128 = 1 << 16;
        let (ba, sa, spa, wa, bb, sb, spb, wb) = if wa <= wb {
            (ba, sa, spa, wa, bb, sb, spb, wb)
        } else {
            (bb, sb, spb, wb, ba, sa, spa, wa)
        };
        if wa > CAP {
            return true; // conservative: too wide to scan
        }
        let d = ba - bb;
        for t in 0..wa {
            // Need u with u*sb in (c - spb, c + spa), u in [0, wb-1]
            // (start_a < end_b and start_b < end_a for the two slabs).
            let c = d + t * sa;
            let (ulo, uhi) = if sb == 0 {
                if -spa < c && c < spb {
                    (0, wb - 1)
                } else {
                    continue;
                }
            } else {
                let (lo_num, hi_num) = if sb > 0 {
                    (c - spb, c + spa)
                } else {
                    (-c - spa, spb - c)
                };
                let sb_abs = sb.abs();
                let ulo = lo_num.div_euclid(sb_abs) + 1;
                let uhi = if hi_num.rem_euclid(sb_abs) == 0 {
                    hi_num / sb_abs - 1
                } else {
                    hi_num.div_euclid(sb_abs)
                };
                (ulo.max(0), uhi.min(wb - 1))
            };
            if ulo > uhi {
                continue;
            }
            if exclude_diag && ulo == t && uhi == t {
                continue; // only the diagonal pair overlaps
            }
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aff(base: usize, stride: usize, span: usize) -> Pattern {
        Pattern::Affine { base, stride, span }
    }

    fn overlaps(pa: Pattern, pb: Pattern, wa: usize, wb: usize, exclude_diag: bool) -> bool {
        pair_overlaps(&pa, &pb, wa, wb, exclude_diag, usize::MAX)
    }

    /// Brute-force oracle for the affine math.
    fn brute(pa: Pattern, pb: Pattern, wa: usize, wb: usize, exclude_diag: bool) -> bool {
        let idx = |p: &Pattern, t: usize| -> (usize, usize) {
            match *p {
                Pattern::Affine { base, stride, span } => (base + t * stride, span),
                _ => unreachable!(),
            }
        };
        for t in 0..wa {
            for u in 0..wb {
                if exclude_diag && t == u {
                    continue;
                }
                let (la, spa) = idx(&pa, t);
                let (lb, spb) = idx(&pb, u);
                if la < lb + spb && lb < la + spa {
                    return true;
                }
            }
        }
        false
    }

    #[test]
    fn affine_self_disjoint_when_stride_covers_span() {
        // stride == span: each thread owns its own cell.
        assert!(!overlaps(aff(0, 4, 4), aff(0, 4, 4), 16, 16, true));
        // stride > span: gaps between cells.
        assert!(!overlaps(aff(0, 8, 4), aff(0, 8, 4), 16, 16, true));
        // stride < span: neighbors collide.
        assert!(overlaps(aff(0, 2, 4), aff(0, 2, 4), 16, 16, true));
    }

    #[test]
    fn affine_offset_copies_collide_cross_thread() {
        // read at t, write at t+1 (same stride, shifted base).
        assert!(overlaps(aff(0, 1, 1), aff(1, 1, 1), 8, 8, true));
        // but a shift of a full window stays disjoint.
        assert!(!overlaps(aff(0, 1, 1), aff(100, 1, 1), 8, 8, true));
    }

    #[test]
    fn diagonal_exclusion_clears_same_slot_read_write() {
        // Each thread reads and writes its own cell: overlap only on
        // the diagonal, which is not a race.
        assert!(!overlaps(aff(0, 4, 4), aff(0, 4, 4), 16, 16, true));
        assert!(overlaps(aff(0, 4, 4), aff(0, 4, 4), 16, 16, false));
    }

    #[test]
    fn zero_span_and_zero_width_never_overlap() {
        assert!(!overlaps(aff(0, 1, 0), aff(0, 1, 1), 8, 8, false));
        assert!(!overlaps(aff(0, 1, 1), aff(0, 1, 1), 0, 8, false));
    }

    #[test]
    fn zero_stride_broadcast() {
        // All threads hit the same cell: WW hazard if width > 1.
        assert!(overlaps(aff(5, 0, 1), aff(5, 0, 1), 4, 4, true));
        assert!(!overlaps(aff(5, 0, 1), aff(5, 0, 1), 1, 1, true));
        assert!(!overlaps(aff(5, 0, 1), aff(6, 0, 1), 4, 4, false));
    }

    #[test]
    fn unequal_strides_scan_matches_brute_force() {
        let cases = [
            (aff(0, 3, 1), aff(0, 5, 1), 10, 10),
            (aff(1, 3, 2), aff(0, 7, 1), 12, 6),
            (aff(0, 2, 2), aff(1, 3, 1), 9, 9),
            (aff(4, 6, 2), aff(0, 4, 3), 7, 11),
            (aff(0, 10, 1), aff(5, 7, 1), 8, 8),
        ];
        for (pa, pb, wa, wb) in cases {
            for ed in [false, true] {
                assert_eq!(
                    overlaps(pa, pb, wa, wb, ed),
                    brute(pa, pb, wa, wb, ed),
                    "{pa:?} vs {pb:?} w=({wa},{wb}) ed={ed}"
                );
            }
        }
    }

    #[test]
    fn equal_strides_closed_form_matches_brute_force() {
        let cases = [
            (aff(0, 4, 4), aff(2, 4, 4), 8, 8),
            (aff(0, 4, 2), aff(2, 4, 2), 8, 8),
            (aff(3, 5, 5), aff(0, 5, 3), 6, 10),
            (aff(0, 1, 1), aff(3, 1, 1), 4, 4),
            (aff(0, 1, 1), aff(3, 1, 1), 8, 4),
        ];
        for (pa, pb, wa, wb) in cases {
            for ed in [false, true] {
                assert_eq!(
                    overlaps(pa, pb, wa, wb, ed),
                    brute(pa, pb, wa, wb, ed),
                    "{pa:?} vs {pb:?} w=({wa},{wb}) ed={ed}"
                );
            }
        }
    }

    #[test]
    fn range_and_all_use_interval_footprints() {
        let r = Pattern::Range { lo: 10, hi: 20 };
        assert!(overlaps(r, aff(15, 1, 1), 4, 4, false));
        assert!(!overlaps(r, aff(20, 1, 1), 4, 4, false));
        assert!(pair_overlaps(&Pattern::All, &r, 2, 2, false, 100));
        // Empty buffer: All touches nothing.
        assert!(!pair_overlaps(&Pattern::All, &r, 2, 2, false, 0));
    }

    #[test]
    fn check_launch_flags_each_class() {
        let table = EffectTable::new();
        let buf = table.buffer("b", 16);
        let bufs = table.snapshot();
        // OOB: 8 threads x stride 4 needs 32 > 16.
        let h = check_launch("k", 8, &[Effect::write(buf, aff(0, 4, 4))], &bufs);
        assert!(
            matches!(
                h[0],
                StaticHazard::OutOfBounds {
                    needed: 32,
                    len: 16,
                    ..
                }
            ),
            "{h:?}"
        );
        // WW: overlapping strided writes.
        let h = check_launch("k", 4, &[Effect::write(buf, aff(0, 2, 4))], &bufs);
        assert!(
            h.iter()
                .any(|h| matches!(h, StaticHazard::WriteWrite { .. })),
            "{h:?}"
        );
        // RW: read shifted against write.
        let h = check_launch(
            "k",
            4,
            &[
                Effect::read(buf, aff(0, 1, 1)),
                Effect::write(buf, aff(1, 1, 1)),
            ],
            &bufs,
        );
        assert!(
            h.iter()
                .any(|h| matches!(h, StaticHazard::ReadWrite { .. })),
            "{h:?}"
        );
        // Clean: own-cell read+write.
        let h = check_launch(
            "k",
            4,
            &[
                Effect::read(buf, aff(0, 4, 4)),
                Effect::write(buf, aff(0, 4, 4)),
            ],
            &bufs,
        );
        assert!(h.is_empty(), "{h:?}");
        // Atomics commute.
        let h = check_launch("k", 4, &[Effect::atomic(buf, aff(0, 0, 1))], &bufs);
        assert!(h.is_empty(), "{h:?}");
        // Indexed is trusted intra-launch.
        let h = check_launch(
            "k",
            4,
            &[Effect::write(buf, Pattern::Indexed { lo: 0, hi: 16 })],
            &bufs,
        );
        assert!(h.is_empty(), "{h:?}");
        // Width 0 launches nothing.
        let h = check_launch("k", 0, &[Effect::write(buf, aff(0, 0, 1))], &bufs);
        assert!(h.is_empty(), "{h:?}");
    }

    #[test]
    fn check_unordered_matches_by_label_and_reports_once() {
        let ta = EffectTable::new();
        let a = ta.buffer("shared", 64);
        let tb = EffectTable::new();
        let b = tb.buffer("shared", 64);
        let other = tb.buffer("other", 64);
        let sa = ta.snapshot();
        let sb = tb.snapshot();
        let pa = DeclaredPeer {
            label: "a",
            width: 8,
            buffers: &sa,
            effects: &[Effect::write(a, aff(0, 1, 1))],
        };
        let pb = DeclaredPeer {
            label: "b",
            width: 8,
            buffers: &sb,
            effects: &[
                Effect::read(b, aff(0, 1, 1)),
                Effect::write(b, aff(0, 1, 1)),
                Effect::write(other, aff(0, 1, 1)),
            ],
        };
        let h = check_unordered(&pa, &pb);
        assert_eq!(h.len(), 1, "{h:?}");
        assert!(
            matches!(&h[0], StaticHazard::UnorderedConflict { buffer, .. } if buffer == "shared")
        );
        // Disjoint halves of one buffer: clean.
        let pc = DeclaredPeer {
            label: "c",
            width: 8,
            buffers: &sb,
            effects: &[Effect::write(b, aff(32, 1, 1))],
        };
        assert!(check_unordered(&pa, &pc).is_empty());
        // Read-read never conflicts.
        let pr1 = DeclaredPeer {
            label: "r1",
            width: 8,
            buffers: &sa,
            effects: &[Effect::read(a, Pattern::All)],
        };
        let pr2 = DeclaredPeer {
            label: "r2",
            width: 8,
            buffers: &sb,
            effects: &[Effect::read(b, Pattern::All)],
        };
        assert!(check_unordered(&pr1, &pr2).is_empty());
        // Indexed envelopes do conflict across launches.
        let pi = DeclaredPeer {
            label: "i",
            width: 8,
            buffers: &sb,
            effects: &[Effect::write(b, Pattern::Indexed { lo: 0, hi: 64 })],
        };
        assert_eq!(check_unordered(&pa, &pi).len(), 1);
    }

    #[test]
    fn covers_matches_pattern_semantics() {
        let p = aff(2, 4, 2);
        assert!(p.covers(0, 2) && p.covers(0, 3) && !p.covers(0, 4));
        assert!(p.covers(1, 6) && !p.covers(1, 2));
        let r = Pattern::Indexed { lo: 5, hi: 9 };
        assert!(r.covers(3, 5) && r.covers(0, 8) && !r.covers(0, 9));
        assert!(Pattern::All.covers(7, 123456));
    }
}

//! Streams: queued kernel launches with explicit synchronization points —
//! the executor-model analogue of CUDA streams.
//!
//! A [`Stream`] queues launches instead of running them eagerly; nothing
//! executes until [`Stream::sync`]/[`Stream::read_back`] or an
//! [`Executor::join`] barrier. Launches queued on *one* stream are ordered
//! (each sees the writes of its predecessors, like kernels on one CUDA
//! stream); launches on *different* streams joined together are unordered
//! and may interleave on the worker pool — so they must touch disjoint
//! data, a discipline the kernel sanitizer verifies (unordered conflicting
//! accesses are reported as stream races).
//!
//! Joining streams is also what teaches the cost model about overlap:
//! within one join epoch only the heaviest stream's launches are charged
//! to the modeled critical path (see
//! [`LaunchStats::modeled_time`](crate::LaunchStats::modeled_time)), while
//! [`LaunchStats::serialized_time`](crate::LaunchStats::serialized_time)
//! keeps charging every launch.
//!
//! ```
//! use parsweep_par::Executor;
//! let exec = Executor::with_threads(2);
//! let mut a = vec![0u32; 64];
//! let mut b = vec![0u32; 64];
//! {
//!     let ca = exec.bind("a", &mut a);
//!     let cb = exec.bind("b", &mut b);
//!     let mut s1 = exec.stream();
//!     let mut s2 = exec.stream();
//!     // SAFETY: each tid writes its own slot; the two streams touch
//!     // disjoint buffers, so their launches may interleave freely.
//!     s1.launch(64, |tid| unsafe { ca.write(tid, tid, 1) });
//!     s2.launch(64, |tid| unsafe { cb.write(tid, tid, 2) });
//!     exec.join(&mut [&mut s1, &mut s2]);
//! }
//! assert_eq!((a[7], b[7]), (1, 2));
//! ```

use crate::effects::{self, DeclaredLaunch, DeclaredPeer, Effect, EffectTable};
use crate::{DeviceSlice, Executor};
use parsweep_trace as trace;

/// One queued (not yet executed) kernel launch.
pub(crate) struct Pending<'env> {
    pub(crate) label: String,
    pub(crate) n: usize,
    /// Buffer id the launch promises to fill (coverage checking).
    pub(crate) coverage: Option<u32>,
    /// Static effect declarations, when the launch was queued with
    /// [`Stream::launch_declared`] or replayed from a declared graph
    /// node. Declared launches skip dynamic sanitization unless the
    /// executor is in cross-check mode.
    pub(crate) declared: Option<DeclaredLaunch>,
    /// Set when cross-launch disjointness was already proven at graph
    /// build time (at the node's maximum width, which dominates every
    /// replay width): the drain-time epoch check skips pairs where both
    /// sides carry this flag, so verified replays cost O(launches), not
    /// O(launches²).
    pub(crate) preverified: bool,
    pub(crate) kernel: Box<dyn Fn(usize) + Send + Sync + 'env>,
}

/// An ordered queue of kernel launches, executed lazily at explicit
/// synchronization points — the analogue of a CUDA stream.
///
/// Created with [`Executor::stream`]. Launches queue until [`Stream::sync`]
/// (or [`Stream::read_back`], or an [`Executor::join`] with other
/// streams) drains them; a stream dropped with work still queued syncs
/// itself, mirroring how destroying a CUDA stream completes its work.
pub struct Stream<'exec, 'env> {
    pub(crate) exec: &'exec Executor,
    pub(crate) id: u64,
    pub(crate) queue: Vec<Pending<'env>>,
}

impl<'exec, 'env> Stream<'exec, 'env> {
    pub(crate) fn new(exec: &'exec Executor, id: u64) -> Self {
        Stream {
            exec,
            id,
            queue: Vec::new(),
        }
    }

    /// This stream's executor-unique id (used in sanitizer stream-race
    /// reports).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of launches queued and not yet executed.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Queues a kernel over thread ids `0..n`. Nothing runs until the next
    /// synchronization point.
    ///
    /// The kernel must be safe to run concurrently for distinct ids, and —
    /// unlike an eager [`Executor::launch`] — must only touch data that no
    /// launch on a *different* stream of the same join epoch touches
    /// (launches on this stream are ordered and may see each other's
    /// writes).
    pub fn launch<F>(&mut self, n: usize, kernel: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        self.launch_labeled("kernel", n, kernel);
    }

    /// Like [`Stream::launch`], with a kernel label used in sanitizer
    /// reports and launch accounting.
    pub fn launch_labeled<F>(&mut self, label: &str, n: usize, kernel: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        if n == 0 {
            return; // zero-width launches are not recorded, as with eager launches
        }
        self.queue.push(Pending {
            label: label.to_string(),
            n,
            coverage: None,
            declared: None,
            preverified: false,
            kernel: Box::new(kernel),
        });
    }

    /// Queues a kernel whose buffer accesses are declared as static
    /// [`Effect`]s over `table` (see [`Executor::launch_declared`]).
    ///
    /// The intra-launch checks (bounds, thread disjointness) run *now*,
    /// at the exact width `n`; cross-stream disjointness against the
    /// other streams of the join epoch is checked when the epoch drains.
    /// An epoch whose launches are all declared and hazard-free runs on
    /// the parallel fast path even on a sanitizing executor.
    ///
    /// # Panics
    ///
    /// Panics with the [`StaticHazard`](crate::StaticHazard) report
    /// when the declared effects conflict or exceed a buffer's declared
    /// length.
    pub fn launch_declared<F>(
        &mut self,
        table: &EffectTable,
        label: &str,
        n: usize,
        effects_list: &[Effect],
        kernel: F,
    ) where
        F: Fn(usize) + Send + Sync + 'env,
    {
        if n == 0 {
            return;
        }
        let buffers = table.snapshot();
        let hazards = effects::check_launch(label, n, effects_list, &buffers);
        assert!(
            hazards.is_empty(),
            "static effect check failed for `{label}`:\n{}",
            hazards
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        self.queue.push(Pending {
            label: label.to_string(),
            n,
            coverage: None,
            declared: Some(DeclaredLaunch {
                buffers,
                effects: std::sync::Arc::new(effects_list.to_vec()),
            }),
            preverified: false,
            kernel: Box::new(kernel),
        });
    }

    /// Queues a kernel that promises to write every slot of `buffer`
    /// exactly once (see [`Executor::launch_filling`]).
    pub fn launch_filling<T, F>(&mut self, label: &str, buffer: &DeviceSlice<'_, T>, kernel: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        if buffer.is_empty() {
            return;
        }
        self.queue.push(Pending {
            label: label.to_string(),
            n: buffer.len(),
            coverage: Some(buffer.buffer_id()),
            declared: None,
            preverified: false,
            kernel: Box::new(kernel),
        });
    }

    /// Executes all queued launches in order and waits for completion.
    /// A lone stream gets the executor's full worker pool per launch.
    pub fn sync(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let queue = std::mem::take(&mut self.queue);
        self.exec.drain_streams(vec![(self.id, queue)]);
    }

    /// Consumes the stream, executing all queued launches — the point
    /// where results become visible to the host, like a stream-ordered
    /// device-to-host copy.
    pub fn read_back(mut self) {
        self.sync();
    }
}

impl Drop for Stream<'_, '_> {
    fn drop(&mut self) {
        if !self.queue.is_empty() {
            self.sync();
        }
    }
}

impl Executor {
    /// Executes the queued launches of one or more streams as one *join
    /// epoch* and waits for all of them.
    ///
    /// Within the epoch each stream's launches run in queue order, but
    /// launches of different streams are unordered and may interleave on
    /// the worker pool, so they must touch disjoint data (the sanitizer
    /// reports violations as stream races). The barrier at the end orders
    /// the whole epoch before everything that follows.
    ///
    /// Cost-model effect: every launch is charged to the serialized
    /// profile, but only the heaviest joined stream is charged to the
    /// critical path, so `modeled_time` reflects the overlap.
    ///
    /// # Panics
    ///
    /// Panics if a stream belongs to a different executor.
    pub fn join(&self, streams: &mut [&mut Stream<'_, '_>]) {
        let batches: Vec<(u64, Vec<Pending<'_>>)> = streams
            .iter_mut()
            .map(|s| {
                assert!(
                    std::ptr::eq(s.exec, self),
                    "stream joined on a foreign executor"
                );
                (s.id, std::mem::take(&mut s.queue))
            })
            .collect();
        self.drain_streams(batches);
    }

    /// Runs stream batches: the execution engine behind [`Stream::sync`]
    /// and [`Executor::join`].
    pub(crate) fn drain_streams(&self, mut batches: Vec<(u64, Vec<Pending<'_>>)>) {
        batches.retain(|(_, queue)| !queue.is_empty());
        if batches.is_empty() {
            return;
        }
        let mut epoch = trace::span("stream", "stream.epoch");
        epoch.arg_u64("streams", batches.len() as u64);
        epoch.arg_u64(
            "launches",
            batches.iter().map(|(_, q)| q.len() as u64).sum(),
        );
        // Accounting is deterministic and up front — widths are known
        // before anything runs. Every launch lands in the serialized
        // profile; only the heaviest stream of this epoch lands on the
        // critical path (the others overlap it).
        let ordinals: Vec<Vec<u64>> = batches
            .iter()
            .map(|(_, queue)| queue.iter().map(|p| self.record(p.n, false)).collect())
            .collect();
        let heaviest = batches
            .iter()
            .enumerate()
            .max_by_key(|(i, entry)| {
                let width: u64 = entry.1.iter().map(|p| p.n as u64).sum();
                (width, std::cmp::Reverse(*i))
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.record_critical_widths(batches[heaviest].1.iter().map(|p| p.n));

        // Static cross-stream check: any two declared launches on
        // different streams of this epoch are unordered, so their
        // footprints must be disjoint (write-vs-anything). This runs at
        // the *exact* runtime widths on every executor — raw included,
        // where a hazard cannot be demoted to a report because the
        // launches are about to race on real threads.
        // A replayed wave is entirely preverified (build time proved all
        // its pairs disjoint at max widths) — don't even iterate the
        // pairs: a wide graph wave joins thousands of one-launch streams.
        let all_preverified = batches.iter().all(|(_, q)| q.iter().all(|p| p.preverified));
        if batches.len() > 1 && !all_preverified {
            for (i, (_, qa)) in batches.iter().enumerate() {
                for (_, qb) in batches.iter().skip(i + 1) {
                    for pa in qa.iter().filter(|p| p.declared.is_some()) {
                        let da = pa.declared.as_ref().unwrap();
                        for pb in qb.iter().filter(|p| p.declared.is_some()) {
                            // Graph replays proved same-wave disjointness
                            // at build time at max widths — re-proving it
                            // per replay would make every replay epoch
                            // quadratic in its wave width.
                            if pa.preverified && pb.preverified {
                                continue;
                            }
                            let db = pb.declared.as_ref().unwrap();
                            let hazards = effects::check_unordered(
                                &DeclaredPeer {
                                    label: &pa.label,
                                    width: pa.n,
                                    buffers: &da.buffers,
                                    effects: &da.effects,
                                },
                                &DeclaredPeer {
                                    label: &pb.label,
                                    width: pb.n,
                                    buffers: &db.buffers,
                                    effects: &db.effects,
                                },
                            );
                            assert!(
                                hazards.is_empty(),
                                "static effect check failed for join epoch:\n{}",
                                hazards
                                    .iter()
                                    .map(ToString::to_string)
                                    .collect::<Vec<_>>()
                                    .join("\n")
                            );
                        }
                    }
                }
            }
        }
        // An epoch whose launches are all statically verified skips
        // dynamic sanitization (unless cross-check mode audits it).
        let declared_count: u64 = batches
            .iter()
            .flat_map(|(_, q)| q.iter())
            .filter(|p| p.declared.is_some())
            .count() as u64;
        let all_declared = batches
            .iter()
            .all(|(_, q)| q.iter().all(|p| p.declared.is_some()));

        if let Some(san) = &self.sanitizer {
            if all_declared && !san.cross_check() {
                // Fall through to the parallel fast paths below.
            } else {
                // Sanitized epochs run serialized, stream by stream in join
                // order, logging the stream id of every launch so the
                // cross-launch analysis can tell ordered (same-stream) from
                // unordered (cross-stream) access pairs.
                san.begin_epoch();
                for ((stream, queue), ords) in batches.iter().zip(&ordinals) {
                    for (pending, &ordinal) in queue.iter().zip(ords) {
                        let _span = trace::kernel_span(&pending.label, pending.n);
                        san.begin_launch(
                            &pending.label,
                            ordinal,
                            pending.coverage.map(|b| (b, pending.n)),
                            *stream,
                            pending.declared.as_ref(),
                        );
                        for tid in 0..pending.n {
                            (pending.kernel)(tid);
                        }
                        san.end_launch();
                    }
                }
                return;
            }
        }
        if declared_count > 0 {
            self.note_verified_launches(declared_count);
        }
        if batches.len() == 1 {
            // A lone stream is an ordered chain: run each launch over the
            // full worker pool, exactly like eager launches.
            for pending in &batches[0].1 {
                let _span = trace::kernel_span(&pending.label, pending.n);
                self.run_chunked(pending.n, pending.kernel.as_ref());
            }
            return;
        }
        // Multiple streams where every launch is below the inline
        // threshold: the whole epoch runs on the calling thread, stream
        // by stream. Any serial order that respects per-stream queue
        // order is a valid epoch schedule (cross-stream launches are
        // unordered), and spawning driver threads for sub-threshold
        // launches is pure overhead — this is the epoch-level face of the
        // small-launch fast path.
        let threshold = self.inline_threshold();
        if batches
            .iter()
            .all(|(_, queue)| queue.iter().all(|p| p.n < threshold))
        {
            for (_, queue) in &batches {
                for pending in queue {
                    let _span = trace::kernel_span(&pending.label, pending.n);
                    for tid in 0..pending.n {
                        (pending.kernel)(tid);
                    }
                }
            }
            return;
        }
        // Multiple streams: one driver per stream (capped at the pool
        // width), each draining its streams' launches in order. Streams
        // genuinely interleave; launches within a stream stay ordered.
        let drivers = self.num_threads().min(batches.len());
        if drivers == 1 {
            for (_, queue) in &batches {
                for pending in queue {
                    let _span = trace::kernel_span(&pending.label, pending.n);
                    for tid in 0..pending.n {
                        (pending.kernel)(tid);
                    }
                }
            }
            return;
        }
        std::thread::scope(|scope| {
            for d in 0..drivers {
                let mine: Vec<&(u64, Vec<Pending<'_>>)> =
                    batches.iter().skip(d).step_by(drivers).collect();
                scope.spawn(move || {
                    // Spans recorded here land on the driver thread's own
                    // trace lane, so overlapped streams show up as
                    // genuinely parallel tracks in the viewer.
                    trace::set_thread_label(&format!("stream-driver-{d}"));
                    for (_, queue) in mine {
                        for pending in queue {
                            let _span = trace::kernel_span(&pending.label, pending.n);
                            for tid in 0..pending.n {
                                (pending.kernel)(tid);
                            }
                        }
                    }
                });
            }
        });
    }
}

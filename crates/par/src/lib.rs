//! # parsweep-par — data-parallel kernel-launch executor
//!
//! The paper implements its CEC engine as CUDA kernels on an NVIDIA GPU.
//! This crate is the substitution substrate: it exposes the same
//! *kernel-launch* programming model — "run this closure for thread ids
//! `0..n`" — backed by an OS thread pool (std scoped threads), so all
//! engine algorithms are written exactly as their GPU formulation
//! prescribes (word-parallel truth-table computation, level-wise node
//! batches, window batches).
//!
//! Every launch is recorded, so the *parallel work profile* of a run — how
//! many kernels were launched, how wide they were, and the critical-path
//! depth — can be inspected and used to model speedups on wider machines
//! than the host (see [`LaunchStats::modeled_time`]).
//!
//! ```
//! use parsweep_par::Executor;
//! let exec = Executor::with_threads(2);
//! let squares = exec.map(8, |i| i * i);
//! assert_eq!(squares[3], 9);
//! let stats = exec.stats();
//! // Width 8 is below the inline threshold: the launch ran on the
//! // calling thread instead of being dispatched to the pool, and is
//! // counted in `inline_launches` rather than `launches`.
//! assert_eq!(stats.launches, 0);
//! assert_eq!(stats.inline_launches, 1);
//! assert_eq!(stats.total_launches(), 1);
//! assert_eq!(stats.total_threads, 8);
//! ```
//!
//! ## Small-launch fast path
//!
//! Dispatching a launch to the worker pool costs a `thread::scope`
//! spawn/join — hundreds of microseconds of fixed overhead, which for
//! the narrow per-level launches of a sweeping round dwarfs the work
//! itself (the launch-bound cases of `BENCH_runtime.json`). Launches
//! below [`Executor::inline_threshold`] (default
//! [`DEFAULT_INLINE_THRESHOLD`], override with the `PARSWEEP_INLINE`
//! environment variable or [`Executor::with_inline_threshold`]) therefore
//! run *inline* on the issuing thread. They are counted separately in
//! [`LaunchStats::inline_launches`] — `launches` counts pool dispatches —
//! but remain full launches everywhere else: the sanitizer instruments
//! them, and they are charged to the width histograms and the modeled
//! critical path exactly like dispatched launches (inlining changes where
//! a kernel runs on the *host*, not the modeled device cost).
//!
//! ## Kernel sanitizer
//!
//! Kernels access shared buffers through [`DeviceSlice`] under an
//! unchecked "each tid owns its slot" discipline — the executor-model
//! analogue of the raw device pointers CUDA kernels receive, and the same
//! class of bug `compute-sanitizer --tool racecheck` exists for. A
//! sanitizing executor ([`Executor::with_sanitizer`], the
//! `PARSWEEP_SANITIZE=1` environment variable, or the `sanitize` cargo
//! feature) logs every access and reports write–write and read–write
//! hazards between distinct tids, out-of-bounds accesses, and unwritten
//! output slots — with the kernel label, launch ordinal, and conflicting
//! tids:
//!
//! ```
//! use parsweep_par::{ConflictKind, Executor, SanitizerConfig};
//! let exec = Executor::with_sanitizer_config(
//!     2,
//!     SanitizerConfig { fail_fast: false, ..SanitizerConfig::default() },
//! );
//! let mut buf = vec![0u32; 4];
//! {
//!     let cells = exec.bind("buf", &mut buf);
//!     // Every tid writes slot 0: a write-write race on a real GPU.
//!     exec.launch_labeled("racy", 4, |tid| {
//!         // SAFETY: intentionally violates the disjoint-slot discipline
//!         // to demonstrate detection; the sanitizer serializes execution
//!         // so the race is logged, not physically exercised.
//!         unsafe { cells.write(tid, 0, tid as u32) }
//!     });
//! }
//! let reports = exec.take_reports();
//! assert_eq!(reports.len(), 1);
//! assert_eq!(reports[0].kernel, "racy");
//! assert!(matches!(reports[0].kind, ConflictKind::WriteWrite { .. }));
//! ```

#![warn(missing_docs)]

mod arena;
mod cancel;
mod effects;
mod graph;
mod sanitizer;
mod stream;

pub use arena::{ArenaStats, BufferArena, PooledBuf};
pub use cancel::CancelToken;
pub use effects::{BufId, Effect, EffectKind, EffectTable, Pattern, StaticHazard};
pub use graph::{KernelGraph, KernelGraphBuilder, NodeId};
pub use sanitizer::{AccessKind, ConflictKind, RaceReport, SanitizerConfig};
pub use stream::Stream;

use effects::DeclaredLaunch;
use parsweep_trace as trace;
use sanitizer::Sanitizer;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Number of log2-width buckets retained in [`LaunchStats`]'s launch-width
/// histogram (bucket `b` counts launches of width `w` with
/// `floor(log2(w)) == b`).
pub const WIDTH_BUCKETS: usize = 64;

/// Aggregate statistics over all kernel launches of an [`Executor`].
///
/// `launches` counts launches dispatched to the worker pool and
/// `inline_launches` those run inline on the issuing thread (the
/// small-launch fast path); their sum [`LaunchStats::total_launches`] is
/// the sequential dependency chain length. `total_threads` is the total
/// data-parallel work; `widest` is the largest single launch. The
/// per-launch widths are additionally retained in a bounded log2
/// histogram so [`LaunchStats::modeled_time`] can cost non-uniform launch
/// profiles accurately; inline launches land in the same histograms (the
/// fast path changes host dispatch, not modeled device cost).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchStats {
    /// Kernel launches dispatched to the worker pool (widths at or above
    /// the executor's inline threshold).
    pub launches: u64,
    /// Kernel launches below the inline threshold, run on the issuing
    /// thread instead of the pool. Same modeled cost, no dispatch
    /// overhead.
    pub inline_launches: u64,
    /// Sum of the widths of all launches (total parallel work items).
    pub total_threads: u64,
    /// Width of the widest launch.
    pub widest: u64,
    /// Launch counts bucketed by `floor(log2(width))`.
    pub width_counts: [u64; WIDTH_BUCKETS],
    /// Sum of launch widths per bucket.
    pub width_sums: [u64; WIDTH_BUCKETS],
    /// Launches on the modeled critical path: every eager launch, plus —
    /// per [`Executor::join`] epoch — the launches of the heaviest joined
    /// stream only (the other streams overlap it).
    pub critical_launches: u64,
    /// Sum of the widths of critical-path launches.
    pub critical_threads: u64,
    /// Critical-path launch counts bucketed by `floor(log2(width))`.
    pub critical_counts: [u64; WIDTH_BUCKETS],
    /// Sum of critical-path launch widths per bucket.
    pub critical_sums: [u64; WIDTH_BUCKETS],
    /// Launches with declared effects that the static checker verified
    /// and that therefore ran on the parallel fast path without dynamic
    /// sanitization ("verify once at record time, replay unsanitized").
    pub static_verified_launches: u64,
    /// Replays of statically-verified [`KernelGraph`]s that skipped
    /// dynamic sanitization entirely.
    pub static_verified_replays: u64,
    /// [`BufferArena`] takes served from a pool (no allocation).
    pub arena_hits: u64,
    /// [`BufferArena`] takes that allocated a fresh buffer.
    pub arena_misses: u64,
    /// High-water mark of the arena footprint in bytes.
    pub arena_peak_bytes: u64,
    /// High-water mark of *live* (checked-out) arena bytes. Unlike
    /// `arena_peak_bytes` this is not floored at the pooled footprint of
    /// earlier workloads in the same process, so it is the honest
    /// per-workload device-memory demand after [`Executor::reset_stats`].
    pub arena_peak_live_bytes: u64,
    /// High-water mark of live bytes in the executor's *spill* pool —
    /// the host-staging tier windowed signature streaming retires
    /// columns to. Deliberately a separate pool from the device arena:
    /// on the modeled GPU these bytes live in pinned host memory, not
    /// device memory.
    pub spill_peak_bytes: u64,
    /// Signature-column spill events (level retirements) recorded by
    /// windowed streaming.
    pub window_spills: u64,
    /// Total bytes moved device→spill tier by those retirements.
    pub window_spill_bytes: u64,
}

impl Default for LaunchStats {
    fn default() -> Self {
        LaunchStats {
            launches: 0,
            inline_launches: 0,
            total_threads: 0,
            widest: 0,
            width_counts: [0; WIDTH_BUCKETS],
            width_sums: [0; WIDTH_BUCKETS],
            critical_launches: 0,
            critical_threads: 0,
            critical_counts: [0; WIDTH_BUCKETS],
            critical_sums: [0; WIDTH_BUCKETS],
            static_verified_launches: 0,
            static_verified_replays: 0,
            arena_hits: 0,
            arena_misses: 0,
            arena_peak_bytes: 0,
            arena_peak_live_bytes: 0,
            spill_peak_bytes: 0,
            window_spills: 0,
            window_spill_bytes: 0,
        }
    }
}

/// Costs one launch-width histogram on `cores` lanes: each launch of
/// width `w` costs `ceil(w / cores)` units. Exact when launches sharing a
/// bucket share a width; a lower bound otherwise. Histograms less
/// populated than `launches` (hand-assembled stats) fall back to the
/// uniform lower bound `max(ceil(total/cores), launches)`.
fn histogram_cost(
    counts: &[u64; WIDTH_BUCKETS],
    sums: &[u64; WIDTH_BUCKETS],
    launches: u64,
    total_threads: u64,
    cores: u64,
) -> u64 {
    assert!(cores > 0, "modeled machine needs at least one core");
    let histogrammed: u64 = counts.iter().sum();
    if histogrammed < launches {
        // Histogram not populated: the pre-histogram lower bound.
        return (total_threads.div_ceil(cores)).max(launches);
    }
    counts
        .iter()
        .zip(sums)
        .map(|(&count, &sum)| {
            if count == 0 {
                0
            } else if sum % count == 0 {
                // Uniform bucket: every launch has width sum/count.
                count * (sum / count).div_ceil(cores)
            } else {
                (sum.div_ceil(cores)).max(count)
            }
        })
        .sum()
}

impl LaunchStats {
    /// Models the execution time, in abstract work units, of this launch
    /// profile on a machine with `cores` parallel lanes: each launch of
    /// width `w` costs `ceil(w / cores)` units, mirroring how a GPU
    /// schedules thread blocks over SMs.
    ///
    /// Only *critical-path* launches are charged: launches of streams
    /// that overlapped a heavier stream inside an [`Executor::join`]
    /// epoch cost nothing (they hide behind the epoch's heaviest stream),
    /// so a two-stream workload models strictly cheaper than the same
    /// launches serialized — compare [`LaunchStats::serialized_time`].
    /// For profiles without stream overlap the two are identical.
    ///
    /// Per-launch widths are costed from the log2 width histogram, so the
    /// result is exact whenever the launches that share a bucket share a
    /// width (the common case: level batches of equal size), and never
    /// below the uniform lower bound `max(ceil(total/cores), launches)`
    /// otherwise. Stats assembled by hand without histogram entries fall
    /// back to that lower bound.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn modeled_time(&self, cores: u64) -> u64 {
        if self.critical_launches == 0 {
            // No critical-path accounting (hand-assembled stats): every
            // launch is assumed serialized.
            return self.serialized_time(cores);
        }
        histogram_cost(
            &self.critical_counts,
            &self.critical_sums,
            self.critical_launches,
            self.critical_threads,
            cores,
        )
    }

    /// Models the execution time of this profile with every launch
    /// serialized (no stream overlap) — the cost `modeled_time` would
    /// report if each launch were a global barrier.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn serialized_time(&self, cores: u64) -> u64 {
        histogram_cost(
            &self.width_counts,
            &self.width_sums,
            self.total_launches(),
            self.total_threads,
            cores,
        )
    }

    /// Total launches regardless of dispatch path: pool-dispatched
    /// (`launches`) plus inline (`inline_launches`).
    pub fn total_launches(&self) -> u64 {
        self.launches + self.inline_launches
    }

    /// The maximum speedup this profile admits (Amdahl-style): total work
    /// divided by the launch-count critical path.
    pub fn max_speedup(&self) -> f64 {
        if self.total_launches() == 0 {
            1.0
        } else {
            self.total_threads as f64 / self.total_launches() as f64
        }
    }

    /// Accumulates another profile into this one — used to aggregate the
    /// per-worker executors of a service fleet into one metrics source.
    /// Counters and histograms add; `widest` and the arena high-water
    /// mark take the max (the arenas are independent pools).
    pub fn merge(&mut self, other: &LaunchStats) {
        self.launches += other.launches;
        self.inline_launches += other.inline_launches;
        self.total_threads += other.total_threads;
        self.widest = self.widest.max(other.widest);
        self.critical_launches += other.critical_launches;
        self.critical_threads += other.critical_threads;
        for b in 0..WIDTH_BUCKETS {
            self.width_counts[b] += other.width_counts[b];
            self.width_sums[b] += other.width_sums[b];
            self.critical_counts[b] += other.critical_counts[b];
            self.critical_sums[b] += other.critical_sums[b];
        }
        self.static_verified_launches += other.static_verified_launches;
        self.static_verified_replays += other.static_verified_replays;
        self.arena_hits += other.arena_hits;
        self.arena_misses += other.arena_misses;
        self.arena_peak_bytes = self.arena_peak_bytes.max(other.arena_peak_bytes);
        self.arena_peak_live_bytes = self.arena_peak_live_bytes.max(other.arena_peak_live_bytes);
        self.spill_peak_bytes = self.spill_peak_bytes.max(other.spill_peak_bytes);
        self.window_spills += other.window_spills;
        self.window_spill_bytes += other.window_spill_bytes;
    }
}

/// A data-parallel executor with the GPU kernel-launch programming model.
///
/// `launch(n, kernel)` runs `kernel(tid)` for every `tid in 0..n`, in
/// parallel over a pool of OS threads, and returns when all work items
/// finished (a launch is a synchronization barrier, like a CUDA kernel on
/// one stream).
///
/// A *sanitizing* executor (see [`Executor::with_sanitizer`]) additionally
/// race-checks every launch: execution is serialized in tid order while
/// all [`DeviceSlice`] accesses are logged and analyzed for hazards, the
/// executor-model equivalent of running under
/// `compute-sanitizer --tool racecheck`.
#[derive(Debug)]
pub struct Executor {
    num_threads: usize,
    inline_threshold: usize,
    stats: Mutex<LaunchStats>,
    sanitizer: Option<Sanitizer>,
    arena: BufferArena,
    spill: BufferArena,
    next_stream: AtomicU64,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

/// True when the environment forces sanitizing on every executor: either
/// the `sanitize` cargo feature or `PARSWEEP_SANITIZE` set to anything
/// but `0`.
fn ambient_sanitize() -> bool {
    cfg!(feature = "sanitize")
        || std::env::var_os("PARSWEEP_SANITIZE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// True when the environment forces *cross-check* mode: statically
/// verified launches do not skip dynamic sanitization, and every access
/// they perform is audited against their declared footprints. Set
/// `PARSWEEP_SANITIZE=all` (or `force` / `2`) to enable.
fn ambient_cross_check() -> bool {
    std::env::var_os("PARSWEEP_SANITIZE").is_some_and(|v| v == "all" || v == "force" || v == "2")
}

/// Default width below which a launch runs inline on the issuing thread
/// instead of being dispatched to the worker pool. At typical pool sizes
/// a dispatch costs a `thread::scope` spawn/join; below a couple hundred
/// work items the per-item work never amortizes it.
pub const DEFAULT_INLINE_THRESHOLD: usize = 256;

/// Reads the `PARSWEEP_INLINE` environment override for the inline
/// threshold. Unset or unparsable values fall back to the default; `0`
/// disables the fast path (every launch dispatches to the pool).
fn ambient_inline_threshold() -> usize {
    std::env::var("PARSWEEP_INLINE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_INLINE_THRESHOLD)
}

impl Executor {
    /// Creates an executor sized to the machine's available parallelism.
    pub fn new() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(n)
    }

    /// Creates an executor with an explicit number of worker threads.
    ///
    /// The executor sanitizes when the `sanitize` cargo feature is enabled
    /// or the `PARSWEEP_SANITIZE` environment variable is set (to anything
    /// but `0`), so an unmodified test suite can be run fully
    /// instrumented.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn with_threads(num_threads: usize) -> Self {
        assert!(num_threads > 0, "executor needs at least one thread");
        Executor {
            num_threads,
            inline_threshold: ambient_inline_threshold(),
            stats: Mutex::new(LaunchStats::default()),
            sanitizer: ambient_sanitize().then(|| {
                Sanitizer::new(SanitizerConfig {
                    check_declared: ambient_cross_check(),
                    ..SanitizerConfig::default()
                })
            }),
            arena: BufferArena::new(),
            spill: BufferArena::new(),
            next_stream: AtomicU64::new(1),
        }
    }

    /// Creates a sanitizing executor with the default
    /// [`SanitizerConfig`] (fail-fast: the first launch with a detected
    /// hazard panics with the report).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn with_sanitizer(num_threads: usize) -> Self {
        Self::with_sanitizer_config(num_threads, SanitizerConfig::default())
    }

    /// Creates a sanitizing executor with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn with_sanitizer_config(num_threads: usize, mut config: SanitizerConfig) -> Self {
        assert!(num_threads > 0, "executor needs at least one thread");
        // The ambient cross-check override applies to explicit sanitizer
        // configs too, so `PARSWEEP_SANITIZE=all` forces dynamic checking
        // back on process-wide.
        config.check_declared |= ambient_cross_check();
        Executor {
            num_threads,
            inline_threshold: ambient_inline_threshold(),
            stats: Mutex::new(LaunchStats::default()),
            sanitizer: Some(Sanitizer::new(config)),
            arena: BufferArena::new(),
            spill: BufferArena::new(),
            next_stream: AtomicU64::new(1),
        }
    }

    /// Overrides the small-launch inline threshold: launches of width
    /// strictly below `threshold` run on the issuing thread instead of
    /// dispatching to the worker pool (and are counted in
    /// [`LaunchStats::inline_launches`]). `0` disables the fast path.
    ///
    /// The ambient default is [`DEFAULT_INLINE_THRESHOLD`], overridable
    /// process-wide with the `PARSWEEP_INLINE` environment variable.
    pub fn with_inline_threshold(mut self, threshold: usize) -> Self {
        self.inline_threshold = threshold;
        self
    }

    /// Width below which launches run inline on the issuing thread.
    pub fn inline_threshold(&self) -> usize {
        self.inline_threshold
    }

    /// Wraps this executor for sharing across concurrently-running
    /// workers (e.g. a job service's worker pool).
    ///
    /// `Executor` is `Send + Sync`: launches synchronize only through the
    /// internal stats mutex, the arena pool, and the (mutex-guarded)
    /// sanitizer, so any number of threads may drive launches on one
    /// shared executor concurrently. Sharing one executor — rather than
    /// giving each worker its own — pools the buffer arena (cross-worker
    /// recycling) and aggregates one launch profile for the whole fleet.
    pub fn into_shared(self) -> std::sync::Arc<Executor> {
        // Compile-time proof that sharing is sound; the bound is what
        // makes `Arc<Executor>` usable from many worker threads at once.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Executor>();
        std::sync::Arc::new(self)
    }

    /// Returns the number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// True when this executor race-checks its launches.
    pub fn sanitizing(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// True when this executor audits statically-verified launches with
    /// the dynamic sanitizer instead of letting them skip it
    /// (cross-check mode: [`SanitizerConfig::check_declared`] or
    /// `PARSWEEP_SANITIZE=all`).
    pub fn cross_checking(&self) -> bool {
        self.sanitizer.as_ref().is_some_and(Sanitizer::cross_check)
    }

    /// Counts launches that ran on the verified fast path.
    pub(crate) fn note_verified_launches(&self, count: u64) {
        self.lock_stats().static_verified_launches += count;
    }

    /// Counts one replay of a statically-verified [`KernelGraph`].
    pub(crate) fn note_verified_replay(&self) {
        self.lock_stats().static_verified_replays += 1;
    }

    /// Drains all accumulated sanitizer reports (empty when not
    /// sanitizing or when every launch was hazard-free).
    pub fn take_reports(&self) -> Vec<RaceReport> {
        self.sanitizer
            .as_ref()
            .map_or_else(Vec::new, Sanitizer::take_reports)
    }

    /// Clones all accumulated sanitizer reports without draining them.
    pub fn reports(&self) -> Vec<RaceReport> {
        self.sanitizer
            .as_ref()
            .map_or_else(Vec::new, Sanitizer::reports)
    }

    /// Returns the accumulated launch statistics, including the buffer
    /// arena's counters.
    pub fn stats(&self) -> LaunchStats {
        let mut s = *self.lock_stats();
        let a = self.arena.stats();
        s.arena_hits = a.hits;
        s.arena_misses = a.misses;
        s.arena_peak_bytes = a.peak_bytes;
        s.arena_peak_live_bytes = a.peak_live_bytes;
        s.spill_peak_bytes = self.spill.stats().peak_live_bytes;
        s
    }

    /// Resets the accumulated launch statistics and arena counters (the
    /// arena's pooled buffers stay pooled).
    pub fn reset_stats(&self) {
        *self.lock_stats() = LaunchStats::default();
        self.arena.reset_counters();
        self.spill.reset_counters();
    }

    /// The executor's pooled buffer arena — allocate round-lived device
    /// buffers through it so they are recycled instead of reallocated.
    pub fn arena(&self) -> &BufferArena {
        &self.arena
    }

    /// The executor's *spill* pool: host-staging buffers that windowed
    /// signature streaming retires columns into. Kept separate from
    /// [`Executor::arena`] so the gated device-memory peak reflects only
    /// the resident window, while spill-tier demand is reported through
    /// [`LaunchStats::spill_peak_bytes`].
    pub fn spill_pool(&self) -> &BufferArena {
        &self.spill
    }

    /// Records `bytes` moved device→spill tier by one window retirement.
    pub fn note_window_spill(&self, bytes: u64) {
        let mut s = self.lock_stats();
        s.window_spills += 1;
        s.window_spill_bytes += bytes;
    }

    /// Opens a new [`Stream`] on this executor. Launches queued on it run
    /// at its next synchronization point; join several streams with
    /// [`Executor::join`] to let their launches overlap.
    pub fn stream<'env>(&self) -> Stream<'_, 'env> {
        Stream::new(self, self.next_stream.fetch_add(1, Ordering::Relaxed))
    }

    fn lock_stats(&self) -> MutexGuard<'_, LaunchStats> {
        self.stats.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records a launch of width `n` and returns its 1-based ordinal.
    /// `critical` charges it to the modeled critical path as well (true
    /// for every eager launch; stream launches are charged per join
    /// epoch via [`Executor::record_critical_widths`]). Widths below the
    /// inline threshold count toward `inline_launches` instead of
    /// `launches`; everything else (histograms, critical path, widest) is
    /// dispatch-agnostic.
    fn record(&self, n: usize, critical: bool) -> u64 {
        let mut s = self.lock_stats();
        if n < self.inline_threshold {
            s.inline_launches += 1;
        } else {
            s.launches += 1;
        }
        s.total_threads += n as u64;
        s.widest = s.widest.max(n as u64);
        let bucket = (n as u64).ilog2() as usize;
        s.width_counts[bucket] += 1;
        s.width_sums[bucket] += n as u64;
        if critical {
            s.critical_launches += 1;
            s.critical_threads += n as u64;
            s.critical_counts[bucket] += 1;
            s.critical_sums[bucket] += n as u64;
        }
        s.total_launches()
    }

    /// Charges a set of launch widths to the modeled critical path (the
    /// heaviest stream of a join epoch).
    pub(crate) fn record_critical_widths(&self, widths: impl Iterator<Item = usize>) {
        let mut s = self.lock_stats();
        for n in widths {
            let bucket = (n as u64).ilog2() as usize;
            s.critical_launches += 1;
            s.critical_threads += n as u64;
            s.critical_counts[bucket] += 1;
            s.critical_sums[bucket] += n as u64;
        }
    }

    /// Binds a mutable slice as a labeled device buffer for use inside
    /// kernels of this executor.
    ///
    /// On a raw executor the returned [`DeviceSlice`] is a zero-cost
    /// wrapper over the slice's pointer; on a sanitizing executor every
    /// access through it is logged and race-checked.
    pub fn bind<'a, T>(&'a self, label: &str, slice: &'a mut [T]) -> DeviceSlice<'a, T> {
        let id = self
            .sanitizer
            .as_ref()
            .map_or(0, |s| s.register_buffer(label, slice.len()));
        DeviceSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            san: self.sanitizer.as_ref(),
            id,
            _marker: std::marker::PhantomData,
        }
    }

    /// Binds a mutable slice as the storage of a buffer declared in an
    /// [`EffectTable`], for use by launches with declared effects.
    ///
    /// On a cross-checking executor the returned slice is instrumented
    /// like [`Executor::bind`] so declared footprints can be audited
    /// against every observed access; otherwise it is a raw (zero-cost)
    /// view — statically-verified launches need no per-access logging.
    /// Kernels launched with declared effects must touch *only* buffers
    /// bound through this method from the same table (one table per
    /// epoch, labels unique within it), or the static verdict does not
    /// cover all their accesses; cross-check mode exists to audit
    /// exactly this.
    ///
    /// # Panics
    ///
    /// Panics if `slice.len()` differs from the declared length.
    pub fn bind_table<'a, T>(
        &'a self,
        table: &EffectTable,
        buf: BufId,
        slice: &'a mut [T],
    ) -> DeviceSlice<'a, T> {
        let declared = table.len_of(buf);
        assert_eq!(
            slice.len(),
            declared,
            "bind_table: slice length {} != declared length {declared}",
            slice.len()
        );
        if self.cross_checking() {
            // Re-register under the declared label so the sanitizer can
            // resolve effects back to this binding.
            let label = table.label_of(buf);
            return self.bind(&label, slice);
        }
        DeviceSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            san: None,
            id: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Launches a kernel whose buffer accesses are declared as static
    /// [`Effect`]s over `table`.
    ///
    /// The static checker verifies the declarations at the exact width
    /// `n` *before* the launch runs — bounds against declared buffer
    /// lengths, write-write and read-write disjointness between threads
    /// — and panics on any hazard (on every executor: static analysis
    /// is always on, it costs nothing per element). A launch that
    /// checks then runs on the parallel fast path even on a sanitizing
    /// executor, counted in [`LaunchStats::static_verified_launches`];
    /// in cross-check mode it runs under the dynamic sanitizer instead
    /// and every observed access is audited against the declarations.
    ///
    /// # Panics
    ///
    /// Panics with the [`StaticHazard`] report when the declared
    /// effects conflict or exceed a buffer's declared length.
    pub fn launch_declared<F>(
        &self,
        table: &EffectTable,
        label: &str,
        n: usize,
        effects: &[Effect],
        kernel: F,
    ) where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let buffers = table.snapshot();
        let hazards = effects::check_launch(label, n, effects, &buffers);
        assert!(
            hazards.is_empty(),
            "static effect check failed for `{label}`:\n{}",
            hazards
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        let ordinal = self.record(n, true);
        let _span = trace::kernel_span(label, n);
        if self.cross_checking() {
            let san = self
                .sanitizer
                .as_ref()
                .expect("cross_checking implies sanitizer");
            let declared = DeclaredLaunch {
                buffers,
                effects: std::sync::Arc::new(effects.to_vec()),
            };
            san.begin_epoch();
            san.begin_launch(label, ordinal, None, 0, Some(&declared));
            for tid in 0..n {
                kernel(tid);
            }
            san.end_launch();
            return;
        }
        self.note_verified_launches(1);
        self.run_chunked(n, &kernel);
    }

    /// Launches a kernel over thread ids `0..n` and waits for completion.
    ///
    /// The kernel must be safe to run concurrently for distinct ids;
    /// synchronize shared mutable state yourself (as on a real GPU).
    pub fn launch<F>(&self, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.launch_labeled("kernel", n, kernel);
    }

    /// Like [`Executor::launch`], with a kernel label used in sanitizer
    /// reports and panics.
    pub fn launch_labeled<F>(&self, label: &str, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.launch_inner(label, n, None, kernel);
    }

    /// Launches a kernel that promises to write every slot of `buffer`
    /// (whose length must be `n`) exactly once — the contract of
    /// [`Executor::map`] and [`Executor::fill`] output buffers. A
    /// sanitizing executor verifies the promise and reports every slot
    /// left unwritten, as well as any double write.
    pub fn launch_filling<T, F>(&self, label: &str, buffer: &DeviceSlice<'_, T>, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        self.launch_inner(label, buffer.len(), Some(buffer.id), kernel);
    }

    fn launch_inner<F>(&self, label: &str, n: usize, coverage_buffer: Option<u32>, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let ordinal = self.record(n, true);
        let _span = trace::kernel_span(label, n);
        if let Some(san) = &self.sanitizer {
            // Sanitized launches run serialized in tid order: hazards are
            // detected from the virtual-tid access log, never physically
            // raced (the trade compute-sanitizer makes too). An eager
            // launch is its own ordering epoch: it is fully ordered
            // against everything before and after it.
            san.begin_epoch();
            san.begin_launch(label, ordinal, coverage_buffer.map(|b| (b, n)), 0, None);
            for tid in 0..n {
                kernel(tid);
            }
            san.end_launch();
            return;
        }
        self.run_chunked(n, &kernel);
    }

    /// Runs `kernel` for tids `0..n` chunked over the worker pool.
    /// Widths below the inline threshold run on the calling thread — the
    /// fixed cost of a `thread::scope` dispatch dwarfs that little work.
    pub(crate) fn run_chunked<F>(&self, n: usize, kernel: &F)
    where
        F: Fn(usize) + Sync + ?Sized,
    {
        let workers = if n < self.inline_threshold {
            1
        } else {
            self.num_threads.min(n)
        };
        if workers == 1 {
            for tid in 0..n {
                kernel(tid);
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move || {
                    for tid in lo..hi {
                        kernel(tid);
                    }
                });
            }
        });
    }

    /// Launches a kernel producing one value per thread id and collects
    /// the results in id order.
    ///
    /// The output is assembled in uninitialized storage that the launch
    /// fills slot-by-slot, so `T` needs no placeholder `Default` value; a
    /// sanitizing executor verifies that every slot is written exactly
    /// once before the storage is assumed initialized.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<MaybeUninit<T>> = std::iter::repeat_with(MaybeUninit::uninit)
            .take(n)
            .collect();
        {
            let slots = self.bind("par.map.out", &mut out);
            self.launch_filling("par.map", &slots, |tid| {
                // SAFETY: tid < n == slots.len(), and each tid writes only
                // its own slot (verified by the sanitizer when enabled).
                unsafe { slots.write(tid, tid, MaybeUninit::new(f(tid))) };
            });
        }
        let mut out = ManuallyDrop::new(out);
        // SAFETY: the filling launch wrote every slot of `out` exactly
        // once (each tid its own), so all n elements are initialized;
        // Vec<MaybeUninit<T>> and Vec<T> share layout, and the original
        // Vec is leaked via ManuallyDrop before ownership is re-assembled.
        unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), out.len(), out.capacity()) }
    }

    /// Fills `out[tid] = f(tid)` for `tid in 0..out.len()` in parallel.
    pub fn fill<T, F>(&self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots = self.bind("par.fill.out", out);
        self.launch_filling("par.fill", &slots, |tid| {
            // SAFETY: tid < out.len(), and each tid writes only its own
            // slot (verified by the sanitizer when enabled).
            unsafe { slots.write(tid, tid, f(tid)) };
        });
    }

    /// Parallel reduction: maps every id through `f` and folds the results
    /// with the associative operation `op` (identity `init`).
    ///
    /// Worker partials are folded in worker (= thread-id block) order, so
    /// the result is deterministic for any associative `op`, including
    /// non-commutative ones.
    pub fn reduce<T, F, O>(&self, n: usize, init: T, f: F, op: O) -> T
    where
        T: Send + Clone,
        F: Fn(usize) -> T + Sync,
        O: Fn(T, T) -> T + Sync,
    {
        if n == 0 {
            return init;
        }
        let ordinal = self.record(n, true);
        let _span = trace::kernel_span("par.reduce", n);
        if let Some(san) = &self.sanitizer {
            san.begin_epoch();
            san.begin_launch("par.reduce", ordinal, None, 0, None);
            let result = (0..n).fold(init, |acc, tid| op(acc, f(tid)));
            san.end_launch();
            return result;
        }
        let workers = self.num_threads.min(n);
        if workers == 1 {
            return (0..n).fold(init, |acc, tid| op(acc, f(tid)));
        }
        let chunk = n.div_ceil(workers);
        let partials: Vec<T> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let f = &f;
                    let op = &op;
                    let init = init.clone();
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    scope.spawn(move || (lo..hi).fold(init, |acc, tid| op(acc, f(tid))))
                })
                .collect();
            // Joining in spawn order keeps the fold deterministic no
            // matter which worker finishes first.
            handles
                .into_iter()
                .map(|h| h.join().expect("executor worker panicked"))
                .collect()
        });
        partials.into_iter().fold(init, op)
    }
}

/// A labeled, optionally sanitizer-instrumented view of a mutable slice
/// allowing disjoint per-index access from parallel kernels — the moral
/// equivalent of a device buffer handed to a GPU kernel.
///
/// Created with [`Executor::bind`]. On a raw executor every access
/// compiles down to a pointer offset (today's zero-cost path); on a
/// sanitizing executor every access is logged as
/// `(buffer, index, virtual tid, kind)` and race-checked after the
/// launch.
///
/// ```
/// use parsweep_par::Executor;
/// let exec = Executor::with_threads(2);
/// let mut buf = vec![0u64; 16];
/// {
///     let cells = exec.bind("buf", &mut buf);
///     // SAFETY: each tid writes its own slot.
///     exec.launch(16, |tid| unsafe { cells.write(tid, tid, tid as u64 * 3) });
/// }
/// assert_eq!(buf[5], 15);
/// ```
pub struct DeviceSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    san: Option<&'a Sanitizer>,
    id: u32,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline is enforced by callers (each thread id touches
// a distinct index when writing), matching how GPU kernels use buffers;
// the sanitizer reference is behind a mutex.
unsafe impl<T: Send> Sync for DeviceSlice<'_, T> {}
// SAFETY: as above; a DeviceSlice is a (pointer, sanitizer handle) pair
// whose underlying slice is `Send` element-wise.
unsafe impl<T: Send> Send for DeviceSlice<'_, T> {}

impl<T> DeviceSlice<'_, T> {
    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Sanitizer buffer id (0 on a raw executor).
    pub(crate) fn buffer_id(&self) -> u32 {
        self.id
    }

    /// True if the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index` on behalf of virtual thread `tid`,
    /// dropping the old value.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds, and no other thread may access `index`
    /// concurrently — within one launch, only `tid` may touch `index`.
    /// A sanitizing executor verifies both and reports violations instead
    /// of exhibiting them.
    pub unsafe fn write(&self, tid: usize, index: usize, value: T) {
        if let Some(san) = self.san {
            if !san.record_write(self.id, index, tid) {
                return; // out of bounds: reported, not performed
            }
        } else {
            debug_assert!(index < self.len);
        }
        // SAFETY: index is in bounds (caller contract; checked above when
        // sanitizing) and no concurrent access aliases this slot (caller
        // contract; sanitized launches are serialized).
        unsafe { *self.ptr.add(index) = value };
    }

    /// Reads the value at `index` on behalf of virtual thread `tid`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and no concurrent write to `index` may
    /// happen. Reading a value written earlier in the *same* launch is
    /// only safe if the writer ordered before this read (e.g. same
    /// thread), as on a GPU; cross-tid same-launch reads are reported by
    /// the sanitizer as read–write hazards.
    pub unsafe fn read(&self, tid: usize, index: usize) -> T
    where
        T: Copy,
    {
        if let Some(san) = self.san {
            san.record_read(self.id, index, tid);
        } else {
            debug_assert!(index < self.len);
        }
        // SAFETY: index is in bounds (caller contract; the sanitizer
        // panics on OOB reads) and no write aliases this slot during the
        // read (caller contract; sanitized launches are serialized).
        unsafe { *self.ptr.add(index) }
    }

    /// Returns a shared reference to the element at `index` on behalf of
    /// virtual thread `tid`, for non-`Copy` element access.
    ///
    /// # Safety
    ///
    /// Same discipline as [`DeviceSlice::read`]: in bounds, and no
    /// concurrent write to `index` while the reference lives.
    pub unsafe fn get_ref(&self, tid: usize, index: usize) -> &T {
        if let Some(san) = self.san {
            san.record_read(self.id, index, tid);
        } else {
            debug_assert!(index < self.len);
        }
        // SAFETY: index is in bounds and no write aliases this slot while
        // the reference is live (caller contract, sanitizer-verified).
        unsafe { &*self.ptr.add(index) }
    }
}

/// A shared view of a mutable slice allowing disjoint per-index access from
/// parallel kernels.
///
/// This is the raw, label-free primitive predating [`DeviceSlice`]; prefer
/// [`Executor::bind`], which participates in kernel sanitizing. Retained
/// for uninstrumented uses and backwards compatibility.
///
/// ```
/// use parsweep_par::{Executor, SharedSlice};
/// let exec = Executor::with_threads(2);
/// let mut buf = vec![0u64; 16];
/// {
///     let cells = SharedSlice::new(&mut buf);
///     // SAFETY: each tid writes its own slot.
///     exec.launch(16, |tid| unsafe { cells.write(tid, tid as u64 * 3) });
/// }
/// assert_eq!(buf[5], 15);
/// ```
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline is enforced by callers (each thread id touches
// a distinct index when writing), matching how GPU kernels use buffers.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
// SAFETY: as above.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for shared use inside kernels.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`, dropping the old value.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds, no other access to `index` may happen
    /// concurrently.
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        // SAFETY: index in bounds and slot unaliased per caller contract.
        unsafe { *self.ptr.add(index) = value };
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and no concurrent write to `index` may
    /// happen. Reading a value written earlier in the *same* launch is only
    /// safe if the writer ordered before this read (e.g. same thread), as
    /// on a GPU.
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        // SAFETY: index in bounds and slot unaliased per caller contract.
        unsafe { *self.ptr.add(index) }
    }

    /// Returns a raw pointer to the element at `index`, for non-`Copy`
    /// element access. Dereferencing is subject to the same discipline as
    /// [`SharedSlice::read`]/[`SharedSlice::write`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn as_ptr_at(&self, index: usize) -> *mut T {
        assert!(index < self.len, "index out of bounds");
        // SAFETY: index is in bounds of the borrowed slice.
        unsafe { self.ptr.add(index) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn launch_covers_all_ids_once() {
        let exec = Executor::with_threads(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        exec.launch(100, |tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn launch_zero_is_noop() {
        let exec = Executor::with_threads(2);
        exec.launch(0, |_| panic!("must not run"));
        assert_eq!(exec.stats().launches, 0);
    }

    #[test]
    fn map_preserves_order() {
        let exec = Executor::with_threads(3);
        let v = exec.map(17, |i| i * 2);
        assert_eq!(v, (0..17).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_works_without_default() {
        // A result type with no Default impl: map must not need one.
        struct NoDefault(usize);
        let exec = Executor::with_threads(3);
        let v = exec.map(9, NoDefault);
        assert!(v.iter().enumerate().all(|(i, x)| x.0 == i));
    }

    #[test]
    fn map_drops_results_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let exec = Executor::with_threads(2);
        let v = exec.map(25, |_| Counted);
        assert_eq!(v.len(), 25);
        drop(v);
        assert_eq!(DROPS.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn fill_writes_every_slot() {
        let exec = Executor::with_threads(2);
        let mut buf = vec![0usize; 31];
        exec.fill(&mut buf, |i| i + 1);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn reduce_sums() {
        let exec = Executor::with_threads(4);
        let total = exec.reduce(1000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn reduce_empty_is_identity() {
        let exec = Executor::with_threads(4);
        assert_eq!(exec.reduce(0, 7u64, |_| 1, |a, b| a + b), 7);
    }

    #[test]
    fn reduce_is_deterministic_for_non_commutative_op() {
        // String concatenation is associative but not commutative: if
        // worker partials were folded in completion order the result
        // would depend on thread scheduling. Stagger the first chunk so a
        // completion-order fold would almost surely misorder.
        let expect: String = (0..64).map(|i| format!("{i},")).collect();
        for _ in 0..8 {
            let exec = Executor::with_threads(4);
            let got = exec.reduce(
                64,
                String::new(),
                |i| {
                    if i < 16 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    format!("{i},")
                },
                |a, b| a + &b,
            );
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn stats_accumulate() {
        let exec = Executor::with_threads(2);
        exec.launch(10, |_| {});
        exec.launch(5, |_| {});
        let s = exec.stats();
        // Both launches are below the inline threshold: counted in
        // inline_launches, zero pool dispatches.
        assert_eq!(s.launches, 0);
        assert_eq!(s.inline_launches, 2);
        assert_eq!(s.total_launches(), 2);
        assert_eq!(s.total_threads, 15);
        assert_eq!(s.widest, 10);
        exec.reset_stats();
        assert_eq!(exec.stats(), LaunchStats::default());
    }

    #[test]
    fn inline_threshold_splits_the_launch_counters() {
        let exec = Executor::with_threads(2).with_inline_threshold(100);
        exec.launch(99, |_| {});
        exec.launch(100, |_| {});
        exec.launch(5000, |_| {});
        let s = exec.stats();
        assert_eq!(s.inline_launches, 1);
        assert_eq!(s.launches, 2);
        assert_eq!(s.total_launches(), 3);
        // The cost model is dispatch-agnostic: the histograms carry all
        // three launches.
        assert_eq!(s.serialized_time(1), 99 + 100 + 5000);
        assert_eq!(s.modeled_time(10_000), 3);
    }

    #[test]
    fn inline_launches_run_on_the_calling_thread() {
        let exec = Executor::with_threads(4).with_inline_threshold(64);
        let caller = std::thread::current().id();
        let hits = std::sync::atomic::AtomicU64::new(0);
        exec.launch(63, |_| {
            assert_eq!(
                std::thread::current().id(),
                caller,
                "sub-threshold launch left the issuing thread"
            );
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 63);
        assert_eq!(exec.stats().inline_launches, 1);
    }

    #[test]
    fn zero_threshold_disables_the_fast_path() {
        let exec = Executor::with_threads(2).with_inline_threshold(0);
        exec.launch(1, |_| {});
        let s = exec.stats();
        assert_eq!(s.launches, 1);
        assert_eq!(s.inline_launches, 0);
    }

    #[test]
    fn modeled_time_bounds_without_histogram() {
        // Hand-assembled stats (no histogram): the uniform lower bound.
        let s = LaunchStats {
            launches: 4,
            total_threads: 4000,
            widest: 1000,
            ..LaunchStats::default()
        };
        assert_eq!(s.modeled_time(1), 4000);
        assert_eq!(s.modeled_time(1000), 4);
        assert!(s.max_speedup() > 999.0);
    }

    #[test]
    fn modeled_time_exact_for_non_uniform_launches() {
        let exec = Executor::with_threads(2);
        exec.launch(1000, |_| {});
        exec.launch(8, |_| {});
        let s = exec.stats();
        // True cost on 64 lanes: ceil(1000/64) + ceil(8/64) = 16 + 1;
        // the pre-histogram bound would have said ceil(1008/64) = 16.
        assert_eq!(s.modeled_time(64), 17);
        assert_eq!(s.modeled_time(1), 1008);
        // Same-width launches sharing a bucket stay exact.
        exec.reset_stats();
        exec.launch(65, |_| {});
        exec.launch(65, |_| {});
        assert_eq!(exec.stats().modeled_time(64), 4);
    }

    #[test]
    fn single_thread_executor_is_sequential_and_correct() {
        let exec = Executor::with_threads(1);
        let v = exec.map(8, |i| i);
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sanitizer_flags_write_write_race() {
        let exec = Executor::with_sanitizer_config(
            4,
            SanitizerConfig {
                fail_fast: false,
                ..SanitizerConfig::default()
            },
        );
        let mut buf = vec![0u32; 8];
        {
            let cells = exec.bind("racy.buf", &mut buf);
            exec.launch_labeled("racy.kernel", 6, |tid| {
                // SAFETY: intentionally racy (all tids write slot 3) to
                // exercise detection; sanitized launches are serialized.
                unsafe { cells.write(tid, 3, tid as u32) };
            });
        }
        let reports = exec.take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        let r = &reports[0];
        assert_eq!(r.kernel, "racy.kernel");
        assert_eq!(r.buffer, "racy.buf");
        assert_eq!(r.index, 3);
        assert_eq!(r.launch, 1);
        let (a, b) = r.conflicting_tids().expect("write-write carries tids");
        assert_ne!(a, b);
        assert!(matches!(r.kind, ConflictKind::WriteWrite { .. }));
    }

    #[test]
    fn sanitizer_flags_read_write_hazard() {
        let exec = Executor::with_sanitizer_config(
            2,
            SanitizerConfig {
                fail_fast: false,
                ..SanitizerConfig::default()
            },
        );
        let mut buf = vec![0u32; 8];
        {
            let cells = exec.bind("buf", &mut buf);
            exec.launch_labeled("rw.kernel", 4, |tid| {
                // SAFETY: intentionally hazardous (tid 0 writes slot 0,
                // others read it in the same launch); serialized.
                unsafe {
                    if tid == 0 {
                        cells.write(tid, 0, 7);
                    } else {
                        let _ = cells.read(tid, 0);
                    }
                }
            });
        }
        let reports = exec.take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(matches!(reports[0].kind, ConflictKind::ReadWrite { .. }));
    }

    #[test]
    fn sanitizer_clean_on_disjoint_writes() {
        let exec = Executor::with_sanitizer(4);
        let mut buf = vec![0u64; 64];
        {
            let cells = exec.bind("buf", &mut buf);
            exec.launch_labeled("disjoint", 64, |tid| {
                // SAFETY: each tid writes its own slot.
                unsafe { cells.write(tid, tid, tid as u64) };
            });
        }
        assert!(exec.take_reports().is_empty());
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn sanitizer_flags_out_of_bounds_write() {
        let exec = Executor::with_sanitizer_config(
            2,
            SanitizerConfig {
                fail_fast: false,
                ..SanitizerConfig::default()
            },
        );
        let mut buf = vec![0u8; 4];
        {
            let cells = exec.bind("small", &mut buf);
            exec.launch_labeled("oob", 1, |tid| {
                // SAFETY: deliberately out of bounds; the sanitizer
                // reports and suppresses the physical write.
                unsafe { cells.write(tid, 9, 1) };
            });
        }
        let reports = exec.take_reports();
        assert_eq!(reports.len(), 1);
        assert!(matches!(
            reports[0].kind,
            ConflictKind::OutOfBounds { tid: 0 }
        ));
        assert_eq!(buf, vec![0u8; 4], "OOB write must not be performed");
    }

    #[test]
    #[should_panic(expected = "write-write hazard")]
    fn sanitizer_fail_fast_panics_on_race() {
        let exec = Executor::with_sanitizer(2);
        let mut buf = vec![0u32; 2];
        let cells = exec.bind("buf", &mut buf);
        exec.launch_labeled("racy", 2, |tid| {
            // SAFETY: intentionally racy; serialized under the sanitizer.
            unsafe { cells.write(tid, 0, 1) };
        });
    }

    #[test]
    fn sanitizer_unwritten_slot_in_filling_launch() {
        let exec = Executor::with_sanitizer_config(
            2,
            SanitizerConfig {
                fail_fast: false,
                ..SanitizerConfig::default()
            },
        );
        let mut buf = vec![0u32; 4];
        {
            let cells = exec.bind("out", &mut buf);
            exec.launch_filling("half-fill", &cells, |tid| {
                if tid != 2 {
                    // SAFETY: each tid writes its own slot.
                    unsafe { cells.write(tid, tid, 1) };
                }
            });
        }
        let reports = exec.take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].index, 2);
        assert_eq!(reports[0].kind, ConflictKind::UnwrittenSlot);
    }

    #[test]
    fn shared_executor_serves_concurrent_workers() {
        // Two "service workers" drive launches on one shared executor at
        // the same time; stats must aggregate and the arena is common.
        let exec = Executor::with_threads(2).into_shared();
        std::thread::scope(|scope| {
            for w in 0..2 {
                let exec = std::sync::Arc::clone(&exec);
                scope.spawn(move || {
                    for _ in 0..8 {
                        let v = exec.map(64, |i| i + w);
                        assert_eq!(v[0], w);
                    }
                });
            }
        });
        let s = exec.stats();
        assert_eq!(s.total_launches(), 16);
        assert_eq!(s.inline_launches, 16); // width 64 < inline threshold
        assert_eq!(s.total_threads, 16 * 64);
    }

    #[test]
    fn sanitized_results_match_raw_results() {
        let raw = Executor::with_threads(4);
        let san = Executor::with_sanitizer(4);
        let f = |i: usize| (i as u64).wrapping_mul(0x9e3779b97f4a7c15).rotate_left(9);
        assert_eq!(raw.map(321, f), san.map(321, f));
        assert_eq!(
            raw.reduce(321, 0u64, f, u64::wrapping_add),
            san.reduce(321, 0u64, f, u64::wrapping_add),
        );
        assert!(san.take_reports().is_empty());
    }
}

//! # parsweep-par — data-parallel kernel-launch executor
//!
//! The paper implements its CEC engine as CUDA kernels on an NVIDIA GPU.
//! This crate is the substitution substrate: it exposes the same
//! *kernel-launch* programming model — "run this closure for thread ids
//! `0..n`" — backed by an OS thread pool (crossbeam scoped threads), so all
//! engine algorithms are written exactly as their GPU formulation
//! prescribes (word-parallel truth-table computation, level-wise node
//! batches, window batches).
//!
//! Every launch is recorded, so the *parallel work profile* of a run — how
//! many kernels were launched, how wide they were, and the critical-path
//! depth — can be inspected and used to model speedups on wider machines
//! than the host (see [`LaunchStats::modeled_time`]).
//!
//! ```
//! use parsweep_par::Executor;
//! let exec = Executor::with_threads(2);
//! let squares = exec.map(8, |i| i * i);
//! assert_eq!(squares[3], 9);
//! let stats = exec.stats();
//! assert_eq!(stats.launches, 1);
//! assert_eq!(stats.total_threads, 8);
//! ```

#![warn(missing_docs)]

use parking_lot::Mutex;

/// Aggregate statistics over all kernel launches of an [`Executor`].
///
/// `launches` is the critical-path length in kernels (each launch is a
/// global synchronization point, as on a GPU stream); `total_threads` is
/// the total data-parallel work; `widest` is the largest single launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Number of kernel launches (sequential dependency chain length).
    pub launches: u64,
    /// Sum of the widths of all launches (total parallel work items).
    pub total_threads: u64,
    /// Width of the widest launch.
    pub widest: u64,
}

impl LaunchStats {
    /// Models the execution time, in abstract work units, of this launch
    /// profile on a machine with `cores` parallel lanes: each launch of
    /// width `w` costs `ceil(w / cores)` units (plus one unit of launch
    /// overhead), mirroring how a GPU schedules thread blocks over SMs.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn modeled_time(&self, cores: u64) -> u64 {
        assert!(cores > 0, "modeled machine needs at least one core");
        // All launches of average width; exact per-launch widths are not
        // retained, so model with total work spread over the launches.
        // A lower bound that is exact for uniform launches:
        //   sum_i ceil(w_i/cores) >= ceil(total/cores)  and >= launches.
        (self.total_threads.div_ceil(cores)).max(self.launches)
    }

    /// The maximum speedup this profile admits (Amdahl-style): total work
    /// divided by the launch-count critical path.
    pub fn max_speedup(&self) -> f64 {
        if self.launches == 0 {
            1.0
        } else {
            self.total_threads as f64 / self.launches as f64
        }
    }
}

/// A data-parallel executor with the GPU kernel-launch programming model.
///
/// `launch(n, kernel)` runs `kernel(tid)` for every `tid in 0..n`, in
/// parallel over a pool of OS threads, and returns when all work items
/// finished (a launch is a synchronization barrier, like a CUDA kernel on
/// one stream).
#[derive(Debug)]
pub struct Executor {
    num_threads: usize,
    stats: Mutex<LaunchStats>,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// Creates an executor sized to the machine's available parallelism.
    pub fn new() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(n)
    }

    /// Creates an executor with an explicit number of worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn with_threads(num_threads: usize) -> Self {
        assert!(num_threads > 0, "executor needs at least one thread");
        Executor {
            num_threads,
            stats: Mutex::new(LaunchStats::default()),
        }
    }

    /// Returns the number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Returns the accumulated launch statistics.
    pub fn stats(&self) -> LaunchStats {
        *self.stats.lock()
    }

    /// Resets the accumulated launch statistics.
    pub fn reset_stats(&self) {
        *self.stats.lock() = LaunchStats::default();
    }

    fn record(&self, n: usize) {
        let mut s = self.stats.lock();
        s.launches += 1;
        s.total_threads += n as u64;
        s.widest = s.widest.max(n as u64);
    }

    /// Launches a kernel over thread ids `0..n` and waits for completion.
    ///
    /// The kernel must be safe to run concurrently for distinct ids;
    /// synchronize shared mutable state yourself (as on a real GPU).
    pub fn launch<F>(&self, n: usize, kernel: F)
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return;
        }
        self.record(n);
        let workers = self.num_threads.min(n);
        if workers == 1 {
            for tid in 0..n {
                kernel(tid);
            }
            return;
        }
        let chunk = n.div_ceil(workers);
        crossbeam::scope(|scope| {
            for w in 0..workers {
                let kernel = &kernel;
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move |_| {
                    for tid in lo..hi {
                        kernel(tid);
                    }
                });
            }
        })
        .expect("executor worker panicked");
    }

    /// Launches a kernel producing one value per thread id and collects the
    /// results in id order.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + Default + Clone,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = vec![T::default(); n];
        {
            let slots = SliceCells::new(&mut out);
            self.launch(n, |tid| {
                // SAFETY: each tid writes a distinct slot.
                unsafe { slots.write(tid, f(tid)) };
            });
        }
        out
    }

    /// Fills `out[tid] = f(tid)` for `tid in 0..out.len()` in parallel.
    pub fn fill<T, F>(&self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let n = out.len();
        let slots = SliceCells::new(out);
        self.launch(n, |tid| {
            // SAFETY: each tid writes a distinct slot.
            unsafe { slots.write(tid, f(tid)) };
        });
    }

    /// Parallel reduction: maps every id through `f` and folds the results
    /// with the associative operation `op` (identity `init`).
    pub fn reduce<T, F, O>(&self, n: usize, init: T, f: F, op: O) -> T
    where
        T: Send + Clone,
        F: Fn(usize) -> T + Sync,
        O: Fn(T, T) -> T + Sync + Send,
    {
        if n == 0 {
            return init;
        }
        let workers = self.num_threads.min(n);
        self.record(n);
        if workers == 1 {
            let mut acc = init;
            for tid in 0..n {
                acc = op(acc, f(tid));
            }
            return acc;
        }
        let chunk = n.div_ceil(workers);
        let partials = Mutex::new(Vec::with_capacity(workers));
        crossbeam::scope(|scope| {
            for w in 0..workers {
                let f = &f;
                let op = &op;
                let init = init.clone();
                let partials = &partials;
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                scope.spawn(move |_| {
                    let mut acc = init;
                    for tid in lo..hi {
                        acc = op(acc, f(tid));
                    }
                    partials.lock().push(acc);
                });
            }
        })
        .expect("executor worker panicked");
        partials
            .into_inner()
            .into_iter()
            .fold(init, op)
    }
}

/// A shared view of a mutable slice allowing disjoint per-index access from
/// parallel kernels — the moral equivalent of a device buffer handed to a
/// GPU kernel.
///
/// ```
/// use parsweep_par::{Executor, SharedSlice};
/// let exec = Executor::with_threads(2);
/// let mut buf = vec![0u64; 16];
/// {
///     let cells = SharedSlice::new(&mut buf);
///     exec.launch(16, |tid| unsafe { cells.write(tid, tid as u64 * 3) });
/// }
/// assert_eq!(buf[5], 15);
/// ```
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline is enforced by callers (each thread id touches
// a distinct index when writing), matching how GPU kernels use buffers.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for shared use inside kernels.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` at `index`, dropping the old value.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds, no other access to `index` may happen
    /// concurrently.
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.len);
        *self.ptr.add(index) = value;
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and no concurrent write to `index` may
    /// happen. Reading a value written earlier in the *same* launch is only
    /// safe if the writer ordered before this read (e.g. same thread), as
    /// on a GPU.
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.len);
        *self.ptr.add(index)
    }

    /// Returns a raw pointer to the element at `index`, for non-`Copy`
    /// element access. Dereferencing is subject to the same discipline as
    /// [`SharedSlice::read`]/[`SharedSlice::write`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn as_ptr_at(&self, index: usize) -> *mut T {
        assert!(index < self.len, "index out of bounds");
        // SAFETY: index is in bounds of the borrowed slice.
        unsafe { self.ptr.add(index) }
    }
}

use SharedSlice as SliceCells;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn launch_covers_all_ids_once() {
        let exec = Executor::with_threads(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        exec.launch(100, |tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn launch_zero_is_noop() {
        let exec = Executor::with_threads(2);
        exec.launch(0, |_| panic!("must not run"));
        assert_eq!(exec.stats().launches, 0);
    }

    #[test]
    fn map_preserves_order() {
        let exec = Executor::with_threads(3);
        let v = exec.map(17, |i| i * 2);
        assert_eq!(v, (0..17).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fill_writes_every_slot() {
        let exec = Executor::with_threads(2);
        let mut buf = vec![0usize; 31];
        exec.fill(&mut buf, |i| i + 1);
        assert!(buf.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn reduce_sums() {
        let exec = Executor::with_threads(4);
        let total = exec.reduce(1000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn reduce_empty_is_identity() {
        let exec = Executor::with_threads(4);
        assert_eq!(exec.reduce(0, 7u64, |_| 1, |a, b| a + b), 7);
    }

    #[test]
    fn stats_accumulate() {
        let exec = Executor::with_threads(2);
        exec.launch(10, |_| {});
        exec.launch(5, |_| {});
        let s = exec.stats();
        assert_eq!(s.launches, 2);
        assert_eq!(s.total_threads, 15);
        assert_eq!(s.widest, 10);
        exec.reset_stats();
        assert_eq!(exec.stats(), LaunchStats::default());
    }

    #[test]
    fn modeled_time_bounds() {
        let s = LaunchStats {
            launches: 4,
            total_threads: 4000,
            widest: 1000,
        };
        assert_eq!(s.modeled_time(1), 4000);
        assert_eq!(s.modeled_time(1000), 4);
        assert!(s.max_speedup() > 999.0);
    }

    #[test]
    fn single_thread_executor_is_sequential_and_correct() {
        let exec = Executor::with_threads(1);
        let v = exec.map(8, |i| i);
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }
}

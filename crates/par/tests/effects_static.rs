//! Adversarial suite for the static effect checker: every hazard class
//! the dynamic sanitizer detects must be flagged statically from
//! declarations alone, clean declared graphs must verify with zero
//! false positives and replay unsanitized, and cross-check mode must
//! catch declarations that under-approximate the kernel's real accesses.

use parsweep_par::{
    ConflictKind, Effect, EffectTable, Executor, KernelGraphBuilder, Pattern, SanitizerConfig,
    StaticHazard,
};

fn lenient() -> SanitizerConfig {
    SanitizerConfig {
        fail_fast: false,
        ..SanitizerConfig::default()
    }
}

fn cross_check() -> SanitizerConfig {
    SanitizerConfig {
        fail_fast: false,
        check_declared: true,
        ..SanitizerConfig::default()
    }
}

/// Write-write: stride 2, span 4 — neighbors collide. The static
/// checker flags it from the declaration; the dynamic sanitizer flags
/// the same class when the undeclared twin actually runs.
#[test]
fn write_write_flagged_statically_and_dynamically() {
    let table = EffectTable::new();
    let buf = table.buffer("ww.buf", 64);
    let mut g = KernelGraphBuilder::<()>::new().with_table(&table);
    g.kernel_declared(
        "ww",
        &[],
        |_| 8,
        8,
        vec![Effect::write(
            buf,
            Pattern::Affine {
                base: 0,
                stride: 2,
                span: 4,
            },
        )],
        |_, _| {},
    );
    let hazards = g.try_build().map(|_| ()).unwrap_err();
    assert!(
        hazards
            .iter()
            .any(|h| matches!(h, StaticHazard::WriteWrite { .. })),
        "{hazards:?}"
    );

    // Dynamic twin: same access pattern, no declarations.
    let exec = Executor::with_sanitizer_config(2, lenient());
    let mut data = vec![0u32; 64];
    {
        let cells = exec.bind("ww.buf", &mut data);
        exec.launch_labeled("ww", 8, |tid| {
            for k in 0..4 {
                // SAFETY: intentionally racy (stride < span); sanitized
                // launches are serialized, so the race is only logged.
                unsafe { cells.write(tid, tid * 2 + k, 1) };
            }
        });
    }
    assert!(
        exec.take_reports()
            .iter()
            .any(|r| matches!(r.kind, ConflictKind::WriteWrite { .. })),
        "dynamic sanitizer must agree with the static verdict"
    );
}

/// Read-write: thread t reads slot t while thread t+1 writes it.
#[test]
fn read_write_flagged_statically_and_dynamically() {
    let table = EffectTable::new();
    let buf = table.buffer("rw.buf", 64);
    let mut g = KernelGraphBuilder::<()>::new().with_table(&table);
    g.kernel_declared(
        "rw",
        &[],
        |_| 8,
        8,
        vec![
            Effect::read(
                buf,
                Pattern::Affine {
                    base: 0,
                    stride: 1,
                    span: 1,
                },
            ),
            Effect::write(
                buf,
                Pattern::Affine {
                    base: 1,
                    stride: 1,
                    span: 1,
                },
            ),
        ],
        |_, _| {},
    );
    let hazards = g.try_build().map(|_| ()).unwrap_err();
    assert!(
        hazards
            .iter()
            .any(|h| matches!(h, StaticHazard::ReadWrite { .. })),
        "{hazards:?}"
    );

    let exec = Executor::with_sanitizer_config(2, lenient());
    let mut data = vec![0u32; 64];
    {
        let cells = exec.bind("rw.buf", &mut data);
        exec.launch_labeled("rw", 8, |tid| {
            // SAFETY: intentionally hazardous (read of a slot another
            // tid writes in the same launch); serialized when sanitized.
            unsafe {
                let _ = cells.read(tid, tid);
                cells.write(tid, tid + 1, 1);
            }
        });
    }
    assert!(
        exec.take_reports()
            .iter()
            .any(|r| matches!(r.kind, ConflictKind::ReadWrite { .. })),
        "dynamic sanitizer must agree with the static verdict"
    );
}

/// Static OOB: the declared footprint's tail extends past the buffer.
#[test]
fn out_of_bounds_flagged_statically_and_dynamically() {
    let table = EffectTable::new();
    let buf = table.buffer("oob.buf", 10);
    let mut g = KernelGraphBuilder::<()>::new().with_table(&table);
    g.kernel_declared(
        "oob",
        &[],
        |_| 4,
        4,
        // Thread 3 needs slots 9..12: past len 10.
        vec![Effect::write(
            buf,
            Pattern::Affine {
                base: 0,
                stride: 3,
                span: 3,
            },
        )],
        |_, _| {},
    );
    let hazards = g.try_build().map(|_| ()).unwrap_err();
    assert!(
        hazards.iter().any(|h| matches!(
            h,
            StaticHazard::OutOfBounds {
                needed: 12,
                len: 10,
                ..
            }
        )),
        "{hazards:?}"
    );

    let exec = Executor::with_sanitizer_config(2, lenient());
    let mut data = vec![0u32; 10];
    {
        let cells = exec.bind("oob.buf", &mut data);
        exec.launch_labeled("oob", 4, |tid| {
            for k in 0..3 {
                // SAFETY: deliberately runs past the buffer for tid 3;
                // the sanitizer reports and suppresses the OOB writes.
                unsafe { cells.write(tid, tid * 3 + k, 1) };
            }
        });
    }
    assert!(
        exec.take_reports()
            .iter()
            .any(|r| matches!(r.kind, ConflictKind::OutOfBounds { .. })),
        "dynamic sanitizer must agree with the static verdict"
    );
}

/// Stream race: two same-depth graph nodes (one unordered epoch) with
/// overlapping write footprints. Statically an UnorderedConflict; the
/// dynamic analogue on undeclared streams is a StreamRace.
#[test]
fn unordered_conflict_flagged_statically_and_dynamically() {
    let table = EffectTable::new();
    let buf = table.buffer("race.buf", 64);
    let mut g = KernelGraphBuilder::<()>::new().with_table(&table);
    let own = Pattern::Affine {
        base: 0,
        stride: 1,
        span: 1,
    };
    g.kernel_declared(
        "left",
        &[],
        |_| 8,
        8,
        vec![Effect::write(buf, own)],
        |_, _| {},
    );
    g.kernel_declared(
        "right",
        &[],
        |_| 8,
        8,
        vec![Effect::write(buf, own)],
        |_, _| {},
    );
    let hazards = g.try_build().map(|_| ()).unwrap_err();
    assert!(
        hazards
            .iter()
            .any(|h| matches!(h, StaticHazard::UnorderedConflict { .. })),
        "{hazards:?}"
    );

    let exec = Executor::with_sanitizer_config(2, lenient());
    let mut data = vec![0u32; 64];
    {
        let cells = exec.bind("race.buf", &mut data);
        let mut s1 = exec.stream();
        let mut s2 = exec.stream();
        s1.launch_labeled("left", 8, |tid| {
            // SAFETY: the two unordered streams write the same slots on
            // purpose; sanitized epochs serialize, so the race is logged.
            unsafe { cells.write(tid, tid, 1) };
        });
        s2.launch_labeled("right", 8, |tid| {
            // SAFETY: intentionally racing `left` (same slots, no edge).
            unsafe { cells.write(tid, tid, 2) };
        });
        exec.join(&mut [&mut s1, &mut s2]);
    }
    assert!(
        exec.take_reports()
            .iter()
            .any(|r| matches!(r.kind, ConflictKind::StreamRace { .. })),
        "dynamic sanitizer must agree with the static verdict"
    );
}

/// Use-after-release is static-only: the dynamic sanitizer has no lease
/// model, but the builder flags a declared use at or past the buffer's
/// declared release depth.
#[test]
fn use_after_release_flagged_at_build() {
    let table = EffectTable::new();
    let buf = table.buffer("leased.buf", 16);
    let own = Pattern::Affine {
        base: 0,
        stride: 1,
        span: 1,
    };
    let mut g = KernelGraphBuilder::<()>::new().with_table(&table);
    let producer = g.kernel_declared(
        "produce",
        &[],
        |_| 16,
        16,
        vec![Effect::write(buf, own)],
        |_, _| {},
    );
    g.release(buf, &[producer]);
    g.kernel_declared(
        "late-read",
        &[producer],
        |_| 16,
        16,
        vec![Effect::read(buf, own)],
        |_, _| {},
    );
    let hazards = g.try_build().map(|_| ()).unwrap_err();
    assert!(
        hazards.iter().any(
            |h| matches!(h, StaticHazard::UseAfterRelease { kernel, .. } if kernel == "late-read")
        ),
        "{hazards:?}"
    );

    // Releasing after the reader instead is clean.
    let table = EffectTable::new();
    let buf = table.buffer("leased.buf", 16);
    let mut g = KernelGraphBuilder::<()>::new().with_table(&table);
    let producer = g.kernel_declared(
        "produce",
        &[],
        |_| 16,
        16,
        vec![Effect::write(buf, own)],
        |_, _| {},
    );
    let reader = g.kernel_declared(
        "read",
        &[producer],
        |_| 16,
        16,
        vec![Effect::read(buf, own)],
        |_, _| {},
    );
    g.release(buf, &[reader]);
    assert!(g.try_build().is_ok());
}

/// A clean declared graph verifies, produces correct results on a
/// sanitizing executor *without* any dynamic reports, and counts its
/// replays and launches as statically verified.
#[test]
fn verified_graph_replays_unsanitized_with_correct_results() {
    const N: usize = 512;
    struct Round<'a> {
        cells: &'a parsweep_par::DeviceSlice<'a, u64>,
    }
    // The graph's context type borrows the bound cells, so the graph is
    // built (and dropped) inside the binding scope, once per executor.
    fn run(exec: &Executor, replays: usize) -> Vec<u64> {
        let table = EffectTable::new();
        let buf = table.buffer("pipeline.buf", N);
        let own = Pattern::Affine {
            base: 0,
            stride: 1,
            span: 1,
        };
        let mut data = vec![0u64; N];
        {
            let cells = exec.bind_table(&table, buf, &mut data);
            let mut g = KernelGraphBuilder::<Round>::new().with_table(&table);
            let fill = g.kernel_declared(
                "fill",
                &[],
                |_: &Round| N,
                N,
                vec![Effect::write(buf, own)],
                |tid, r: &Round| {
                    // SAFETY: each tid writes its own slot (statically proven).
                    unsafe { r.cells.write(tid, tid, tid as u64) };
                },
            );
            g.kernel_declared(
                "double",
                &[fill],
                |_: &Round| N,
                N,
                vec![Effect::read(buf, own), Effect::write(buf, own)],
                |tid, r: &Round| {
                    // SAFETY: each tid reads and writes only its own slot.
                    unsafe {
                        let v = r.cells.read(tid, tid);
                        r.cells.write(tid, tid, v * 2);
                    }
                },
            );
            let graph = g.build();
            assert!(graph.verified());
            for _ in 0..replays {
                graph.replay(exec, &Round { cells: &cells });
            }
        }
        data
    }

    let exec = Executor::with_sanitizer(2);
    let data = run(&exec, 2);
    assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
    assert!(
        exec.take_reports().is_empty(),
        "verified replay must not sanitize"
    );
    // Ambient PARSWEEP_SANITIZE=all forces cross-check mode, where
    // declared launches deliberately run sanitized instead.
    if !exec.cross_checking() {
        let stats = exec.stats();
        assert_eq!(stats.static_verified_replays, 2);
        assert_eq!(stats.static_verified_launches, 4);
    }

    // Cross-check mode: same graph runs under the dynamic sanitizer,
    // declarations cover every access, so it stays clean — and the
    // replays no longer count as verified fast-path replays.
    let exec = Executor::with_sanitizer_config(2, cross_check());
    let data = run(&exec, 1);
    assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
    assert!(
        exec.take_reports().is_empty(),
        "declarations must cover all accesses"
    );
    assert_eq!(exec.stats().static_verified_replays, 0);
}

/// Replaying a declared node wider than its verified maximum is a
/// contract violation and must fail loudly, not race silently.
#[test]
#[should_panic(expected = "beyond its statically verified maximum")]
fn replay_wider_than_max_width_panics() {
    let table = EffectTable::new();
    let buf = table.buffer("narrow.buf", 64);
    let mut g = KernelGraphBuilder::<usize>::new().with_table(&table);
    g.kernel_declared(
        "grower",
        &[],
        |&n: &usize| n,
        8,
        vec![Effect::write(
            buf,
            Pattern::Affine {
                base: 0,
                stride: 1,
                span: 1,
            },
        )],
        |_, _| {},
    );
    let graph = g.build();
    let exec = Executor::with_threads(2);
    graph.replay(&exec, &16); // width 16 > verified max 8
}

/// Cross-check catches a declaration that under-approximates: the
/// kernel touches an in-bounds slot its effects never declared. A
/// plain sanitizing executor would have skipped the launch entirely
/// (fast path) — exactly the hole cross-check mode exists to audit.
#[test]
fn cross_check_flags_undeclared_access() {
    let table = EffectTable::new();
    let buf = table.buffer("sneaky.buf", 64);
    let run = |config: SanitizerConfig| {
        let exec = Executor::with_sanitizer_config(2, config);
        let mut data = vec![0u64; 64];
        {
            let cells = exec.bind_table(&table, buf, &mut data);
            let cells = &cells;
            exec.launch_declared(
                &table,
                "sneaky",
                4,
                // Declares only slots 0..4, but also pokes slot 60.
                &[Effect::write(
                    buf,
                    Pattern::Affine {
                        base: 0,
                        stride: 1,
                        span: 1,
                    },
                )],
                move |tid| {
                    // SAFETY: in-bounds; disjoint per tid (tid and 60+tid).
                    unsafe {
                        cells.write(tid, tid, 1);
                        cells.write(tid, 60 - tid, 2);
                    }
                },
            );
        }
        (exec.take_reports(), exec.cross_checking())
    };
    let (audited, _) = run(cross_check());
    assert!(
        audited
            .iter()
            .any(|r| matches!(r.kind, ConflictKind::UndeclaredAccess { .. })),
        "{audited:?}"
    );
    // Without cross-check the verified fast path runs raw: no reports —
    // demonstrating why the audit mode exists. Ambient
    // PARSWEEP_SANITIZE=all forces cross-check even here, so only
    // assert silence when the executor really took the fast path.
    let (silent, crossed) = run(lenient());
    if !crossed {
        assert!(silent.is_empty(), "{silent:?}");
    }
}

/// Stream-level static checking: queue-time intra-launch hazards panic
/// immediately; drain-time cross-stream conflicts panic at the join.
#[test]
#[should_panic(expected = "static effect check failed")]
fn stream_launch_declared_panics_on_intra_launch_hazard() {
    let table = EffectTable::new();
    let buf = table.buffer("s.buf", 8);
    let exec = Executor::with_threads(2);
    let mut s = exec.stream();
    s.launch_declared(
        &table,
        "bad",
        4,
        &[Effect::write(
            buf,
            Pattern::Affine {
                base: 0,
                stride: 0,
                span: 1,
            },
        )],
        |_| {},
    );
}

#[test]
#[should_panic(expected = "static effect check failed for join epoch")]
fn join_panics_on_cross_stream_declared_conflict() {
    let table = EffectTable::new();
    let buf = table.buffer("j.buf", 32);
    let own = Pattern::Affine {
        base: 0,
        stride: 1,
        span: 1,
    };
    let exec = Executor::with_threads(2);
    let mut data = vec![0u64; 32];
    let cells = exec.bind_table(&table, buf, &mut data);
    let cells = &cells;
    let mut s1 = exec.stream();
    let mut s2 = exec.stream();
    s1.launch_declared(&table, "a", 8, &[Effect::write(buf, own)], move |tid| {
        // SAFETY: never runs — the drain-time static check fires first.
        unsafe { cells.write(tid, tid, 1) };
    });
    s2.launch_declared(&table, "b", 8, &[Effect::write(buf, own)], move |tid| {
        // SAFETY: never runs — the drain-time static check fires first.
        unsafe { cells.write(tid, tid, 2) };
    });
    exec.join(&mut [&mut s1, &mut s2]);
}

/// A clean multi-stream declared epoch runs the fast path on a
/// sanitizing executor and counts its launches.
#[test]
fn clean_declared_epoch_skips_sanitizer_and_counts() {
    let table = EffectTable::new();
    let a = table.buffer("epoch.a", 128);
    let b = table.buffer("epoch.b", 128);
    let own = Pattern::Affine {
        base: 0,
        stride: 1,
        span: 1,
    };
    let exec = Executor::with_sanitizer(2);
    let mut da = vec![0u64; 128];
    let mut db = vec![0u64; 128];
    {
        let ca = exec.bind_table(&table, a, &mut da);
        let ca = &ca;
        let cb = exec.bind_table(&table, b, &mut db);
        let cb = &cb;
        let mut s1 = exec.stream();
        let mut s2 = exec.stream();
        s1.launch_declared(
            &table,
            "fill-a",
            128,
            &[Effect::write(a, own)],
            move |tid| {
                // SAFETY: each tid writes its own slot of its own buffer.
                unsafe { ca.write(tid, tid, 1) };
            },
        );
        s2.launch_declared(
            &table,
            "fill-b",
            128,
            &[Effect::write(b, own)],
            move |tid| {
                // SAFETY: each tid writes its own slot of its own buffer.
                unsafe { cb.write(tid, tid, 2) };
            },
        );
        exec.join(&mut [&mut s1, &mut s2]);
    }
    assert!(da.iter().all(|&v| v == 1) && db.iter().all(|&v| v == 2));
    assert!(exec.take_reports().is_empty());
    // Ambient PARSWEEP_SANITIZE=all forces cross-check mode, where
    // declared launches deliberately run sanitized instead.
    if !exec.cross_checking() {
        assert_eq!(exec.stats().static_verified_launches, 2);
    }
}

/// Atomics commute with each other but conflict with plain accesses.
#[test]
fn atomic_reductions_are_clean_but_conflict_with_plain_writes() {
    let table = EffectTable::new();
    let buf = table.buffer("acc.buf", 4);
    let all_one = Pattern::Affine {
        base: 0,
        stride: 0,
        span: 1,
    };
    let mut g = KernelGraphBuilder::<()>::new().with_table(&table);
    g.kernel_declared(
        "acc1",
        &[],
        |_| 8,
        8,
        vec![Effect::atomic(buf, all_one)],
        |_, _| {},
    );
    g.kernel_declared(
        "acc2",
        &[],
        |_| 8,
        8,
        vec![Effect::atomic(buf, all_one)],
        |_, _| {},
    );
    assert!(g.try_build().is_ok(), "atomic-atomic must commute");

    let mut g = KernelGraphBuilder::<()>::new().with_table(&table);
    g.kernel_declared(
        "acc",
        &[],
        |_| 8,
        8,
        vec![Effect::atomic(buf, all_one)],
        |_, _| {},
    );
    g.kernel_declared(
        "plain",
        &[],
        |_| 8,
        8,
        vec![Effect::write(buf, all_one)],
        |_, _| {},
    );
    assert!(
        g.try_build().is_err(),
        "atomic vs plain write must conflict"
    );
}

//! Property tests for the kernel sanitizer: deliberately racy kernels are
//! always flagged, disciplined kernels never are.

use parsweep_par::{ConflictKind, Executor, SanitizerConfig};
use proptest::prelude::*;

fn inspecting_executor() -> Executor {
    Executor::with_sanitizer_config(
        2,
        SanitizerConfig {
            fail_fast: false,
            ..SanitizerConfig::default()
        },
    )
}

proptest! {
    /// Every kernel where two (or more) tids write the same slot is
    /// reported as a write-write hazard naming the kernel and two
    /// distinct tids.
    #[test]
    fn racy_kernel_is_flagged(n in 2usize..40, slot in 0usize..8) {
        let exec = inspecting_executor();
        let mut buf = vec![0usize; 8];
        {
            let cells = exec.bind("shared", &mut buf);
            exec.launch_labeled("all-write-one-slot", n, |tid| {
                // SAFETY: intentionally racy (every tid writes `slot`);
                // sanitized launches are serialized, so the hazard is
                // logged rather than physically exercised.
                unsafe { cells.write(tid, slot, tid) };
            });
        }
        let reports = exec.take_reports();
        prop_assert_eq!(reports.len(), 1);
        let r = &reports[0];
        prop_assert_eq!(r.kernel.as_str(), "all-write-one-slot");
        prop_assert_eq!(r.buffer.as_str(), "shared");
        prop_assert_eq!(r.index, slot);
        prop_assert!(matches!(r.kind, ConflictKind::WriteWrite { .. }));
        let (a, b) = r.conflicting_tids().expect("write-write hazards carry tids");
        prop_assert_ne!(a, b);
        prop_assert!(a < n && b < n);
    }

    /// A kernel whose tids write disjoint slots (any offset permutation)
    /// is never flagged, and the data lands where it was written.
    #[test]
    fn disjoint_kernel_is_clean(n in 1usize..64, offset in 0usize..64) {
        let exec = inspecting_executor();
        let mut buf = vec![0usize; n];
        {
            let cells = exec.bind("shared", &mut buf);
            exec.launch_labeled("rotate-write", n, |tid| {
                // SAFETY: (tid + offset) % n is a bijection on 0..n, so
                // every tid writes its own distinct slot.
                unsafe { cells.write(tid, (tid + offset) % n, tid) };
            });
        }
        prop_assert!(exec.take_reports().is_empty());
        for (i, &v) in buf.iter().enumerate() {
            prop_assert_eq!((v + offset) % n, i);
        }
    }

    /// Reading a slot written by a different tid in the same launch is a
    /// read-write hazard; reading data from a *previous* launch is not.
    #[test]
    fn same_launch_read_write_is_flagged(n in 2usize..32) {
        let exec = inspecting_executor();
        let mut buf = vec![0usize; n];
        {
            let cells = exec.bind("shared", &mut buf);
            exec.launch_labeled("produce", n, |tid| {
                // SAFETY: disjoint per-tid writes.
                unsafe { cells.write(tid, tid, tid * 2) };
            });
            // Cross-launch reads are ordered by the launch barrier: clean.
            exec.launch_labeled("consume-prior", n, |tid| {
                // SAFETY: slot written in a previous launch, read-only now.
                let v = unsafe { cells.read(tid, (tid + 1) % n) };
                assert_eq!(v, ((tid + 1) % n) * 2);
            });
        }
        assert!(exec.take_reports().is_empty());

        // Same-launch cross-tid read of a written slot: flagged.
        let mut buf2 = vec![0usize; n];
        {
            let cells = exec.bind("shared2", &mut buf2);
            exec.launch_labeled("read-your-neighbour", n, |tid| {
                // SAFETY: intentionally hazardous; serialized under the
                // sanitizer.
                unsafe {
                    cells.write(tid, tid, tid);
                    let _ = cells.read(tid, (tid + 1) % n);
                }
            });
        }
        let reports = exec.take_reports();
        prop_assert!(!reports.is_empty());
        prop_assert!(reports
            .iter()
            .all(|r| matches!(r.kind, ConflictKind::ReadWrite { .. })));
    }
}

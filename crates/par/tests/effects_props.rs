//! Property tests relating the static effect checker to the dynamic
//! sanitizer.
//!
//! For randomly generated affine launch declarations, a mirror kernel
//! performs exactly the declared accesses on a sanitizing executor. The
//! static hazard classes must then be a superset of the dynamic ones
//! (the static checker never clips footprints to the buffer, so it sees
//! at least everything the run exhibits), with exact class-set equality
//! whenever the declaration has no static out-of-bounds (then every
//! declared access really executes). Statically clean declarations must
//! additionally survive cross-check mode with zero reports: the
//! declared footprints cover every access the kernel performs.

use proptest::prelude::*;

use parsweep_par::{
    ConflictKind, Effect, EffectTable, Executor, Pattern, SanitizerConfig, StaticHazard,
};

/// One randomly generated effect: kind + affine per-tid footprint.
#[derive(Clone, Copy, Debug)]
struct GenEffect {
    write: bool,
    base: usize,
    stride: usize,
    span: usize,
}

#[derive(Clone, Debug)]
struct GenLaunch {
    len: usize,
    width: usize,
    effects: Vec<GenEffect>,
}

fn arb_effect() -> impl Strategy<Value = GenEffect> {
    (any::<bool>(), 0usize..6, 0usize..4, 1usize..4).prop_map(|(write, base, stride, span)| {
        GenEffect {
            write,
            base,
            stride,
            span,
        }
    })
}

fn arb_launch() -> impl Strategy<Value = GenLaunch> {
    (
        4usize..32,
        1usize..6,
        proptest::collection::vec(arb_effect(), 1..4),
    )
        .prop_map(|(len, width, effects)| GenLaunch {
            len,
            width,
            effects,
        })
}

/// Normalized hazard classes shared by the two checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Class {
    Ww,
    Rw,
    Oob,
}

fn static_classes(spec: &GenLaunch) -> (Vec<StaticHazard>, Vec<Class>) {
    let table = EffectTable::new();
    let buf = table.buffer("prop.buf", spec.len);
    let effects: Vec<Effect> = spec
        .effects
        .iter()
        .map(|e| {
            let p = Pattern::Affine {
                base: e.base,
                stride: e.stride,
                span: e.span,
            };
            if e.write {
                Effect::write(buf, p)
            } else {
                Effect::read(buf, p)
            }
        })
        .collect();
    let mut g = parsweep_par::KernelGraphBuilder::<()>::new().with_table(&table);
    let width = spec.width;
    g.kernel_declared("prop", &[], move |_| width, width, effects, |_, _| {});
    let hazards = match g.try_build() {
        Ok(_) => Vec::new(),
        Err(h) => h,
    };
    let mut classes: Vec<Class> = hazards
        .iter()
        .filter_map(|h| match h {
            StaticHazard::WriteWrite { .. } => Some(Class::Ww),
            StaticHazard::ReadWrite { .. } => Some(Class::Rw),
            StaticHazard::OutOfBounds { .. } => Some(Class::Oob),
            _ => None,
        })
        .collect();
    classes.sort();
    classes.dedup();
    (hazards, classes)
}

/// Runs the undeclared mirror kernel — it performs exactly the declared
/// accesses — under the dynamic sanitizer and collects hazard classes.
/// Reads are clamped to the buffer (`record_read` panics on OOB); writes
/// run unclamped because the sanitizer reports and suppresses them.
fn dynamic_classes(spec: &GenLaunch) -> Vec<Class> {
    let exec = Executor::with_sanitizer_config(
        2,
        SanitizerConfig {
            fail_fast: false,
            max_reports: 4096,
            ..SanitizerConfig::default()
        },
    );
    let mut data = vec![0u64; spec.len];
    {
        let cells = exec.bind("prop.buf", &mut data);
        let cells = &cells;
        let effects = &spec.effects;
        let len = spec.len;
        exec.launch_labeled("prop", spec.width, move |tid| {
            for e in effects {
                for k in 0..e.span {
                    let index = e.base + tid * e.stride + k;
                    // SAFETY: the whole point — replays the declared
                    // (possibly hazardous) accesses under the sanitizer,
                    // which serializes tids and suppresses OOB writes.
                    unsafe {
                        if e.write {
                            cells.write(tid, index, 1);
                        } else if index < len {
                            let _ = cells.read(tid, index);
                        }
                    }
                }
            }
        });
    }
    let mut classes: Vec<Class> = exec
        .take_reports()
        .iter()
        .filter_map(|r| match r.kind {
            ConflictKind::WriteWrite { .. } => Some(Class::Ww),
            ConflictKind::ReadWrite { .. } => Some(Class::Rw),
            ConflictKind::OutOfBounds { .. } => Some(Class::Oob),
            _ => None,
        })
        .collect();
    classes.sort();
    classes.dedup();
    classes
}

/// Replays the declaration through the verified path on a cross-check
/// executor: every access must be covered, so zero reports.
fn cross_check_reports(spec: &GenLaunch) -> usize {
    let exec = Executor::with_sanitizer_config(
        2,
        SanitizerConfig {
            fail_fast: false,
            max_reports: 4096,
            check_declared: true,
        },
    );
    let table = EffectTable::new();
    let buf = table.buffer("prop.buf", spec.len);
    let effects: Vec<Effect> = spec
        .effects
        .iter()
        .map(|e| {
            let p = Pattern::Affine {
                base: e.base,
                stride: e.stride,
                span: e.span,
            };
            if e.write {
                Effect::write(buf, p)
            } else {
                Effect::read(buf, p)
            }
        })
        .collect();
    let mut data = vec![0u64; spec.len];
    {
        let cells = exec.bind_table(&table, buf, &mut data);
        let cells = &cells;
        let specs = &spec.effects;
        exec.launch_declared(&table, "prop", spec.width, &effects, move |tid| {
            for e in specs {
                for k in 0..e.span {
                    let index = e.base + tid * e.stride + k;
                    // SAFETY: statically verified clean and in-bounds.
                    unsafe {
                        if e.write {
                            cells.write(tid, index, 1);
                        } else {
                            let _ = cells.read(tid, index);
                        }
                    }
                }
            }
        });
    }
    exec.take_reports().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Static hazard classes ⊇ dynamic hazard classes, with equality
    /// when the declaration is statically in-bounds.
    #[test]
    fn static_checker_covers_dynamic_sanitizer(spec in arb_launch()) {
        let (hazards, s) = static_classes(&spec);
        let d = dynamic_classes(&spec);
        for c in &d {
            prop_assert!(
                s.contains(c),
                "dynamic {c:?} missing statically; spec {spec:?}, static {hazards:?}"
            );
        }
        let static_oob = s.contains(&Class::Oob);
        if !static_oob {
            prop_assert_eq!(
                &s, &d,
                "in-bounds declaration must agree exactly; spec {:?}, static {:?}",
                spec, hazards
            );
        }
        // Statically clean ⇒ the declared footprints cover every access
        // the mirror performs: cross-check mode stays silent.
        if hazards.is_empty() {
            prop_assert_eq!(cross_check_reports(&spec), 0);
        }
    }

    /// Disjoint-by-construction launches never produce a report from
    /// either checker: zero false positives.
    #[test]
    fn clean_launches_have_no_false_positives(
        base in 0usize..8,
        span in 1usize..4,
        extra in 0usize..3,
        width in 1usize..6,
        with_read in any::<bool>(),
    ) {
        let stride = span + extra; // stride ≥ span ⇒ tids are disjoint
        let len = base + stride * width + span;
        let table = EffectTable::new();
        let buf = table.buffer("clean.buf", len);
        let p = Pattern::Affine { base, stride, span };
        let mut effects = vec![Effect::write(buf, p)];
        if with_read {
            // Reading your own slots is clean (diagonal excluded).
            effects.push(Effect::read(buf, p));
        }
        let exec = Executor::with_sanitizer_config(
            2,
            SanitizerConfig { fail_fast: true, check_declared: true, ..SanitizerConfig::default() },
        );
        let mut data = vec![0u64; len];
        {
            let cells = exec.bind_table(&table, buf, &mut data);
            let cells = &cells;
            // Panics on any static hazard (false positive) and, via
            // fail_fast cross-check, on any uncovered dynamic access.
            exec.launch_declared(&table, "clean", width, &effects, move |tid| {
                for k in 0..span {
                    // SAFETY: stride ≥ span makes per-tid slots disjoint.
                    unsafe {
                        if with_read {
                            let _ = cells.read(tid, base + tid * stride + k);
                        }
                        cells.write(tid, base + tid * stride + k, 1);
                    }
                }
            });
        }
        prop_assert_eq!(exec.take_reports().len(), 0);
    }
}

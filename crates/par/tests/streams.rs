//! Behavior of the device runtime: stream overlap in the cost model,
//! stream-ordering awareness in the sanitizer, and arena-backed buffers
//! feeding kernels.

use parsweep_par::{ConflictKind, Executor, SanitizerConfig};

fn inspecting_executor() -> Executor {
    Executor::with_sanitizer_config(
        2,
        SanitizerConfig {
            fail_fast: false,
            ..SanitizerConfig::default()
        },
    )
}

#[test]
fn joined_streams_model_cheaper_than_serialized() {
    let exec = Executor::with_threads(2);
    let mut s1 = exec.stream();
    let mut s2 = exec.stream();
    s1.launch_labeled("left", 1000, |_| {});
    s2.launch_labeled("right", 1000, |_| {});
    exec.join(&mut [&mut s1, &mut s2]);
    let s = exec.stats();
    assert_eq!(s.launches, 2);
    assert_eq!(s.total_threads, 2000);
    // Serialized: ceil(1000/64) * 2 = 32. Overlapped: only the heavier
    // stream is on the critical path = 16.
    assert_eq!(s.serialized_time(64), 32);
    assert_eq!(s.modeled_time(64), 16);
    assert!(
        s.modeled_time(64) < s.serialized_time(64),
        "two-stream workload must model strictly cheaper than its serialized sum"
    );
}

#[test]
fn eager_launches_keep_modeled_equal_to_serialized() {
    let exec = Executor::with_threads(2);
    exec.launch(1000, |_| {});
    exec.launch(8, |_| {});
    let s = exec.stats();
    assert_eq!(s.modeled_time(64), s.serialized_time(64));
    assert_eq!(s.modeled_time(64), 17);
}

#[test]
fn single_stream_sync_is_fully_critical() {
    let exec = Executor::with_threads(4);
    let mut s = exec.stream();
    s.launch(100, |_| {});
    s.launch(100, |_| {});
    s.sync();
    let stats = exec.stats();
    assert_eq!(stats.total_launches(), 2);
    // One stream is an ordered chain: nothing overlaps.
    assert_eq!(stats.modeled_time(64), stats.serialized_time(64));
}

#[test]
fn stream_launches_run_in_queue_order_and_see_prior_writes() {
    let exec = Executor::with_threads(4);
    let mut buf = vec![0u64; 256];
    {
        let cells = exec.bind("buf", &mut buf);
        let mut s = exec.stream();
        let cref = &cells;
        // SAFETY: each tid writes its own slot.
        s.launch_labeled("produce", 256, move |tid| unsafe {
            cref.write(tid, tid, tid as u64)
        });
        // SAFETY: reads slots written by the previous launch on the same
        // stream (ordered), then writes its own slot.
        s.launch_labeled("double", 256, move |tid| unsafe {
            let v = cref.read(tid, tid);
            cref.write(tid, tid, v * 2);
        });
        s.sync();
    }
    assert!(buf.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
}

#[test]
fn dropped_stream_syncs_its_queue() {
    let exec = Executor::with_threads(2);
    let mut buf = vec![0u32; 16];
    {
        let cells = exec.bind("buf", &mut buf);
        let mut s = exec.stream();
        let cref = &cells;
        // SAFETY: each tid writes its own slot.
        s.launch(16, move |tid| unsafe { cref.write(tid, tid, 7) });
        // No explicit sync: dropping the stream completes its work.
    }
    assert!(buf.iter().all(|&v| v == 7));
    assert_eq!(exec.stats().total_launches(), 1);
}

#[test]
fn unordered_same_slot_writes_are_flagged_as_stream_race() {
    let exec = inspecting_executor();
    let mut buf = vec![0u32; 4];
    {
        let cells = exec.bind("shared", &mut buf);
        let c = &cells;
        let mut s1 = exec.stream();
        let mut s2 = exec.stream();
        // SAFETY: intentionally racy across streams (both write slot 0);
        // sanitized epochs are serialized, so the race is logged, not
        // physically exercised.
        s1.launch_labeled("w1", 1, move |tid| unsafe { c.write(tid, 0, 1) });
        // SAFETY: as above — the conflicting half of the intentional race.
        s2.launch_labeled("w2", 1, move |tid| unsafe { c.write(tid, 0, 2) });
        exec.join(&mut [&mut s1, &mut s2]);
    }
    let reports = exec.take_reports();
    assert_eq!(reports.len(), 1, "{reports:?}");
    let r = &reports[0];
    assert_eq!(r.kernel, "w2");
    assert_eq!(r.other_kernel.as_deref(), Some("w1"));
    assert_eq!(r.buffer, "shared");
    assert_eq!(r.index, 0);
    assert!(matches!(
        r.kind,
        ConflictKind::StreamRace {
            kinds: (
                parsweep_par::AccessKind::Write,
                parsweep_par::AccessKind::Write
            ),
            ..
        }
    ));
}

#[test]
fn stream_ordered_same_slot_writes_are_clean() {
    let exec = inspecting_executor();
    let mut buf = vec![0u32; 4];
    {
        let cells = exec.bind("shared", &mut buf);
        let c = &cells;
        let mut s = exec.stream();
        // SAFETY: both launches write slot 0, but they sit on one stream:
        // program order is an ordering edge, so this is not a race.
        s.launch_labeled("w1", 1, move |tid| unsafe { c.write(tid, 0, 1) });
        // SAFETY: as above — ordered after w1 by the stream's program
        // order.
        s.launch_labeled("w2", 1, move |tid| unsafe { c.write(tid, 0, 2) });
        s.sync();
    }
    assert!(exec.take_reports().is_empty());
    assert_eq!(buf[0], 2);
}

#[test]
fn sync_barrier_between_streams_is_an_ordering_edge() {
    let exec = inspecting_executor();
    let mut buf = vec![0u32; 4];
    {
        let cells = exec.bind("shared", &mut buf);
        let c = &cells;
        let mut s1 = exec.stream();
        // SAFETY: slot 0 is written by s1, synced, then written by s2:
        // the sync barrier orders the two accesses.
        s1.launch_labeled("w1", 1, move |tid| unsafe { c.write(tid, 0, 1) });
        s1.sync();
        let mut s2 = exec.stream();
        // SAFETY: as above — s1's write completed at the sync barrier.
        s2.launch_labeled("w2", 1, move |tid| unsafe { c.write(tid, 0, 2) });
        s2.sync();
    }
    assert!(exec.take_reports().is_empty());
    assert_eq!(buf[0], 2);
}

#[test]
fn cross_stream_read_of_unordered_write_is_flagged() {
    let exec = inspecting_executor();
    let mut buf = vec![0u32; 4];
    {
        let cells = exec.bind("shared", &mut buf);
        let c = &cells;
        let mut s1 = exec.stream();
        let mut s2 = exec.stream();
        // SAFETY: intentionally hazardous: s2 reads what s1 writes with
        // no ordering edge; serialized under the sanitizer.
        s1.launch_labeled("producer", 1, move |tid| unsafe { c.write(tid, 2, 9) });
        // SAFETY: as above — the reading half of the intentional hazard.
        s2.launch_labeled("consumer", 1, move |tid| unsafe {
            let _ = c.read(tid, 2);
        });
        exec.join(&mut [&mut s1, &mut s2]);
    }
    let reports = exec.take_reports();
    assert_eq!(reports.len(), 1, "{reports:?}");
    assert!(matches!(
        reports[0].kind,
        ConflictKind::StreamRace {
            kinds: (
                parsweep_par::AccessKind::Write,
                parsweep_par::AccessKind::Read
            ),
            ..
        }
    ));
}

#[test]
fn disjoint_streams_are_clean_and_results_land() {
    let exec = inspecting_executor();
    let mut a = vec![0u32; 64];
    let mut b = vec![0u32; 64];
    {
        let ca = exec.bind("a", &mut a);
        let cb = exec.bind("b", &mut b);
        let (ra, rb) = (&ca, &cb);
        let mut s1 = exec.stream();
        let mut s2 = exec.stream();
        // SAFETY: each tid writes its own slot; streams touch disjoint
        // buffers.
        s1.launch(64, move |tid| unsafe { ra.write(tid, tid, 1) });
        // SAFETY: as above, on the other buffer.
        s2.launch(64, move |tid| unsafe { rb.write(tid, tid, 2) });
        exec.join(&mut [&mut s1, &mut s2]);
    }
    assert!(exec.take_reports().is_empty());
    assert!(a.iter().all(|&v| v == 1));
    assert!(b.iter().all(|&v| v == 2));
}

#[test]
fn raw_and_sanitized_streams_record_identical_stats() {
    let run = |exec: &Executor| {
        let mut buf = vec![0u64; 128];
        {
            let cells = exec.bind("buf", &mut buf);
            let c = &cells;
            let mut s1 = exec.stream();
            let mut s2 = exec.stream();
            // SAFETY: disjoint halves: s1 writes 0..64, s2 writes 64..128.
            s1.launch(64, move |tid| unsafe { c.write(tid, tid, 1) });
            // SAFETY: as above, upper half.
            s2.launch(64, move |tid| unsafe { c.write(tid, tid + 64, 2) });
            exec.join(&mut [&mut s1, &mut s2]);
        }
        buf
    };
    let raw = Executor::with_threads(3);
    let san = Executor::with_sanitizer(3);
    assert_eq!(run(&raw), run(&san));
    assert!(san.take_reports().is_empty());
    assert_eq!(raw.stats().total_launches(), san.stats().total_launches());
    assert_eq!(raw.stats().total_threads, san.stats().total_threads);
    assert_eq!(raw.stats().modeled_time(64), san.stats().modeled_time(64));
}

#[test]
fn arena_buffers_feed_kernels_and_recycle() {
    let exec = Executor::with_threads(2);
    for round in 0..4 {
        let mut table = exec.arena().take::<u64>(300);
        {
            let cells = exec.bind("table", &mut table);
            let c = &cells;
            let mut s = exec.stream();
            // SAFETY: each tid writes its own slot.
            s.launch(300, move |tid| unsafe { c.write(tid, tid, round as u64) });
            s.sync();
        }
        assert!(table.iter().all(|&v| v == round as u64));
    }
    let s = exec.stats();
    assert_eq!(s.arena_misses, 1, "one allocation serves all rounds");
    assert_eq!(s.arena_hits, 3);
    assert_eq!(s.arena_peak_bytes, 512 * 8);
}

//! Property tests: the parallel executor must be indistinguishable from
//! sequential execution for deterministic kernels.

use proptest::prelude::*;

use parsweep_par::{Executor, SharedSlice};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn map_equals_sequential(n in 0usize..500, threads in 1usize..6, salt in any::<u64>()) {
        let exec = Executor::with_threads(threads);
        let f = |i: usize| (i as u64).wrapping_mul(salt).rotate_left(7);
        let par: Vec<u64> = exec.map(n, f);
        let seq: Vec<u64> = (0..n).map(f).collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn reduce_equals_sequential_sum(n in 0usize..1000, threads in 1usize..6) {
        let exec = Executor::with_threads(threads);
        let got = exec.reduce(n, 0u64, |i| i as u64 + 1, |a, b| a + b);
        let want: u64 = (1..=n as u64).sum();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn shared_slice_disjoint_writes_are_exact(n in 1usize..400, threads in 1usize..6) {
        let exec = Executor::with_threads(threads);
        let mut buf = vec![0u32; n];
        {
            let cells = SharedSlice::new(&mut buf);
            // SAFETY: each tid writes only its own slot.
            exec.launch(n, |i| unsafe { cells.write(i, (i * i) as u32) });
        }
        prop_assert!(buf.iter().enumerate().all(|(i, &v)| v as usize == i * i));
    }

    #[test]
    fn stats_track_work(widths in proptest::collection::vec(0usize..100, 0..10)) {
        let exec = Executor::with_threads(2);
        for &w in &widths {
            exec.launch(w, |_| {});
        }
        let s = exec.stats();
        let nonzero: Vec<usize> = widths.iter().copied().filter(|&w| w > 0).collect();
        prop_assert_eq!(s.total_launches(), nonzero.len() as u64);
        prop_assert_eq!(s.total_threads, nonzero.iter().sum::<usize>() as u64);
        prop_assert_eq!(s.widest, nonzero.iter().max().copied().unwrap_or(0) as u64);
    }
}

//! Offline drop-in subset of the [proptest](https://crates.io/crates/proptest)
//! property-testing API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of proptest it actually uses:
//! deterministic pseudo-random generation of test inputs from composable
//! [`Strategy`] values, the [`proptest!`] test-harness macro, and the
//! `prop_assert*` assertion macros. Shrinking of failing inputs is
//! intentionally not implemented — on failure the panic message reports the
//! case number and per-run seed so a failure reproduces exactly.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift reduction; bias is irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
///
/// This mirrors proptest's `Strategy` trait with generation only (no
/// shrink tree): a strategy is anything that can produce a `Value` from
/// the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (see [`any`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for an unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// A bounded size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64 + 1) as usize
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    ///
    /// As in proptest, duplicate elements are retried a bounded number of
    /// times, so the resulting set may be smaller than the sampled target
    /// when the element domain is nearly exhausted.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 16 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

thread_local! {
    static CURRENT_CASE: RefCell<Option<(u64, u32)>> = const { RefCell::new(None) };
}

/// Runs one property under the harness; used by the [`proptest!`] macro.
///
/// Not part of the public proptest API — do not call directly.
#[doc(hidden)]
pub fn run_property(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut TestRng)) {
    // Stable per-property seed: FNV-1a of the property name.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for i in 0..config.cases {
        let case_seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
        CURRENT_CASE.with(|c| *c.borrow_mut() = Some((case_seed, i)));
        let mut rng = TestRng::new(case_seed);
        case(&mut rng);
    }
    CURRENT_CASE.with(|c| *c.borrow_mut() = None);
}

/// Formats failure context (case number and seed) for `prop_assert*`.
#[doc(hidden)]
pub fn failure_context() -> String {
    CURRENT_CASE.with(|c| match *c.borrow() {
        Some((seed, i)) => format!(" [case {i}, seed {seed:#x}]"),
        None => String::new(),
    })
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                // A Result-returning closure so property bodies may use
                // `return Ok(());` for early exit, as with real proptest.
                let body = move || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(e) = body() {
                    panic!("property failed: {}{}", e, $crate::failure_context());
                }
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}{}", stringify!($cond), $crate::failure_context())
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, "{}{}", format!($($fmt)*), $crate::failure_context())
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b, "property failed{}", $crate::failure_context())
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, "{}{}", format!($($fmt)*), $crate::failure_context())
    };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b, "property failed{}", $crate::failure_context())
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, "{}{}", format!($($fmt)*), $crate::failure_context())
    };
}

/// The common imports of a proptest test module.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in 1u32..=4, c in any::<bool>()) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            let _ = c;
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u64..10, 2..5),
            s in crate::collection::btree_set(0u32..100, 1..=3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut r1 = crate::TestRng::new(42);
        let mut r2 = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn prop_map_applies() {
        let strat = (0u32..10).prop_map(|x| x * 2);
        let mut rng = crate::TestRng::new(7);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }
}

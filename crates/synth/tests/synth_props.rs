//! Property-based tests: every optimization pass preserves the function.

use proptest::prelude::*;

use parsweep_aig::random::random_aig;
use parsweep_aig::Aig;
use parsweep_synth::{balance, isop, resyn_light, rewrite, Cube, RewriteParams};

fn equivalent_exhaustive(a: &Aig, b: &Aig) -> bool {
    let n = a.num_pis();
    (0..1usize << n).all(|v| {
        let bits: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
        a.eval(&bits) == b.eval(&bits)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn balance_preserves_function(
        pis in 2usize..8, ands in 5usize..80, pos in 1usize..4, seed in any::<u64>()
    ) {
        let aig = random_aig(pis, ands, pos, seed);
        let b = balance(&aig);
        prop_assert!(equivalent_exhaustive(&aig, &b));
        prop_assert!(b.depth() <= aig.depth());
    }

    #[test]
    fn rewrite_preserves_function(
        pis in 2usize..8, ands in 5usize..80, pos in 1usize..4, seed in any::<u64>()
    ) {
        let aig = random_aig(pis, ands, pos, seed);
        for params in [RewriteParams::rewrite(), RewriteParams::refactor(),
                       RewriteParams::rewrite().with_zero_cost()] {
            let r = rewrite(&aig, params);
            prop_assert!(equivalent_exhaustive(&aig, &r));
        }
    }

    #[test]
    fn resyn_light_preserves_and_never_grows(
        pis in 2usize..8, ands in 5usize..80, pos in 1usize..4, seed in any::<u64>()
    ) {
        let aig = random_aig(pis, ands, pos, seed).clean();
        let opt = resyn_light(&aig);
        prop_assert!(equivalent_exhaustive(&aig, &opt));
        prop_assert!(opt.num_ands() <= aig.num_ands() + 2,
            "light script grew {} -> {}", aig.num_ands(), opt.num_ands());
    }

    #[test]
    fn isop_covers_random_functions_exactly(code in any::<u64>(), k in 1usize..7) {
        let f = parsweep_sim::TruthTable::from_fn(k, |i| code >> (i % 64) & 1 == 1);
        let cubes = isop(&f);
        for i in 0..f.num_bits() {
            let covered = cubes.iter().any(|c: &Cube| c.eval(i));
            prop_assert_eq!(covered, f.value(i));
        }
        // Irredundancy sanity: no cube is fully covered by the others.
        for skip in 0..cubes.len() {
            let missing = (0..f.num_bits()).any(|i| {
                cubes[skip].eval(i)
                    && !cubes.iter().enumerate().any(|(j, c)| j != skip && c.eval(i))
            });
            prop_assert!(missing, "cube {skip} is redundant");
        }
    }
}

//! # parsweep-synth — logic optimization substrate
//!
//! The paper's benchmark miters compare an original circuit against its
//! ABC-`resyn2`-optimized version. This crate rebuilds that optimizer:
//! AND-tree [`balance`], cut-based [`rewrite`]/refactor via truth-table
//! extraction + irredundant SOP ([`isop`]), chained into the
//! [`resyn2`]-equivalent script.
//!
//! ```
//! use parsweep_aig::Aig;
//! use parsweep_synth::resyn2;
//! let mut aig = Aig::new();
//! let xs = aig.add_inputs(8);
//! let mut acc = xs[0];
//! for &x in &xs[1..] {
//!     acc = aig.and(acc, x); // a deep chain
//! }
//! aig.add_po(acc);
//! let opt = resyn2(&aig);
//! assert!(opt.depth() < aig.depth());
//! assert_eq!(opt.eval(&[true; 8]), vec![true]);
//! ```

#![warn(missing_docs)]

mod balance;
mod isop;
mod resyn;
mod rewrite;

pub use balance::balance;
pub use isop::{isop, sop_cost, Cube};
pub use resyn::{resyn2, resyn_light};
pub use rewrite::{build_sop, local_truth_table, rewrite, RewriteParams};

//! The `resyn2`-equivalent optimization script.
//!
//! ABC's `resyn2` is `b; rw; rf; b; rw; rwz; b; rfz; rwz; b`. This module
//! chains our balance / rewrite / refactor passes in the same shape; the
//! result is a functionally equivalent, structurally different and usually
//! smaller network — exactly the "optimized version" the paper miters
//! against the original.

use parsweep_aig::Aig;

use crate::balance::balance;
use crate::rewrite::{rewrite, RewriteParams};

/// Runs the full `resyn2`-like script.
pub fn resyn2(aig: &Aig) -> Aig {
    let mut n = balance(aig);
    n = rewrite(&n, RewriteParams::rewrite());
    n = rewrite(&n, RewriteParams::refactor());
    n = balance(&n);
    n = rewrite(&n, RewriteParams::rewrite());
    n = rewrite(&n, RewriteParams::rewrite().with_zero_cost());
    n = balance(&n);
    n = rewrite(&n, RewriteParams::refactor().with_zero_cost());
    n = rewrite(&n, RewriteParams::rewrite().with_zero_cost());
    balance(&n)
}

/// A lighter script (one rewrite + balance), useful in tests.
pub fn resyn_light(aig: &Aig) -> Aig {
    let n = balance(aig);
    let n = rewrite(&n, RewriteParams::rewrite());
    balance(&n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equivalent(a: &Aig, b: &Aig) -> bool {
        assert_eq!(a.num_pis(), b.num_pis());
        assert_eq!(a.num_pos(), b.num_pos());
        let n = a.num_pis();
        let mut rng = parsweep_aig::random::SplitMix64::new(123);
        let cases = if n <= 10 { 1usize << n } else { 2048 };
        (0..cases).all(|i| {
            let bits: Vec<bool> = if n <= 10 {
                (0..n).map(|j| i >> j & 1 == 1).collect()
            } else {
                (0..n).map(|_| rng.bool()).collect()
            };
            a.eval(&bits) == b.eval(&bits)
        })
    }

    #[test]
    fn resyn2_preserves_function() {
        for seed in [4u64, 44, 444] {
            let aig = parsweep_aig::random::random_aig(9, 150, 5, seed);
            let opt = resyn2(&aig);
            assert!(equivalent(&aig, &opt), "seed {seed}");
        }
    }

    #[test]
    fn resyn2_changes_structure() {
        let aig = parsweep_aig::random::random_aig(10, 300, 4, 5);
        let opt = resyn2(&aig);
        // The miter of original vs optimized must NOT be structurally
        // proved (otherwise the CEC benchmark would be trivial).
        let m = parsweep_aig::miter(&aig, &opt).unwrap();
        assert!(!parsweep_aig::is_proved(&m));
    }

    #[test]
    fn resyn_light_preserves_function() {
        let aig = parsweep_aig::random::random_aig(8, 100, 3, 77);
        let opt = resyn_light(&aig);
        assert!(equivalent(&aig, &opt));
    }
}

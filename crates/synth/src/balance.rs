//! AND-tree balancing (the `b` steps of `resyn2`).
//!
//! Collects maximal multi-input AND trees (following non-complemented
//! fanin edges) and rebuilds each as a depth-minimal balanced tree, pairing
//! the shallowest operands first.

use parsweep_aig::{Aig, Lit, Node};

/// Rebuilds the network with every maximal AND tree balanced.
///
/// The result is functionally equivalent; depth typically drops while the
/// gate count stays equal or shrinks (via re-hashing).
pub fn balance(aig: &Aig) -> Aig {
    let mut out = Aig::with_capacity(aig.num_nodes());
    let mut map: Vec<Lit> = Vec::with_capacity(aig.num_nodes());
    let fanouts = aig.fanout_counts();
    for (i, node) in aig.nodes().iter().enumerate() {
        let lit = match node {
            Node::Const => Lit::FALSE,
            Node::Input(_) => out.add_input(),
            Node::And(_, _) => {
                // Collect the maximal AND tree rooted here: descend through
                // non-complemented AND fanins with single fanout (shared
                // nodes keep their own identity).
                let mut operands: Vec<Lit> = Vec::new();
                let mut stack = vec![parsweep_aig::Var::new(i as u32)];
                while let Some(v) = stack.pop() {
                    match aig.node(v) {
                        Node::And(a, b) if v.index() == i || fanouts[v.index()] == 1 => {
                            for f in [a, b] {
                                if !f.is_complemented() && aig.node(f.var()).is_and() {
                                    stack.push(f.var());
                                } else {
                                    operands.push(map[f.var().index()].xor(f.is_complemented()));
                                }
                            }
                        }
                        _ => {
                            // Shared subtree: treat as a single operand.
                            operands.push(map[v.index()]);
                        }
                    }
                }
                build_balanced(&mut out, operands)
            }
        };
        map.push(lit);
    }
    for po in aig.pos() {
        let lit = map[po.var().index()].xor(po.is_complemented());
        out.add_po(lit);
    }
    out.clean()
}

/// Combines operands into a balanced AND tree, always pairing the two
/// shallowest operands (Huffman-style by level).
fn build_balanced(out: &mut Aig, operands: Vec<Lit>) -> Lit {
    if operands.is_empty() {
        return Lit::TRUE;
    }
    let levels = out.levels();
    // Min-heap of (level, lit) via Reverse ordering.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = operands
        .into_iter()
        .map(|l| Reverse((levels.get(l.var().index()).copied().unwrap_or(0), l.code())))
        .collect();
    while heap.len() > 1 {
        let Reverse((la, a)) = heap.pop().expect("len > 1");
        let Reverse((lb, b)) = heap.pop().expect("len > 1");
        let f = out.and(Lit::from_code(a), Lit::from_code(b));
        heap.push(Reverse((la.max(lb) + 1, f.code())));
    }
    let Reverse((_, top)) = heap.pop().expect("nonempty");
    Lit::from_code(top)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equivalent(a: &Aig, b: &Aig) -> bool {
        assert_eq!(a.num_pis(), b.num_pis());
        assert_eq!(a.num_pos(), b.num_pos());
        let n = a.num_pis();
        if n <= 12 {
            (0..1usize << n).all(|v| {
                let bits: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
                a.eval(&bits) == b.eval(&bits)
            })
        } else {
            let mut rng = parsweep_aig::random::SplitMix64::new(1);
            (0..512).all(|_| {
                let bits: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
                a.eval(&bits) == b.eval(&bits)
            })
        }
    }

    #[test]
    fn chain_becomes_logarithmic() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(16);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_po(acc);
        assert_eq!(aig.depth(), 15);
        let b = balance(&aig);
        assert_eq!(b.depth(), 4);
        assert!(equivalent(&aig, &b));
    }

    #[test]
    fn complemented_edges_block_tree_collection() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let t = aig.and(xs[0], xs[1]);
        let u = aig.and(!t, xs[2]); // complement boundary
        let v = aig.and(u, xs[3]);
        aig.add_po(v);
        let b = balance(&aig);
        assert!(equivalent(&aig, &b));
    }

    #[test]
    fn shared_nodes_keep_identity() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let shared = aig.and(xs[0], xs[1]);
        let f = aig.and(shared, xs[2]);
        let g = aig.and(shared, xs[3]);
        aig.add_po(f);
        aig.add_po(g);
        let b = balance(&aig);
        assert!(equivalent(&aig, &b));
        assert!(b.num_ands() <= aig.num_ands());
    }

    #[test]
    fn random_networks_stay_equivalent() {
        for seed in [2u64, 12, 99] {
            let aig = parsweep_aig::random::random_aig(8, 80, 4, seed);
            let b = balance(&aig);
            assert!(equivalent(&aig, &b), "seed {seed}");
        }
    }

    #[test]
    fn balance_is_idempotent_on_depth() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(8);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_po(acc);
        let b1 = balance(&aig);
        let b2 = balance(&b1);
        assert_eq!(b1.depth(), b2.depth());
    }
}

//! Cut-based resynthesis: the `rw` (small cuts) and `rf` (larger cuts)
//! steps of `resyn2`.
//!
//! Every AND node is considered with one well-shaped cut; its local
//! function over the cut is extracted as a truth table, covered by an
//! irredundant SOP, and rebuilt if the SOP form is estimated cheaper than
//! the existing cone. The whole network is rebuilt in one topological
//! pass, so the result is functionally equivalent by construction.

use parsweep_aig::{Aig, Lit, Node, Var};
use parsweep_cut::{
    enumerate_cuts, filter_dominated, select_priority_cuts, Cut, CutParams, CutScorer, Pass,
};
use parsweep_sim::TruthTable;

use crate::isop::{isop, sop_cost, Cube};

/// Parameters of a rewriting pass.
#[derive(Clone, Copy, Debug)]
pub struct RewriteParams {
    /// Maximum cut size considered (4 for `rw`-style, 8-10 for `rf`-style).
    pub cut_size: usize,
    /// Priority cuts kept per node during enumeration.
    pub cuts_per_node: usize,
    /// Accept resynthesized structure also on equal estimated cost
    /// (zero-cost replacement, like ABC's `-z` variants); increases
    /// structural diversity without size growth.
    pub zero_cost: bool,
}

impl RewriteParams {
    /// `rw`-like: 4-input cuts.
    pub fn rewrite() -> Self {
        RewriteParams {
            cut_size: 4,
            cuts_per_node: 6,
            zero_cost: false,
        }
    }

    /// `rf`-like: larger cuts.
    pub fn refactor() -> Self {
        RewriteParams {
            cut_size: 8,
            cuts_per_node: 4,
            zero_cost: false,
        }
    }

    /// Zero-cost variant of this parameter set.
    pub fn with_zero_cost(mut self) -> Self {
        self.zero_cost = true;
        self
    }
}

/// Computes the local truth table of `root` over `cut` in `aig`.
///
/// Returns `None` if the cut is not a valid cut of the root.
pub fn local_truth_table(aig: &Aig, root: Var, cut: &Cut) -> Option<TruthTable> {
    let leaves = cut.to_vars();
    let cone = aig.cone_between(&[root], &leaves)?;
    let k = leaves.len();
    let mut tts: std::collections::HashMap<Var, TruthTable> = leaves
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, TruthTable::projection(k, i)))
        .collect();
    for &v in &cone {
        let Node::And(a, b) = aig.node(v) else {
            return None;
        };
        let ta = {
            let t = tts.get(&a.var())?;
            if a.is_complemented() {
                t.not()
            } else {
                t.clone()
            }
        };
        let tb = {
            let t = tts.get(&b.var())?;
            if b.is_complemented() {
                t.not()
            } else {
                t.clone()
            }
        };
        tts.insert(v, ta.and(&tb));
    }
    tts.remove(&root)
}

/// Builds an SOP cover as AIG logic over the given leaf literals.
pub fn build_sop(out: &mut Aig, cubes: &[Cube], leaves: &[Lit]) -> Lit {
    let mut terms = Vec::with_capacity(cubes.len());
    for cube in cubes {
        let mut lits = Vec::with_capacity(cube.num_lits());
        for (j, &leaf) in leaves.iter().enumerate() {
            if cube.pos >> j & 1 == 1 {
                lits.push(leaf);
            }
            if cube.neg >> j & 1 == 1 {
                lits.push(!leaf);
            }
        }
        terms.push(out.and_all(lits));
    }
    out.or_all(terms)
}

/// One rewriting pass over the network.
///
/// Returns a functionally equivalent network; gate count never increases
/// beyond the strash-rebuilt baseline by more than the accepted zero-cost
/// replacements.
pub fn rewrite(aig: &Aig, params: RewriteParams) -> Aig {
    let cut_params = CutParams {
        k_l: params.cut_size,
        c: params.cuts_per_node,
    };
    let fanouts = aig.fanout_counts();
    let levels = aig.levels();
    let scorer = CutScorer::new(&fanouts, &levels);

    // Bottom-up priority cuts on the original network.
    let mut cut_sets: Vec<Vec<Cut>> = Vec::with_capacity(aig.num_nodes());
    for (i, node) in aig.nodes().iter().enumerate() {
        let cuts = match node {
            Node::Const | Node::Input(_) => Vec::new(),
            Node::And(a, b) => {
                let cands = filter_dominated(enumerate_cuts(
                    *a,
                    *b,
                    &cut_sets[a.var().index()],
                    &cut_sets[b.var().index()],
                    cut_params,
                ));
                select_priority_cuts(cands, &scorer, Pass::Fanout, cut_params, None)
            }
        };
        cut_sets.push(cuts);
        let _ = i;
    }

    let mut out = Aig::with_capacity(aig.num_nodes());
    let mut map: Vec<Lit> = Vec::with_capacity(aig.num_nodes());
    for (i, node) in aig.nodes().iter().enumerate() {
        let v = Var::new(i as u32);
        let lit = match node {
            Node::Const => Lit::FALSE,
            Node::Input(_) => out.add_input(),
            Node::And(a, b) => {
                let fallback = |out: &mut Aig, map: &[Lit]| {
                    let fa = map[a.var().index()].xor(a.is_complemented());
                    let fb = map[b.var().index()].xor(b.is_complemented());
                    out.and(fa, fb)
                };
                // Try the best nontrivial cut for resynthesis.
                let mut chosen: Option<Lit> = None;
                for cut in &cut_sets[i] {
                    if cut.len() < 3 || cut.contains(v) {
                        continue;
                    }
                    let Some(tt) = local_truth_table(aig, v, cut) else {
                        continue;
                    };
                    let cone_size = aig
                        .cone_between(&[v], &cut.to_vars())
                        .map(|c| c.len())
                        .unwrap_or(usize::MAX);
                    let cubes = isop(&tt);
                    let cubes_neg = isop(&tt.not());
                    let (use_neg, cost) = if sop_cost(&cubes_neg) < sop_cost(&cubes) {
                        (true, sop_cost(&cubes_neg))
                    } else {
                        (false, sop_cost(&cubes))
                    };
                    let accept = if params.zero_cost {
                        cost <= cone_size
                    } else {
                        cost < cone_size
                    };
                    if accept {
                        let leaves: Vec<Lit> = cut.iter().map(|l| map[l.index()]).collect();
                        let built = if use_neg {
                            !build_sop(&mut out, &cubes_neg, &leaves)
                        } else {
                            build_sop(&mut out, &cubes, &leaves)
                        };
                        chosen = Some(built);
                        break;
                    }
                }
                chosen.unwrap_or_else(|| fallback(&mut out, &map))
            }
        };
        map.push(lit);
    }
    for po in aig.pos() {
        let lit = map[po.var().index()].xor(po.is_complemented());
        out.add_po(lit);
    }
    out.clean()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equivalent(a: &Aig, b: &Aig) -> bool {
        assert_eq!(a.num_pis(), b.num_pis());
        assert_eq!(a.num_pos(), b.num_pos());
        let n = a.num_pis();
        if n <= 10 {
            (0..1usize << n).all(|v| {
                let bits: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
                a.eval(&bits) == b.eval(&bits)
            })
        } else {
            let mut rng = parsweep_aig::random::SplitMix64::new(3);
            (0..1024).all(|_| {
                let bits: Vec<bool> = (0..n).map(|_| rng.bool()).collect();
                a.eval(&bits) == b.eval(&bits)
            })
        }
    }

    #[test]
    fn local_tt_of_mux() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let m = aig.mux(xs[0], xs[1], xs[2]);
        let cut = Cut::new(&[xs[0].var(), xs[1].var(), xs[2].var()]);
        // m may carry a complement; compute for the underlying var.
        let tt = local_truth_table(&aig, m.var(), &cut).unwrap();
        let expect = TruthTable::from_fn(3, |i| {
            let (s, t, e) = (i & 1 == 1, i >> 1 & 1 == 1, i >> 2 & 1 == 1);
            let muxv = if s { t } else { e };
            muxv != m.is_complemented()
        });
        assert_eq!(tt, expect);
    }

    #[test]
    fn invalid_cut_gives_none() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        let cut = Cut::new(&[xs[0].var()]);
        assert!(local_truth_table(&aig, f.var(), &cut).is_none());
    }

    #[test]
    fn redundant_logic_shrinks() {
        // f = (a & b) | (a & b & c): redundant term.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let ab = aig.and(xs[0], xs[1]);
        let abc = aig.and(ab, xs[2]);
        let f = aig.or(ab, abc);
        aig.add_po(f);
        let r = rewrite(&aig, RewriteParams::rewrite());
        assert!(equivalent(&aig, &r));
        assert!(r.num_ands() < aig.num_ands());
    }

    #[test]
    fn rewrite_preserves_random_networks() {
        for seed in [7u64, 21, 63] {
            let aig = parsweep_aig::random::random_aig(8, 120, 4, seed);
            let r = rewrite(&aig, RewriteParams::rewrite());
            assert!(equivalent(&aig, &r), "seed {seed} (rw)");
            let r2 = rewrite(&aig, RewriteParams::refactor());
            assert!(equivalent(&aig, &r2), "seed {seed} (rf)");
            let r3 = rewrite(&aig, RewriteParams::rewrite().with_zero_cost());
            assert!(equivalent(&aig, &r3), "seed {seed} (rwz)");
        }
    }

    #[test]
    fn build_sop_matches_cover() {
        let a = TruthTable::projection(3, 0);
        let b = TruthTable::projection(3, 1);
        let c = TruthTable::projection(3, 2);
        let f = a.xor(&b).or(&c);
        let cubes = isop(&f);
        let mut out = Aig::new();
        let leaves = out.add_inputs(3);
        let lit = build_sop(&mut out, &cubes, &leaves);
        out.add_po(lit);
        for i in 0..8usize {
            let bits = [(i & 1) != 0, (i >> 1 & 1) != 0, (i >> 2 & 1) != 0];
            assert_eq!(out.eval(&bits), vec![f.value(i)]);
        }
    }
}

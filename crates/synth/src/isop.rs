//! Irredundant sum-of-products extraction (Minato–Morreale ISOP).

use parsweep_sim::TruthTable;

/// A product term over `k` cut variables: `pos` holds variables appearing
/// positively, `neg` those appearing negatively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cube {
    /// Bitmask of positive literals.
    pub pos: u32,
    /// Bitmask of negative literals.
    pub neg: u32,
}

impl Cube {
    /// The constant-true cube (no literals).
    pub const TRUE: Cube = Cube { pos: 0, neg: 0 };

    /// Number of literals in the cube.
    pub fn num_lits(&self) -> usize {
        (self.pos.count_ones() + self.neg.count_ones()) as usize
    }

    /// Evaluates the cube under an assignment (bit `j` = variable `j`).
    pub fn eval(&self, assignment: usize) -> bool {
        let a = assignment as u32;
        (a & self.pos) == self.pos && (!a & self.neg) == self.neg
    }

    /// The truth table of this cube over `num_vars` variables.
    pub fn to_tt(&self, num_vars: usize) -> TruthTable {
        let mut t = TruthTable::ones(num_vars);
        for v in 0..num_vars {
            if self.pos >> v & 1 == 1 {
                t = t.and(&TruthTable::projection(num_vars, v));
            }
            if self.neg >> v & 1 == 1 {
                t = t.and(&TruthTable::projection(num_vars, v).not());
            }
        }
        t
    }
}

/// Computes an irredundant SOP cover of the (completely specified)
/// function `f` by the Minato–Morreale procedure, returning the cubes.
///
/// The cover is exact: the OR of all cubes equals `f`.
pub fn isop(f: &TruthTable) -> Vec<Cube> {
    let (cubes, cover) = isop_rec(f, f, f.num_vars());
    debug_assert_eq!(&cover, f, "ISOP cover must equal the function");
    cubes
}

/// Recursive ISOP on an interval `[lower, upper]`; returns the cubes and
/// the cover's truth table.
fn isop_rec(lower: &TruthTable, upper: &TruthTable, num_vars: usize) -> (Vec<Cube>, TruthTable) {
    if lower.is_zero() {
        return (Vec::new(), TruthTable::zeros(lower.num_vars()));
    }
    if upper.is_ones() {
        return (vec![Cube::TRUE], TruthTable::ones(lower.num_vars()));
    }
    // Split on the highest variable either bound depends on.
    let var = (0..num_vars)
        .rev()
        .find(|&v| lower.depends_on(v) || upper.depends_on(v))
        .expect("nonconstant interval depends on something");

    let l0 = lower.cofactor(var, false);
    let l1 = lower.cofactor(var, true);
    let u0 = upper.cofactor(var, false);
    let u1 = upper.cofactor(var, true);

    // Cubes that must contain !x (needed for x=0 but not allowed at x=1).
    let (c0, cov0) = isop_rec(&l0.and(&u1.not()), &u0, var);
    // Cubes that must contain x.
    let (c1, cov1) = isop_rec(&l1.and(&u0.not()), &u1, var);
    // Remaining minterms, coverable independently of x.
    let lstar = l0.and(&cov0.not()).or(&l1.and(&cov1.not()));
    let (cs, covs) = isop_rec(&lstar, &u0.and(&u1), var);

    let mut cubes = Vec::with_capacity(c0.len() + c1.len() + cs.len());
    for c in c0 {
        cubes.push(Cube {
            pos: c.pos,
            neg: c.neg | 1 << var,
        });
    }
    for c in c1 {
        cubes.push(Cube {
            pos: c.pos | 1 << var,
            neg: c.neg,
        });
    }
    cubes.extend(cs);

    let proj = TruthTable::projection(lower.num_vars(), var);
    let cover = cov0.and(&proj.not()).or(&cov1.and(&proj)).or(&covs);
    (cubes, cover)
}

/// Estimated AIG cost of a cover: AND gates inside cubes plus OR gates
/// combining them.
pub fn sop_cost(cubes: &[Cube]) -> usize {
    if cubes.is_empty() {
        return 0;
    }
    let ands: usize = cubes.iter().map(|c| c.num_lits().saturating_sub(1)).sum();
    ands + (cubes.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(f: &TruthTable) {
        let cubes = isop(f);
        for i in 0..f.num_bits() {
            let covered = cubes.iter().any(|c| c.eval(i));
            assert_eq!(covered, f.value(i), "assignment {i}");
        }
    }

    #[test]
    fn constant_functions() {
        check_cover(&TruthTable::zeros(3));
        check_cover(&TruthTable::ones(3));
        assert!(isop(&TruthTable::zeros(4)).is_empty());
        assert_eq!(isop(&TruthTable::ones(4)), vec![Cube::TRUE]);
    }

    #[test]
    fn projections_and_simple_gates() {
        for k in 1..=4 {
            for v in 0..k {
                check_cover(&TruthTable::projection(k, v));
                check_cover(&TruthTable::projection(k, v).not());
            }
        }
        let a = TruthTable::projection(3, 0);
        let b = TruthTable::projection(3, 1);
        check_cover(&a.and(&b));
        check_cover(&a.or(&b));
        check_cover(&a.xor(&b));
    }

    #[test]
    fn xor_cover_has_two_cubes() {
        let a = TruthTable::projection(2, 0);
        let b = TruthTable::projection(2, 1);
        let cubes = isop(&a.xor(&b));
        assert_eq!(cubes.len(), 2);
        assert!(cubes.iter().all(|c| c.num_lits() == 2));
    }

    #[test]
    fn exhaustive_small_functions() {
        // Every 3-variable function must be covered exactly.
        for code in 0..256u64 {
            let f = TruthTable::from_fn(3, |i| code >> i & 1 == 1);
            check_cover(&f);
        }
    }

    #[test]
    fn random_larger_functions() {
        let mut rng = parsweep_aig::random::SplitMix64::new(5);
        for _ in 0..30 {
            let f = TruthTable::from_fn(7, |_| rng.bool());
            check_cover(&f);
        }
    }

    #[test]
    fn cost_of_and2() {
        let a = TruthTable::projection(2, 0);
        let b = TruthTable::projection(2, 1);
        let cubes = isop(&a.and(&b));
        assert_eq!(cubes.len(), 1);
        assert_eq!(sop_cost(&cubes), 1);
    }
}

//! A CDCL SAT solver: two-watched-literal propagation, 1-UIP conflict
//! learning, VSIDS decisions, phase saving and Luby restarts — the
//! solver underneath the SAT-sweeping baseline (the role MiniSat-style
//! solvers play inside ABC `&cec`).

use crate::heap::VarOrder;
use crate::slit::{LBool, SatLit, SatVar};

const NULL_CLAUSE: u32 = u32::MAX;
const ACTIVITY_RESCALE: f64 = 1e100;

/// Result of a (budgeted) solve call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::model_value`]).
    Sat,
    /// The formula is unsatisfiable under the given assumptions.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

/// Counters exposed for benchmarking and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered (over the solver's lifetime).
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Learned clauses recorded.
    pub learned: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned-clause database reductions performed.
    pub reductions: u64,
}

/// A CDCL SAT solver.
///
/// ```
/// use parsweep_sat::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.pos(), b.pos()]);
/// s.add_clause(&[a.neg()]);
/// assert_eq!(s.solve(&[]), SolveResult::Sat);
/// assert_eq!(s.model_value(b), Some(true));
/// assert_eq!(s.solve(&[b.neg()]), SolveResult::Unsat);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Solver {
    db: Vec<u32>,
    watches: Vec<Vec<u32>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<SatLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    phase: Vec<bool>,
    seen: Vec<bool>,
    model: Vec<LBool>,
    ok: bool,
    stats: SolverStats,
    conflict_budget: Option<u64>,
    /// Learned clause bookkeeping for database reduction: (cref, activity).
    learned_clauses: Vec<(u32, f64)>,
    /// cref -> index into `learned_clauses`.
    learned_index: std::collections::HashMap<u32, usize>,
    cla_inc: f64,
    max_learned: usize,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            max_learned: 4000,
            ok: true,
            ..Default::default()
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits the *total remaining* conflicts for subsequent solve calls;
    /// `None` removes the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget.map(|b| self.stats.conflicts + b);
    }

    /// Sets the learned-clause count that triggers a database reduction
    /// (default 4000; the threshold grows geometrically afterwards).
    pub fn set_reduce_threshold(&mut self, threshold: usize) {
        self.max_learned = threshold.max(1);
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar::new(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NULL_CLAUSE);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow(self.assign.len());
        self.order.insert(v.0, &self.activity);
        v
    }

    #[inline]
    fn value(&self, l: SatLit) -> LBool {
        let v = self.assign[l.var().index()];
        if l.is_neg() {
            v.negate()
        } else {
            v
        }
    }

    /// Adds a clause. Returns `false` if the formula became trivially
    /// unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called at a non-root decision level.
    pub fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at level 0"
        );
        if !self.ok {
            return false;
        }
        // Simplify: sort, dedup, drop false literals, detect tautology.
        let mut ls: Vec<SatLit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut simplified = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: l and !l both present
            }
            match self.value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(simplified[0], NULL_CLAUSE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.alloc_clause(&simplified);
                true
            }
        }
    }

    fn alloc_clause(&mut self, lits: &[SatLit]) -> u32 {
        let cref = self.db.len() as u32;
        self.db.push(lits.len() as u32);
        for l in lits {
            self.db.push(l.0);
        }
        self.watches[lits[0].index()].push(cref);
        self.watches[lits[1].index()].push(cref);
        cref
    }

    fn enqueue(&mut self, l: SatLit, reason: u32) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var().index();
        self.assign[v] = LBool::from_bool(!l.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail nonempty");
            let v = l.var().index();
            self.phase[v] = !l.is_neg();
            self.assign[v] = LBool::Undef;
            self.reason[v] = NULL_CLAUSE;
            self.order.insert(l.var().0, &self.activity);
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            let mut conflict = None;
            'clauses: while i < ws.len() {
                let cref = ws[i] as usize;
                let len = self.db[cref] as usize;
                let base = cref + 1;
                // Normalize: false_lit at slot 1.
                if self.db[base] == false_lit.0 {
                    self.db.swap(base, base + 1);
                }
                debug_assert_eq!(self.db[base + 1], false_lit.0);
                let first = SatLit(self.db[base]);
                if self.value(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..len {
                    let lk = SatLit(self.db[base + k]);
                    if self.value(lk) != LBool::False {
                        self.db[base + 1] = lk.0;
                        self.db[base + k] = false_lit.0;
                        self.watches[lk.index()].push(cref as u32);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // Clause is unit or conflicting.
                if self.value(first) == LBool::False {
                    conflict = Some(cref as u32);
                    break;
                }
                self.enqueue(first, cref as u32);
                i += 1;
            }
            self.watches[false_lit.index()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, v: SatVar) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
        self.order.increased(v.0, &self.activity);
    }

    /// 1-UIP conflict analysis; returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<SatLit>, u32) {
        let mut learned: Vec<SatLit> = vec![SatLit::default()];
        let mut path_c = 0u32;
        let mut p: Option<SatLit> = None;
        let mut idx = self.trail.len();
        loop {
            self.bump_clause(confl);
            let base = confl as usize + 1;
            let len = self.db[confl as usize] as usize;
            let start = usize::from(p.is_some());
            for k in start..len {
                let q = SatLit(self.db[base + k]);
                let qv = q.var();
                if !self.seen[qv.index()] && self.level[qv.index()] > 0 {
                    self.seen[qv.index()] = true;
                    self.bump(qv);
                    if self.level[qv.index()] >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find the next literal to expand.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pv = self.trail[idx];
            p = Some(pv);
            self.seen[pv.var().index()] = false;
            path_c -= 1;
            if path_c == 0 {
                break;
            }
            confl = self.reason[pv.var().index()];
            debug_assert_ne!(confl, NULL_CLAUSE);
        }
        learned[0] = !p.expect("UIP exists");
        // Backtrack level: highest level among the other literals.
        let mut bt = 0u32;
        let mut at = 1usize;
        for (i, l) in learned.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > bt {
                bt = lv;
                at = i;
            }
        }
        if learned.len() > 1 {
            learned.swap(1, at);
        }
        for l in &learned {
            self.seen[l.var().index()] = false;
        }
        (learned, bt)
    }

    fn bump_clause(&mut self, cref: u32) {
        if let Some(&idx) = self.learned_index.get(&cref) {
            self.learned_clauses[idx].1 += self.cla_inc;
            if self.learned_clauses[idx].1 > ACTIVITY_RESCALE {
                for (_, a) in &mut self.learned_clauses {
                    *a /= ACTIVITY_RESCALE;
                }
                self.cla_inc /= ACTIVITY_RESCALE;
            }
        }
    }

    /// Deletes the low-activity half of the learned clauses and compacts
    /// the clause arena (MiniSat-style database reduction). Must run at
    /// decision level 0.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        self.stats.reductions += 1;
        // Level-0 assignments never need their reasons again (conflict
        // analysis skips level-0 literals), so clear them before crefs move.
        for l in &self.trail {
            self.reason[l.var().index()] = NULL_CLAUSE;
        }
        // Decide which learned clauses to keep: all short ones, plus the
        // most active half of the rest.
        let mut victims: Vec<(u32, f64)> = Vec::new();
        let mut keep_learned: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &(cref, act) in &self.learned_clauses {
            let len = self.db[cref as usize] as usize;
            if len <= 3 {
                keep_learned.insert(cref);
            } else {
                victims.push((cref, act));
            }
        }
        victims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let keep_half = victims.len() / 2;
        for &(cref, _) in victims.iter().take(keep_half) {
            keep_learned.insert(cref);
        }
        let drop: std::collections::HashSet<u32> =
            victims.iter().skip(keep_half).map(|&(c, _)| c).collect();

        // Compact the arena, remapping clause refs.
        let mut new_db: Vec<u32> = Vec::with_capacity(self.db.len());
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut cref = 0usize;
        while cref < self.db.len() {
            let len = self.db[cref] as usize;
            if !drop.contains(&(cref as u32)) {
                remap.insert(cref as u32, new_db.len() as u32);
                new_db.extend_from_slice(&self.db[cref..cref + 1 + len]);
            }
            cref += 1 + len;
        }
        self.db = new_db;
        // Rebuild watches.
        for w in &mut self.watches {
            w.clear();
        }
        let mut at = 0usize;
        while at < self.db.len() {
            let len = self.db[at] as usize;
            self.watches[SatLit(self.db[at + 1]).index()].push(at as u32);
            self.watches[SatLit(self.db[at + 2]).index()].push(at as u32);
            at += 1 + len;
        }
        // Remap the learned bookkeeping.
        let old = std::mem::take(&mut self.learned_clauses);
        self.learned_index.clear();
        for (cref, act) in old {
            if let Some(&new_ref) = remap.get(&cref) {
                self.learned_index
                    .insert(new_ref, self.learned_clauses.len());
                self.learned_clauses.push((new_ref, act));
            }
        }
        // Grow the threshold geometrically.
        self.max_learned += self.max_learned / 2;
    }

    fn pick_branch(&mut self) -> Option<SatVar> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v as usize] == LBool::Undef {
                return Some(SatVar::new(v));
            }
        }
        None
    }

    /// Solves under the given assumptions.
    ///
    /// Returns [`SolveResult::Unknown`] if the conflict budget runs out;
    /// after [`SolveResult::Sat`], [`Solver::model_value`] exposes the
    /// model. The solver is reusable after any outcome.
    pub fn solve(&mut self, assumptions: &[SatLit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.backtrack(0);
        let mut restart_unit = 0u64;
        let restart_base = 100u64;
        let mut conflicts_since_restart = 0u64;
        let result = loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break SolveResult::Unsat;
                }
                if self
                    .conflict_budget
                    .is_some_and(|b| self.stats.conflicts >= b)
                {
                    break SolveResult::Unknown;
                }
                let (learned, bt) = self.analyze(confl);
                self.backtrack(bt);
                if learned.len() == 1 {
                    self.enqueue(learned[0], NULL_CLAUSE);
                } else {
                    let cref = self.alloc_clause(&learned);
                    self.learned_index.insert(cref, self.learned_clauses.len());
                    self.learned_clauses.push((cref, self.cla_inc));
                    self.enqueue(learned[0], cref);
                }
                self.stats.learned += 1;
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
            } else if conflicts_since_restart >= restart_base * luby(restart_unit) {
                self.stats.restarts += 1;
                restart_unit += 1;
                conflicts_since_restart = 0;
                self.backtrack(0);
                if self.learned_clauses.len() > self.max_learned {
                    self.reduce_db();
                }
            } else if (self.decision_level() as usize) < assumptions.len() {
                let p = assumptions[self.decision_level() as usize];
                match self.value(p) {
                    LBool::True => self.new_decision_level(),
                    LBool::False => break SolveResult::Unsat,
                    LBool::Undef => {
                        self.new_decision_level();
                        self.enqueue(p, NULL_CLAUSE);
                    }
                }
            } else if let Some(v) = self.pick_branch() {
                self.stats.decisions += 1;
                self.new_decision_level();
                self.enqueue(v.lit(!self.phase[v.index()]), NULL_CLAUSE);
            } else {
                self.model = self.assign.clone();
                break SolveResult::Sat;
            }
        };
        self.backtrack(0);
        result
    }

    /// The value of a variable in the most recent model, or `None` if the
    /// last solve was not SAT (or the variable did not exist then).
    pub fn model_value(&self, v: SatVar) -> Option<bool> {
        match self.model.get(v.index()) {
            Some(LBool::True) => Some(true),
            Some(LBool::False) => Some(false),
            _ => None,
        }
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,...
fn luby(mut i: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.pos()]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
        assert!(!s.add_clause(&[a.neg()]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.pos(), a.neg()]));
        assert_eq!(s.solve(&[a.pos()]), SolveResult::Sat);
        assert_eq!(s.solve(&[a.neg()]), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // Two pigeons, one hole.
        let mut s = Solver::new();
        let p1 = s.new_var();
        let p2 = s.new_var();
        s.add_clause(&[p1.pos()]);
        s.add_clause(&[p2.pos()]);
        s.add_clause(&[p1.neg(), p2.neg()]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_sat_with_model() {
        // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 = 1 => x1 = 0, x2 = 1.
        let mut s = Solver::new();
        let x: Vec<SatVar> = (0..3).map(|_| s.new_var()).collect();
        let xor1 = |s: &mut Solver, a: SatVar, b: SatVar| {
            s.add_clause(&[a.pos(), b.pos()]);
            s.add_clause(&[a.neg(), b.neg()]);
        };
        xor1(&mut s, x[0], x[1]);
        xor1(&mut s, x[1], x[2]);
        s.add_clause(&[x[0].pos()]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.model_value(x[0]), Some(true));
        assert_eq!(s.model_value(x[1]), Some(false));
        assert_eq!(s.model_value(x[2]), Some(true));
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos(), b.pos()]);
        assert_eq!(s.solve(&[a.neg(), b.neg()]), SolveResult::Unsat);
        // Without assumptions the formula is still satisfiable.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.solve(&[a.neg()]), SolveResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn php_3_into_2_unsat() {
        // Pigeonhole 3 pigeons, 2 holes: forces real conflict analysis.
        let mut s = Solver::new();
        let mut x = [[SatVar::new(0); 2]; 3];
        for p in 0..3 {
            for h in 0..2 {
                x[p][h] = s.new_var();
            }
        }
        for p in 0..3 {
            s.add_clause(&[x[p][0].pos(), x[p][1].pos()]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in p1 + 1..3 {
                    s.add_clause(&[x[p1][h].neg(), x[p2][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn budget_yields_unknown_on_hard_instance() {
        // Pigeonhole 7 into 6 with a budget of 1 conflict.
        let n = 7;
        let mut s = Solver::new();
        let mut x = vec![vec![SatVar::new(0); n - 1]; n];
        for (p, row) in x.iter_mut().enumerate() {
            for h in 0..n - 1 {
                row[h] = s.new_var();
                let _ = p;
            }
        }
        for p in 0..n {
            let clause: Vec<SatLit> = (0..n - 1).map(|h| x[p][h].pos()).collect();
            s.add_clause(&clause);
        }
        for h in 0..n - 1 {
            for p1 in 0..n {
                for p2 in p1 + 1..n {
                    s.add_clause(&[x[p1][h].neg(), x[p2][h].neg()]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn random_3sat_models_are_valid() {
        // Deterministic pseudo-random 3-SAT at easy density; every SAT
        // answer's model must satisfy all clauses.
        let mut rng = parsweep_aig::random::SplitMix64::new(77);
        for round in 0..20 {
            let nv = 12;
            let nc = 30 + round;
            let mut s = Solver::new();
            let vars: Vec<SatVar> = (0..nv).map(|_| s.new_var()).collect();
            let mut clauses = Vec::new();
            for _ in 0..nc {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = vars[rng.below(nv)];
                    c.push(v.lit(rng.bool()));
                }
                clauses.push(c.clone());
                s.add_clause(&c);
            }
            match s.solve(&[]) {
                SolveResult::Sat => {
                    for c in &clauses {
                        let ok = c.iter().any(|l| {
                            let val = s.model_value(l.var()).unwrap();
                            val != l.is_neg()
                        });
                        assert!(ok, "model violates clause {c:?}");
                    }
                }
                SolveResult::Unsat => {}
                SolveResult::Unknown => panic!("no budget set"),
            }
        }
    }

    #[test]
    fn database_reduction_preserves_soundness() {
        // PHP(7 -> 6) with an aggressive reduction threshold: the solver
        // must still conclude UNSAT, and reductions must actually fire.
        let n = 7;
        let mut s = Solver::new();
        s.set_reduce_threshold(40);
        let mut x = vec![vec![SatVar::new(0); n - 1]; n];
        for row in x.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &x {
            let clause: Vec<SatLit> = row.iter().map(|v| v.pos()).collect();
            s.add_clause(&clause);
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..n - 1 {
            for p1 in 0..n {
                for p2 in p1 + 1..n {
                    s.add_clause(&[x[p1][h].neg(), x[p2][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats().reductions > 0, "stats: {:?}", s.stats());
    }

    #[test]
    fn database_reduction_on_satisfiable_random_instances() {
        let mut rng = parsweep_aig::random::SplitMix64::new(3);
        for round in 0..6 {
            let nv = 30;
            let nc = 120;
            let mut s = Solver::new();
            s.set_reduce_threshold(20);
            let vars: Vec<SatVar> = (0..nv).map(|_| s.new_var()).collect();
            let mut clauses = Vec::new();
            for _ in 0..nc {
                let c: Vec<SatLit> = (0..3)
                    .map(|_| vars[rng.below(nv)].lit(rng.bool()))
                    .collect();
                clauses.push(c.clone());
                s.add_clause(&c);
            }
            if s.solve(&[]) == SolveResult::Sat {
                for c in &clauses {
                    assert!(
                        c.iter()
                            .any(|l| s.model_value(l.var()).unwrap() != l.is_neg()),
                        "round {round}: model violates {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}

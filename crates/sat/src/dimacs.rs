//! DIMACS CNF interchange: read and write the standard SAT input format,
//! so the embedded solver can be exercised against external instances and
//! encoded miters can be exported to external solvers.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

use crate::slit::{SatLit, SatVar};
use crate::solver::Solver;

/// A parsed CNF formula.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<SatLit>>,
}

impl Cnf {
    /// Loads the formula into a fresh solver.
    pub fn into_solver(&self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }
}

/// Error reading a DIMACS file.
#[derive(Debug)]
pub enum ParseDimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::Io(e) => write!(f, "i/o error: {e}"),
            ParseDimacsError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseDimacsError {}

impl From<io::Error> for ParseDimacsError {
    fn from(e: io::Error) -> Self {
        ParseDimacsError::Io(e)
    }
}

/// Reads a DIMACS CNF file (`c` comments, `p cnf V C` header,
/// zero-terminated clauses possibly spanning lines).
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed input; literals outside the
/// declared variable range are rejected.
pub fn read_dimacs<R: Read>(reader: R) -> Result<Cnf, ParseDimacsError> {
    let reader = io::BufReader::new(reader);
    let mut num_vars: Option<usize> = None;
    let mut clauses: Vec<Vec<SatLit>> = Vec::new();
    let mut current: Vec<SatLit> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if trimmed.starts_with('p') {
            let mut it = trimmed.split_whitespace();
            let (_p, kind) = (it.next(), it.next());
            if kind != Some("cnf") {
                return Err(ParseDimacsError::Malformed {
                    line: line_no,
                    message: format!("expected 'p cnf', got {trimmed:?}"),
                });
            }
            let v: usize =
                it.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or(ParseDimacsError::Malformed {
                        line: line_no,
                        message: "bad variable count".into(),
                    })?;
            num_vars = Some(v);
            continue;
        }
        let nv = num_vars.ok_or(ParseDimacsError::Malformed {
            line: line_no,
            message: "clause before 'p cnf' header".into(),
        })?;
        for tok in trimmed.split_whitespace() {
            let val: i64 = tok.parse().map_err(|_| ParseDimacsError::Malformed {
                line: line_no,
                message: format!("bad literal {tok:?}"),
            })?;
            if val == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let var = val.unsigned_abs() as usize - 1;
                if var >= nv {
                    return Err(ParseDimacsError::Malformed {
                        line: line_no,
                        message: format!("literal {val} outside 1..={nv}"),
                    });
                }
                current.push(SatVar::new(var as u32).lit(val < 0));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Cnf {
        num_vars: num_vars.unwrap_or(0),
        clauses,
    })
}

/// Writes a formula in DIMACS CNF format.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_dimacs<W: Write>(cnf: &Cnf, writer: W) -> io::Result<()> {
    let mut w = io::BufWriter::new(writer);
    writeln!(w, "p cnf {} {}", cnf.num_vars, cnf.clauses.len())?;
    for clause in &cnf.clauses {
        for l in clause {
            let v = l.var().index() as i64 + 1;
            write!(w, "{} ", if l.is_neg() { -v } else { v })?;
        }
        writeln!(w, "0")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parses_standard_instance() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let mut s = cnf.into_solver();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn clause_may_span_lines() {
        let text = "p cnf 2 1\n1\n2 0\n";
        let cnf = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(
            cnf.clauses,
            vec![vec![SatVar::new(0).pos(), SatVar::new(1).pos(),]]
        );
    }

    #[test]
    fn unsat_instance_roundtrip() {
        let cnf = Cnf {
            num_vars: 1,
            clauses: vec![vec![SatVar::new(0).pos()], vec![SatVar::new(0).neg()]],
        };
        let mut buf = Vec::new();
        write_dimacs(&cnf, &mut buf).unwrap();
        let back = read_dimacs(&buf[..]).unwrap();
        assert_eq!(back, cnf);
        let mut s = back.into_solver();
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_dimacs("1 2 0\n".as_bytes()).is_err()); // no header
        assert!(read_dimacs("p cnf 1 1\n5 0\n".as_bytes()).is_err()); // range
        assert!(read_dimacs("p dnf 1 1\n".as_bytes()).is_err()); // kind
        assert!(read_dimacs("p cnf 1 1\nx 0\n".as_bytes()).is_err()); // token
    }

    #[test]
    fn trailing_unterminated_clause_is_kept() {
        let cnf = read_dimacs("p cnf 2 1\n1 -2\n".as_bytes()).unwrap();
        assert_eq!(cnf.clauses.len(), 1);
    }
}

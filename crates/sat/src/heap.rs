//! Indexed max-heap over variable activities (the VSIDS order).

/// A binary max-heap of variable indices keyed by an external activity
/// array, with position tracking for `O(log n)` key increases.
#[derive(Clone, Debug, Default)]
pub struct VarOrder {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `-1` if absent.
    pos: Vec<i32>,
}

impl VarOrder {
    /// Creates an empty order.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn new() -> Self {
        VarOrder::default()
    }

    /// Ensures capacity for variable indices `< n`.
    pub fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, -1);
        }
    }

    /// True if the variable is currently in the heap.
    pub fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] >= 0
    }

    /// True if the heap is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts a variable (no-op if present).
    pub fn insert(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with maximum activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after the activity of `v` increased.
    pub fn increased(&mut self, v: u32, activity: &[f64]) {
        let p = self.pos[v as usize];
        if p >= 0 {
            self.sift_up(p as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as i32;
        self.pos[self.heap[j] as usize] = j as i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = [1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = VarOrder::new();
        h.grow(5);
        for v in 0..5 {
            h.insert(v, &act);
        }
        let mut order = Vec::new();
        while let Some(v) = h.pop_max(&act) {
            order.push(v);
        }
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let act = [1.0, 2.0];
        let mut h = VarOrder::new();
        h.grow(2);
        h.insert(0, &act);
        h.insert(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
        assert!(h.is_empty());
    }

    #[test]
    fn increased_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarOrder::new();
        h.grow(3);
        for v in 0..3 {
            h.insert(v, &act);
        }
        act[0] = 10.0;
        h.increased(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
    }
}

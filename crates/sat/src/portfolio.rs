//! A multi-engine portfolio checker — the stand-in for the commercial
//! tool (Cadence Conformal LEC) in the paper's evaluation.
//!
//! The paper notes that commercial checkers are believed to combine
//! several engines and stop as soon as one finishes. This portfolio runs,
//! in order: structural check, random-simulation disproof, exhaustive
//! truth-table PO proving (effective on small-support control logic), and
//! finally SAT sweeping.
//!
//! Since the adaptive-proving refactor the stages live behind the
//! [`ProofEngine`](crate::prover::ProofEngine) trait and this module is
//! the *fixed-sequence* driver over them; [`crate::Prover`] is the
//! adaptive driver over the same engines. The two agree on verdicts — the
//! dispatcher only changes who decides first and at what cost.

use parsweep_aig::Aig;
use parsweep_par::{CancelToken, Executor};
use parsweep_trace::{Clock, WallClock};

use crate::prover::{
    standard_engines, AttemptStatus, Budget, Difficulty, EngineAttempt, EngineKind,
};
use crate::sweep::{SweepConfig, SweepStats, Verdict};

/// Which portfolio engine produced the verdict (an alias of the dispatch
/// layer's [`EngineKind`] since the stages moved behind the
/// [`ProofEngine`](crate::prover::ProofEngine) trait).
pub use crate::prover::EngineKind as Engine;

/// Portfolio configuration.
#[derive(Clone, Debug)]
pub struct PortfolioConfig {
    /// PO support-size cap for the exhaustive engine.
    pub po_support_cap: usize,
    /// PO cone-size cap (AND gates) for the exhaustive engine — a proxy
    /// for the BDD blow-up that limits commercial global engines on
    /// multiplier-like structure.
    pub po_cone_cap: usize,
    /// Memory (words) for the exhaustive engine's simulation table.
    pub memory_words: usize,
    /// Random-simulation words for the disproof engine.
    pub sim_words: usize,
    /// SAT sweeping configuration for the fallback engine.
    pub sweep: SweepConfig,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            po_support_cap: 20,
            po_cone_cap: 3000,
            memory_words: parsweep_sim::DEFAULT_MEMORY_WORDS,
            sim_words: 8,
            sweep: SweepConfig::default(),
        }
    }
}

/// Portfolio outcome: verdict, deciding engine, per-engine attempt record
/// and sweep-style statistics.
#[derive(Clone, Debug)]
pub struct PortfolioResult {
    /// Final verdict.
    pub verdict: Verdict,
    /// The engine that produced the verdict.
    pub engine: Engine,
    /// Statistics (SAT stats only populated when SAT ran).
    pub stats: SweepStats,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// One entry per registered engine, in sequence order — losers and
    /// skipped engines included, each with its elapsed time on the
    /// injected [`Clock`], so difficulty models and bench rows can charge
    /// loser costs instead of attributing only the winner.
    pub attempts: Vec<EngineAttempt>,
}

/// Runs the engine portfolio on a miter, timed by the wall clock.
pub fn portfolio_check(miter: &Aig, exec: &Executor, cfg: &PortfolioConfig) -> PortfolioResult {
    portfolio_check_clocked(miter, exec, cfg, &WallClock::new())
}

/// Runs the engine portfolio on a miter with an injected [`Clock`] — the
/// single time source for the reported `seconds` (total and per attempt),
/// so tests (and the service's deterministic mode) can fix it.
pub fn portfolio_check_clocked(
    miter: &Aig,
    exec: &Executor,
    cfg: &PortfolioConfig,
    clock: &dyn Clock,
) -> PortfolioResult {
    let start = clock.now();
    let engines = standard_engines(cfg);
    let difficulty = Difficulty::analyze(miter, cfg.po_support_cap, cfg.po_cone_cap);
    let budget = Budget::default();
    let token = CancelToken::never();

    let mut attempts = Vec::with_capacity(engines.len());
    let mut decided: Option<(EngineKind, Verdict, SweepStats)> = None;
    let mut last_run: Option<(EngineKind, Verdict, SweepStats)> = None;
    for engine in &engines {
        if decided.is_some() || !engine.admits(&difficulty) {
            attempts.push(EngineAttempt {
                engine: engine.kind(),
                status: AttemptStatus::Skipped,
                seconds: 0.0,
            });
            continue;
        }
        let t0 = clock.now();
        let report = engine.prove(miter, exec, &budget, &token);
        let seconds = clock.since(t0).as_secs_f64();
        let won = !matches!(report.verdict, Verdict::Undecided);
        attempts.push(EngineAttempt {
            engine: engine.kind(),
            status: if won {
                AttemptStatus::Won
            } else {
                AttemptStatus::Lost
            },
            seconds,
        });
        last_run = Some((engine.kind(), report.verdict.clone(), report.stats));
        if won {
            decided = Some((engine.kind(), report.verdict, report.stats));
        }
    }
    // The SAT fallback always runs last, so an undecided portfolio is
    // attributed to it with its statistics — as before the refactor.
    let (engine, verdict, stats) = decided.or(last_run).unwrap_or((
        EngineKind::SatSweep,
        Verdict::Undecided,
        SweepStats::default(),
    ));
    PortfolioResult {
        verdict,
        engine,
        stats,
        seconds: clock.since(start).as_secs_f64(),
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::{miter, Aig};

    fn exec() -> Executor {
        Executor::with_threads(1)
    }

    #[test]
    fn structural_engine_wins_on_identical() {
        let a = parsweep_aig::random::random_aig(6, 40, 2, 5);
        let m = miter(&a, &a).unwrap();
        let r = portfolio_check(&m, &exec(), &PortfolioConfig::default());
        assert_eq!(r.engine, Engine::Structural);
        assert!(r.verdict.is_equivalent());
    }

    #[test]
    fn injected_clock_is_the_only_time_source() {
        use parsweep_trace::ManualClock;
        let a = parsweep_aig::random::random_aig(6, 40, 2, 5);
        let m = miter(&a, &a).unwrap();
        let clock = ManualClock::new();
        let r = portfolio_check_clocked(&m, &exec(), &PortfolioConfig::default(), &clock);
        assert_eq!(r.seconds, 0.0, "unadvanced manual clock must report zero");
        clock.advance(std::time::Duration::from_millis(1500));
        let r = portfolio_check_clocked(&m, &exec(), &PortfolioConfig::default(), &clock);
        // The whole run happens at one frozen instant: still zero.
        assert_eq!(r.seconds, 0.0);
        assert!(r.attempts.iter().all(|a| a.seconds == 0.0));
    }

    #[test]
    fn random_sim_disproves_quickly() {
        let mut a = Aig::new();
        let xs = a.add_inputs(4);
        let f = a.and_all(xs.iter().copied());
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(4);
        let g = b.or_all(ys.iter().copied());
        b.add_po(g);
        let m = miter(&a, &b).unwrap();
        let r = portfolio_check(&m, &exec(), &PortfolioConfig::default());
        assert_eq!(r.engine, Engine::RandomSim);
        match r.verdict {
            Verdict::NotEquivalent(cex) => {
                let out = m.eval(&cex.to_dense(&m));
                assert!(out.iter().any(|&x| x));
            }
            other => panic!("expected disproof, got {other:?}"),
        }
    }

    #[test]
    fn exhaustive_engine_proves_small_supports() {
        // Majority tree, two builds; supports are small per PO.
        let mut a = Aig::new();
        let xs = a.add_inputs(3);
        let f = a.maj3(xs[0], xs[1], xs[2]);
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(3);
        // Majority via mux: if a then (b|c) else (b&c).
        let or = b.or(ys[1], ys[2]);
        let and = b.and(ys[1], ys[2]);
        let g = b.mux(ys[0], or, and);
        b.add_po(g);
        let m = miter(&a, &b).unwrap();
        let r = portfolio_check(&m, &exec(), &PortfolioConfig::default());
        assert_eq!(r.engine, Engine::ExhaustivePo);
        assert!(r.verdict.is_equivalent());
    }

    #[test]
    fn sat_fallback_on_large_supports() {
        // 30-input cones exceed the default cap but random sim cannot
        // disprove (they are equivalent), so SAT sweeping must decide.
        let n = 30;
        let mut a = Aig::new();
        let xs = a.add_inputs(n);
        let f = a.and_all(xs.iter().copied());
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(n);
        // Right-associated chain: structurally different from the
        // balanced tree, so strash cannot collapse the miter.
        let mut g = ys[n - 1];
        for &y in ys[..n - 1].iter().rev() {
            g = b.and(y, g);
        }
        b.add_po(g);
        let m = miter(&a, &b).unwrap();
        let cfg = PortfolioConfig {
            po_support_cap: 16,
            ..PortfolioConfig::default()
        };
        let r = portfolio_check(&m, &exec(), &cfg);
        assert_eq!(r.engine, Engine::SatSweep);
        assert!(r.verdict.is_equivalent());
        // Loser attempts are recorded with their cost; the inadmissible
        // exhaustive engine is marked skipped.
        assert_eq!(r.attempts.len(), 4);
        assert_eq!(r.attempts[0].status, AttemptStatus::Lost);
        assert_eq!(r.attempts[1].status, AttemptStatus::Lost);
        assert_eq!(r.attempts[2].status, AttemptStatus::Skipped);
        assert_eq!(r.attempts[3].status, AttemptStatus::Won);
    }
}

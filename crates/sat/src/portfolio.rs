//! A multi-engine portfolio checker — the stand-in for the commercial
//! tool (Cadence Conformal LEC) in the paper's evaluation.
//!
//! The paper notes that commercial checkers are believed to combine
//! several engines and stop as soon as one finishes. This portfolio runs,
//! in order: structural check, random-simulation disproof, exhaustive
//! truth-table PO proving (effective on small-support control logic), and
//! finally SAT sweeping.

use parsweep_aig::{is_proved, Aig, Var};
use parsweep_par::Executor;
use parsweep_sim::{check_windows, simulate, PairCheck, PairOutcome, Patterns, Window};
use parsweep_trace::{Clock, WallClock};

use crate::sweep::{sat_sweep, SweepConfig, SweepResult, SweepStats, Verdict};

/// Which portfolio engine produced the verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Structural hashing alone proved the miter.
    Structural,
    /// Random simulation found a counter-example.
    RandomSim,
    /// Exhaustive truth-table computation proved all POs zero.
    ExhaustivePo,
    /// SAT sweeping decided (or gave up on) the miter.
    SatSweep,
}

/// Portfolio configuration.
#[derive(Clone, Debug)]
pub struct PortfolioConfig {
    /// PO support-size cap for the exhaustive engine.
    pub po_support_cap: usize,
    /// PO cone-size cap (AND gates) for the exhaustive engine — a proxy
    /// for the BDD blow-up that limits commercial global engines on
    /// multiplier-like structure.
    pub po_cone_cap: usize,
    /// Memory (words) for the exhaustive engine's simulation table.
    pub memory_words: usize,
    /// Random-simulation words for the disproof engine.
    pub sim_words: usize,
    /// SAT sweeping configuration for the fallback engine.
    pub sweep: SweepConfig,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            po_support_cap: 20,
            po_cone_cap: 3000,
            memory_words: parsweep_sim::DEFAULT_MEMORY_WORDS,
            sim_words: 8,
            sweep: SweepConfig::default(),
        }
    }
}

/// Portfolio outcome: verdict, deciding engine and sweep-style statistics.
#[derive(Clone, Debug)]
pub struct PortfolioResult {
    /// Final verdict.
    pub verdict: Verdict,
    /// The engine that produced the verdict.
    pub engine: Engine,
    /// Statistics (SAT stats only populated when SAT ran).
    pub stats: SweepStats,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// Runs the engine portfolio on a miter, timed by the wall clock.
pub fn portfolio_check(miter: &Aig, exec: &Executor, cfg: &PortfolioConfig) -> PortfolioResult {
    portfolio_check_clocked(miter, exec, cfg, &WallClock::new())
}

/// Runs the engine portfolio on a miter with an injected [`Clock`] — the
/// single time source for the reported `seconds`, so tests (and the
/// service's deterministic mode) can fix it.
pub fn portfolio_check_clocked(
    miter: &Aig,
    exec: &Executor,
    cfg: &PortfolioConfig,
    clock: &dyn Clock,
) -> PortfolioResult {
    let start = clock.now();

    // Engine 1: structural.
    if is_proved(miter) {
        return PortfolioResult {
            verdict: Verdict::Equivalent,
            engine: Engine::Structural,
            stats: SweepStats::default(),
            seconds: clock.since(start).as_secs_f64(),
        };
    }

    // Engine 2: random-simulation disproof.
    let patterns = Patterns::random(miter.num_pis(), cfg.sim_words, 0xc0ffee);
    let sigs = simulate(miter, exec, &patterns);
    if let Some(cex) = parsweep_sim::find_po_counterexample(miter, &sigs, &patterns) {
        return PortfolioResult {
            verdict: Verdict::NotEquivalent(cex),
            engine: Engine::RandomSim,
            stats: SweepStats::default(),
            seconds: clock.since(start).as_secs_f64(),
        };
    }

    // Engine 3: exhaustive PO truth tables when supports are small and
    // cones stay below the BDD-style blow-up proxy.
    let supports = miter.bounded_supports(cfg.po_support_cap);
    let simulatable = miter
        .pos()
        .iter()
        .all(|po| po.var().is_const() || supports[po.var().index()].size().is_some());
    let cones_ok = simulatable
        && miter
            .pos()
            .iter()
            .all(|po| po.var().is_const() || miter.tfi_cone(&[po.var()]).len() <= cfg.po_cone_cap);
    if simulatable && cones_ok {
        let windows: Vec<Window> = miter
            .pos()
            .iter()
            .filter(|po| !po.var().is_const())
            .map(|po| {
                let pair = PairCheck {
                    a: Var::FALSE,
                    b: po.var(),
                    complement: po.is_complemented(),
                };
                Window::global(miter, pair)
            })
            .collect();
        let (outcomes, _) = check_windows(miter, exec, &windows, cfg.memory_words);
        let mut verdict = Verdict::Equivalent;
        'outer: for (w, win) in windows.iter().enumerate() {
            for outcome in &outcomes[w] {
                if let PairOutcome::Mismatch { assignment, .. } = outcome {
                    let sparse: Vec<_> = win
                        .inputs
                        .iter()
                        .copied()
                        .zip(assignment.iter().copied())
                        .collect();
                    let cex = parsweep_sim::Cex::from_sparse(miter, &sparse);
                    verdict = Verdict::NotEquivalent(cex);
                    break 'outer;
                }
            }
        }
        return PortfolioResult {
            verdict,
            engine: Engine::ExhaustivePo,
            stats: SweepStats::default(),
            seconds: clock.since(start).as_secs_f64(),
        };
    }

    // Engine 4: SAT sweeping.
    let SweepResult { verdict, stats, .. } = sat_sweep(miter, exec, &cfg.sweep);
    PortfolioResult {
        verdict,
        engine: Engine::SatSweep,
        stats,
        seconds: clock.since(start).as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::{miter, Aig};

    fn exec() -> Executor {
        Executor::with_threads(1)
    }

    #[test]
    fn structural_engine_wins_on_identical() {
        let a = parsweep_aig::random::random_aig(6, 40, 2, 5);
        let m = miter(&a, &a).unwrap();
        let r = portfolio_check(&m, &exec(), &PortfolioConfig::default());
        assert_eq!(r.engine, Engine::Structural);
        assert!(r.verdict.is_equivalent());
    }

    #[test]
    fn injected_clock_is_the_only_time_source() {
        use parsweep_trace::ManualClock;
        let a = parsweep_aig::random::random_aig(6, 40, 2, 5);
        let m = miter(&a, &a).unwrap();
        let clock = ManualClock::new();
        let r = portfolio_check_clocked(&m, &exec(), &PortfolioConfig::default(), &clock);
        assert_eq!(r.seconds, 0.0, "unadvanced manual clock must report zero");
        clock.advance(std::time::Duration::from_millis(1500));
        let r = portfolio_check_clocked(&m, &exec(), &PortfolioConfig::default(), &clock);
        // The whole run happens at one frozen instant: still zero.
        assert_eq!(r.seconds, 0.0);
    }

    #[test]
    fn random_sim_disproves_quickly() {
        let mut a = Aig::new();
        let xs = a.add_inputs(4);
        let f = a.and_all(xs.iter().copied());
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(4);
        let g = b.or_all(ys.iter().copied());
        b.add_po(g);
        let m = miter(&a, &b).unwrap();
        let r = portfolio_check(&m, &exec(), &PortfolioConfig::default());
        assert_eq!(r.engine, Engine::RandomSim);
        match r.verdict {
            Verdict::NotEquivalent(cex) => {
                let out = m.eval(&cex.to_dense(&m));
                assert!(out.iter().any(|&x| x));
            }
            other => panic!("expected disproof, got {other:?}"),
        }
    }

    #[test]
    fn exhaustive_engine_proves_small_supports() {
        // Majority tree, two builds; supports are small per PO.
        let mut a = Aig::new();
        let xs = a.add_inputs(3);
        let f = a.maj3(xs[0], xs[1], xs[2]);
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(3);
        // Majority via mux: if a then (b|c) else (b&c).
        let or = b.or(ys[1], ys[2]);
        let and = b.and(ys[1], ys[2]);
        let g = b.mux(ys[0], or, and);
        b.add_po(g);
        let m = miter(&a, &b).unwrap();
        let r = portfolio_check(&m, &exec(), &PortfolioConfig::default());
        assert_eq!(r.engine, Engine::ExhaustivePo);
        assert!(r.verdict.is_equivalent());
    }

    #[test]
    fn sat_fallback_on_large_supports() {
        // 30-input cones exceed the default cap but random sim cannot
        // disprove (they are equivalent), so SAT sweeping must decide.
        let n = 30;
        let mut a = Aig::new();
        let xs = a.add_inputs(n);
        let f = a.and_all(xs.iter().copied());
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(n);
        // Right-associated chain: structurally different from the
        // balanced tree, so strash cannot collapse the miter.
        let mut g = ys[n - 1];
        for &y in ys[..n - 1].iter().rev() {
            g = b.and(y, g);
        }
        b.add_po(g);
        let m = miter(&a, &b).unwrap();
        let cfg = PortfolioConfig {
            po_support_cap: 16,
            ..PortfolioConfig::default()
        };
        let r = portfolio_check(&m, &exec(), &cfg);
        assert_eq!(r.engine, Engine::SatSweep);
        assert!(r.verdict.is_equivalent());
    }
}

//! Adaptive per-class proving: a dispatch layer over heterogeneous proof
//! engines.
//!
//! The direct sequel to the source paper ("Datapath CEC With Hybrid
//! Sweeping Engines and Parallelization") observes that the big wins come
//! from dispatching *per EC class* among heterogeneous engines with
//! budgets adapted to observed difficulty, rather than running one fixed
//! engine sequence per miter. This module provides that layer:
//!
//! * [`ProofEngine`] — the common trait each portfolio stage sits behind.
//!   The candidate unit is an EC class / PO cone (a standalone miter whose
//!   POs must be proved constant zero), not a whole design.
//! * [`Prover`] — the dispatcher. In [`ProverMode::Sequential`] it runs
//!   the registered engines in order (the PR-era portfolio behaviour); in
//!   [`ProverMode::Adaptive`] it ranks engines by expected decision cost
//!   from a [`DifficultyModel`] and, on hard classes, races the top
//!   engines concurrently with first-verdict-wins early cancellation.
//! * [`Difficulty`] — the feature vector driving routing: support size,
//!   cone size, and upstream sim-refinement velocity.
//!
//! Cancellation preserves the "partial, never wrong" invariant: every
//! engine polls its [`CancelToken`] at natural checkpoint boundaries and
//! degrades to [`Verdict::Undecided`] when it trips — a cancelled rival
//! can lose a race, but can never fabricate a verdict. Losers are stopped
//! through *linked child* tokens ([`CancelToken::child`]), so the
//! dispatcher's early-cancel never trips the caller's job token.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use parsweep_aig::{is_proved, Aig, Var};
use parsweep_par::{CancelToken, Executor};
use parsweep_sim::{check_windows_cancellable, simulate, PairCheck, PairOutcome, Patterns, Window};
use parsweep_trace::{metrics, Clock, WallClock};

use crate::sweep::{sat_sweep_seeded_cancellable, SweepConfig, SweepStats, Verdict};

/// Which proof engine a verdict, attempt or cache entry refers to.
///
/// The first four kinds are the portfolio stages this crate implements;
/// [`EngineKind::SimSweep`] labels the simulation-based sweeping engine
/// registered from the core crate (the paper's own engine), which sits
/// above this crate in the dependency graph but participates in the same
/// dispatch layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Structural hashing alone.
    Structural,
    /// Random-simulation disproof.
    RandomSim,
    /// Exhaustive truth-table PO proving.
    ExhaustivePo,
    /// SAT sweeping.
    SatSweep,
    /// The simulation-based sweeping engine (registered by `core`).
    SimSweep,
}

impl EngineKind {
    /// Every kind, in fixed slot order.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Structural,
        EngineKind::RandomSim,
        EngineKind::ExhaustivePo,
        EngineKind::SatSweep,
        EngineKind::SimSweep,
    ];

    /// Stable snake_case label (metric label values, span names, cache
    /// entries).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Structural => "structural",
            EngineKind::RandomSim => "random_sim",
            EngineKind::ExhaustivePo => "exhaustive_po",
            EngineKind::SatSweep => "sat_sweep",
            EngineKind::SimSweep => "sim_sweep",
        }
    }

    /// The engine's fixed counter slot (see
    /// [`metrics::PROVE_ENGINE_SLOTS`]).
    pub fn slot(self) -> usize {
        match self {
            EngineKind::Structural => 0,
            EngineKind::RandomSim => 1,
            EngineKind::ExhaustivePo => 2,
            EngineKind::SatSweep => 3,
            EngineKind::SimSweep => 4,
        }
    }

    /// Parses [`EngineKind::name`] back to the kind.
    pub fn from_name(name: &str) -> Option<Self> {
        EngineKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Difficulty features of one candidate class, driving engine selection
/// and budgets.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Difficulty {
    /// Primary inputs of the cone.
    pub pis: usize,
    /// AND gates in the cone.
    pub ands: usize,
    /// Largest per-PO support, or `None` when any PO's support exceeds
    /// the analysis cap (the exhaustive engine's admission bound).
    pub max_po_support: Option<usize>,
    /// Largest per-PO TFI cone (nodes), or `None` when any PO's cone
    /// exceeds the analysis cap.
    pub max_po_cone: Option<usize>,
    /// Upstream sim-refinement velocity: equivalence classes refined per
    /// pruned simulation round in the flow that produced this residual
    /// cone (`None` when no upstream engine ran).
    pub refine_velocity: Option<f64>,
}

/// Difficulty buckets the model learns over (log2 of cone size).
const DIFFICULTY_BUCKETS: usize = 16;

impl Difficulty {
    /// Analyzes a cone with the given admission caps. Matches the
    /// fixed-sequence portfolio's admission test exactly: a PO whose
    /// support exceeds `support_cap` (or whose TFI cone exceeds
    /// `cone_cap`) makes the respective feature `None`.
    pub fn analyze(cone: &Aig, support_cap: usize, cone_cap: usize) -> Self {
        let supports = cone.bounded_supports(support_cap);
        let mut max_support = Some(0usize);
        let mut max_cone = Some(0usize);
        for po in cone.pos() {
            if po.var().is_const() {
                continue;
            }
            match (max_support, supports[po.var().index()].size()) {
                (Some(m), Some(s)) => max_support = Some(m.max(s)),
                _ => max_support = None,
            }
            if let Some(m) = max_cone {
                let c = cone.tfi_cone(&[po.var()]).len();
                max_cone = (c <= cone_cap).then_some(m.max(c));
            }
        }
        Difficulty {
            pis: cone.num_pis(),
            ands: cone.num_ands(),
            max_po_support: max_support,
            max_po_cone: max_cone,
            refine_velocity: None,
        }
    }

    /// The model bucket this difficulty falls into (log2 of cone size).
    fn bucket(&self) -> usize {
        let mut size = self.ands.max(1);
        let mut b = 0usize;
        while size > 1 && b + 1 < DIFFICULTY_BUCKETS {
            size >>= 1;
            b += 1;
        }
        b
    }
}

/// Per-attempt resource budget handed to an engine by the dispatcher.
/// `None` fields defer to the engine's own configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Wall-clock cap for the attempt (intersected with any engine-level
    /// budget).
    pub wall: Option<Duration>,
    /// Conflict budget per candidate-pair SAT call.
    pub conflicts_per_pair: Option<u64>,
    /// Conflict budget per final PO proof call.
    pub conflicts_per_po: Option<u64>,
}

/// What one engine attempt produced.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// The attempt's verdict ([`Verdict::Undecided`] when cancelled or
    /// out of budget — never a fabricated proof).
    pub verdict: Verdict,
    /// SAT-style statistics (populated by solver-backed engines).
    pub stats: SweepStats,
}

impl EngineReport {
    fn undecided() -> Self {
        EngineReport {
            verdict: Verdict::Undecided,
            stats: SweepStats::default(),
        }
    }
}

/// A proof engine the dispatcher can route classes to.
///
/// Implementations must uphold the cancellation invariant: when `token`
/// trips mid-attempt, `prove` returns [`Verdict::Undecided`] — partial,
/// never wrong. A decisive verdict must always be the result of completed
/// work.
pub trait ProofEngine: Send + Sync {
    /// The engine's kind (metric slot, label, cache tag).
    fn kind(&self) -> EngineKind;

    /// Whether this engine can attempt a class of this difficulty at all.
    fn admits(&self, _difficulty: &Difficulty) -> bool {
        true
    }

    /// True for cheap screening engines the dispatcher always runs inline
    /// before considering a concurrent race (structural hashing, random
    /// simulation): their cost is microseconds, so racing them buys
    /// nothing.
    fn prefilter(&self) -> bool {
        false
    }

    /// Cold-start cost estimate in microseconds, used to rank engines
    /// until the difficulty model has observations for the bucket.
    fn prior_cost_micros(&self, difficulty: &Difficulty) -> u64;

    /// Attempts the class. `cone` is a standalone miter (prove all POs
    /// constant zero); `budget` bounds the attempt; `token` must be
    /// polled at checkpoint boundaries.
    fn prove(
        &self,
        cone: &Aig,
        exec: &Executor,
        budget: &Budget,
        token: &CancelToken,
    ) -> EngineReport;
}

/// Structural hashing: free when the miter strashes to constant zero.
#[derive(Debug, Default)]
pub struct StructuralEngine;

impl ProofEngine for StructuralEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Structural
    }

    fn prefilter(&self) -> bool {
        true
    }

    fn prior_cost_micros(&self, difficulty: &Difficulty) -> u64 {
        1 + difficulty.ands as u64 / 512
    }

    fn prove(
        &self,
        cone: &Aig,
        _exec: &Executor,
        _budget: &Budget,
        _token: &CancelToken,
    ) -> EngineReport {
        EngineReport {
            verdict: if is_proved(cone) {
                Verdict::Equivalent
            } else {
                Verdict::Undecided
            },
            stats: SweepStats::default(),
        }
    }
}

/// Random-simulation disproof: a fixed batch of random patterns scanned
/// for a firing PO.
#[derive(Debug)]
pub struct RandomSimEngine {
    /// 64-bit pattern words to simulate.
    pub sim_words: usize,
    /// Pattern seed.
    pub seed: u64,
}

impl ProofEngine for RandomSimEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::RandomSim
    }

    fn prefilter(&self) -> bool {
        true
    }

    fn prior_cost_micros(&self, difficulty: &Difficulty) -> u64 {
        10 + (difficulty.ands * self.sim_words) as u64 / 256
    }

    fn prove(
        &self,
        cone: &Aig,
        exec: &Executor,
        _budget: &Budget,
        token: &CancelToken,
    ) -> EngineReport {
        if token.is_cancelled() {
            return EngineReport::undecided();
        }
        let patterns = Patterns::random(cone.num_pis(), self.sim_words, self.seed);
        let sigs = simulate(cone, exec, &patterns);
        EngineReport {
            verdict: match parsweep_sim::find_po_counterexample(cone, &sigs, &patterns) {
                Some(cex) => Verdict::NotEquivalent(cex),
                None => Verdict::Undecided,
            },
            stats: SweepStats::default(),
        }
    }
}

/// Exhaustive truth-table PO proving: admitted only when every PO support
/// and cone stays below the BDD-style blow-up proxy caps.
#[derive(Debug)]
pub struct ExhaustivePoEngine {
    /// PO support-size admission cap.
    pub po_support_cap: usize,
    /// PO cone-size admission cap (nodes).
    pub po_cone_cap: usize,
    /// Simulation-table memory budget in words.
    pub memory_words: usize,
}

impl ProofEngine for ExhaustivePoEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::ExhaustivePo
    }

    fn admits(&self, difficulty: &Difficulty) -> bool {
        difficulty
            .max_po_support
            .is_some_and(|s| s <= self.po_support_cap)
            && difficulty
                .max_po_cone
                .is_some_and(|c| c <= self.po_cone_cap)
    }

    fn prior_cost_micros(&self, difficulty: &Difficulty) -> u64 {
        // Truth-table work scales with 2^support; /2048 converts modeled
        // word-parallel evaluation into rough microseconds.
        let s = difficulty.max_po_support.unwrap_or(40).min(40) as u32;
        20 + (1u64 << s) / 2048 * difficulty.ands.max(1) as u64 / 64
    }

    fn prove(
        &self,
        cone: &Aig,
        exec: &Executor,
        _budget: &Budget,
        token: &CancelToken,
    ) -> EngineReport {
        let windows: Vec<Window> = cone
            .pos()
            .iter()
            .filter(|po| !po.var().is_const())
            .map(|po| {
                let pair = PairCheck {
                    a: Var::FALSE,
                    b: po.var(),
                    complement: po.is_complemented(),
                };
                Window::global(cone, pair)
            })
            .collect();
        let (outcomes, _) =
            check_windows_cancellable(cone, exec, &windows, self.memory_words, token);
        // A mismatch from any completed round is a real disproof; an
        // `Equal` claim needs every window fully resolved — cancelled
        // windows come back with *empty* outcome vectors and must yield
        // `Undecided`, never a fabricated proof.
        let mut complete = true;
        for (w, win) in windows.iter().enumerate() {
            for outcome in &outcomes[w] {
                if let PairOutcome::Mismatch { assignment, .. } = outcome {
                    let sparse: Vec<_> = win
                        .inputs
                        .iter()
                        .copied()
                        .zip(assignment.iter().copied())
                        .collect();
                    let cex = parsweep_sim::Cex::from_sparse(cone, &sparse);
                    return EngineReport {
                        verdict: Verdict::NotEquivalent(cex),
                        stats: SweepStats::default(),
                    };
                }
            }
            complete &= outcomes[w].len() == win.pairs.len();
        }
        EngineReport {
            verdict: if complete && !windows.is_empty() {
                Verdict::Equivalent
            } else if windows.is_empty() {
                // All POs constant: nothing left to disprove.
                Verdict::Equivalent
            } else {
                Verdict::Undecided
            },
            stats: SweepStats::default(),
        }
    }
}

/// SAT sweeping with dispatcher-imposed wall/conflict budgets.
#[derive(Debug)]
pub struct SatSweepEngine {
    /// Base sweeping configuration; the dispatcher's [`Budget`] overrides
    /// the conflict budgets and intersects the wall budget per attempt.
    pub cfg: SweepConfig,
}

impl ProofEngine for SatSweepEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::SatSweep
    }

    fn prior_cost_micros(&self, difficulty: &Difficulty) -> u64 {
        50 + difficulty.ands as u64 * 150
    }

    fn prove(
        &self,
        cone: &Aig,
        exec: &Executor,
        budget: &Budget,
        token: &CancelToken,
    ) -> EngineReport {
        let mut cfg = self.cfg.clone();
        if let Some(c) = budget.conflicts_per_pair {
            cfg.conflicts_per_pair = c;
        }
        if let Some(c) = budget.conflicts_per_po {
            cfg.conflicts_per_po = c;
        }
        cfg.wall_budget = match (cfg.wall_budget, budget.wall) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let result = sat_sweep_seeded_cancellable(cone, exec, &cfg, &[], token);
        EngineReport {
            verdict: result.verdict,
            stats: result.stats,
        }
    }
}

/// How one engine attempt ended, from the dispatcher's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptStatus {
    /// Produced the class's verdict.
    Won,
    /// Ran (to completion or its budget) without deciding first.
    Lost,
    /// Stopped at a poll point because a rival decided first or the race
    /// deadline tripped.
    Cancelled,
    /// Never ran: inadmissible for this difficulty, or a preceding
    /// engine in a sequential pass had already decided.
    Skipped,
}

/// One engine attempt with its cost — recorded for winners, losers *and*
/// skipped engines, because the difficulty model and the bench rows need
/// loser costs, not just the winner's.
#[derive(Clone, Copy, Debug)]
pub struct EngineAttempt {
    /// Which engine.
    pub engine: EngineKind,
    /// How the attempt ended.
    pub status: AttemptStatus,
    /// Wall seconds the attempt consumed (measured on the dispatcher's
    /// [`Clock`]; zero for skipped attempts).
    pub seconds: f64,
}

/// EWMA cost/win-rate cell of the difficulty model.
#[derive(Clone, Copy, Debug, Default)]
struct ModelCell {
    attempts: u64,
    decided: u64,
    ewma_micros: f64,
}

/// Per-(engine, difficulty-bucket) observed cost and decision rate.
///
/// `expected_decision_micros` is the routing score: the exponentially
/// weighted cost of one attempt divided by a Laplace-smoothed decision
/// rate, so an engine that is cheap but rarely decides ranks behind a
/// pricier engine that always does. Buckets with no observations fall
/// back to the engine's static prior, so cold routing equals the fixed
/// sequence's intent and adapts as classes are observed.
#[derive(Debug)]
pub struct DifficultyModel {
    cells: Mutex<[[ModelCell; DIFFICULTY_BUCKETS]; metrics::PROVE_ENGINE_SLOTS]>,
}

/// EWMA smoothing factor for observed attempt costs.
const MODEL_ALPHA: f64 = 0.3;

impl Default for DifficultyModel {
    fn default() -> Self {
        DifficultyModel {
            cells: Mutex::new(
                [[ModelCell::default(); DIFFICULTY_BUCKETS]; metrics::PROVE_ENGINE_SLOTS],
            ),
        }
    }
}

impl DifficultyModel {
    /// Records one attempt: its wall cost and whether it decided.
    pub fn observe(&self, engine: EngineKind, difficulty: &Difficulty, micros: u64, decided: bool) {
        let mut cells = self.cells.lock().unwrap();
        let cell = &mut cells[engine.slot()][difficulty.bucket()];
        cell.attempts += 1;
        if decided {
            cell.decided += 1;
        }
        cell.ewma_micros = if cell.attempts == 1 {
            micros as f64
        } else {
            MODEL_ALPHA * micros as f64 + (1.0 - MODEL_ALPHA) * cell.ewma_micros
        };
    }

    /// The routing score: expected microseconds until this engine decides
    /// a class of this difficulty.
    pub fn expected_decision_micros(
        &self,
        engine: EngineKind,
        difficulty: &Difficulty,
        prior_micros: u64,
    ) -> f64 {
        let cells = self.cells.lock().unwrap();
        let cell = &cells[engine.slot()][difficulty.bucket()];
        if cell.attempts == 0 {
            return prior_micros as f64;
        }
        let decision_rate = (cell.decided as f64 + 0.5) / (cell.attempts as f64 + 1.0);
        cell.ewma_micros.max(1.0) / decision_rate
    }

    /// How many attempts the model has seen for this engine and bucket.
    pub fn attempts(&self, engine: EngineKind, difficulty: &Difficulty) -> u64 {
        self.cells.lock().unwrap()[engine.slot()][difficulty.bucket()].attempts
    }
}

/// Whether the dispatcher runs engines in registration order or routes
/// and races them by expected cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProverMode {
    /// Registration order, one engine at a time, first verdict wins —
    /// the compatibility default (the PR-era fixed sequence).
    #[default]
    Sequential,
    /// Difficulty-model routing with concurrent racing on hard classes.
    Adaptive,
}

impl ProverMode {
    /// Parses `"sequential"` / `"adaptive"`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sequential" => Some(ProverMode::Sequential),
            "adaptive" => Some(ProverMode::Adaptive),
            _ => None,
        }
    }

    /// The flag spelling of the mode.
    pub fn name(self) -> &'static str {
        match self {
            ProverMode::Sequential => "sequential",
            ProverMode::Adaptive => "adaptive",
        }
    }
}

/// Dispatcher configuration.
#[derive(Clone, Debug)]
pub struct ProverConfig {
    /// Sequential or adaptive dispatch.
    pub mode: ProverMode,
    /// Expected decision cost above which a class counts as *hard* and
    /// the top engines race concurrently (adaptive mode only).
    pub race_threshold: Duration,
    /// Maximum engines racing one class concurrently.
    pub max_race: usize,
    /// Per-attempt wall budget imposed on raced engines (`None` =
    /// unbounded; the job token still caps everything).
    pub attempt_wall: Option<Duration>,
    /// Per-attempt conflict budgets passed through to SAT-backed engines.
    pub budget: Budget,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            mode: ProverMode::Sequential,
            race_threshold: Duration::from_millis(2),
            max_race: 2,
            attempt_wall: None,
            budget: Budget::default(),
        }
    }
}

/// Point-in-time dispatcher statistics, indexed by engine slot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Attempts that produced the winning verdict.
    pub wins: [u64; metrics::PROVE_ENGINE_SLOTS],
    /// Attempts that ran without deciding first.
    pub losses: [u64; metrics::PROVE_ENGINE_SLOTS],
    /// Attempts cancelled by a faster rival or the race deadline.
    pub cancelled: [u64; metrics::PROVE_ENGINE_SLOTS],
    /// Attempts skipped by admissibility or sequencing.
    pub skipped: [u64; metrics::PROVE_ENGINE_SLOTS],
    /// Wall microseconds charged per engine (winners and losers).
    pub elapsed_micros: [u64; metrics::PROVE_ENGINE_SLOTS],
    /// Classes decided through a concurrent race.
    pub raced_classes: u64,
    /// Classes decided by a sequential pass.
    pub sequential_classes: u64,
    /// Routing hints replayed from the result cache.
    pub routing_hints: u64,
}

/// The outcome of dispatching one class.
#[derive(Clone, Debug)]
pub struct ProveOutcome {
    /// The class verdict.
    pub verdict: Verdict,
    /// The engine that produced it (`None` when undecided).
    pub engine: Option<EngineKind>,
    /// Every engine attempt, winners, losers and skipped alike.
    pub attempts: Vec<EngineAttempt>,
    /// SAT-style statistics of the winning attempt.
    pub stats: SweepStats,
    /// Dispatcher wall seconds for the class.
    pub seconds: f64,
    /// Whether a concurrent race decided the class.
    pub raced: bool,
}

/// Default number of 64-bit words the built-in random-sim prefilter
/// simulates.
pub const DEFAULT_PREFILTER_WORDS: usize = 8;

#[derive(Debug, Default)]
struct AtomicStats {
    wins: [AtomicU64; metrics::PROVE_ENGINE_SLOTS],
    losses: [AtomicU64; metrics::PROVE_ENGINE_SLOTS],
    cancelled: [AtomicU64; metrics::PROVE_ENGINE_SLOTS],
    skipped: [AtomicU64; metrics::PROVE_ENGINE_SLOTS],
    elapsed_micros: [AtomicU64; metrics::PROVE_ENGINE_SLOTS],
    raced_classes: AtomicU64,
    sequential_classes: AtomicU64,
    routing_hints: AtomicU64,
}

/// The adaptive proving dispatcher.
///
/// Holds the registered engines, the shared [`DifficultyModel`] (which
/// keeps learning across classes and jobs — a service shares one `Prover`
/// across its workers), per-engine statistics, and a small pool of
/// single-thread lane executors for concurrent races (each raced engine
/// gets its own executor, respecting the sanitizer's one-stream-per-device
/// model).
pub struct Prover {
    engines: Vec<Box<dyn ProofEngine>>,
    cfg: ProverConfig,
    model: DifficultyModel,
    stats: AtomicStats,
    /// Admission caps used by [`Prover::difficulty`]; mirrored from the
    /// exhaustive engine when one is registered.
    support_cap: usize,
    cone_cap: usize,
    lane_pool: Mutex<Vec<Executor>>,
}

impl std::fmt::Debug for Prover {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prover")
            .field("engines", &self.engine_kinds())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Prover {
    /// A dispatcher over the four standard portfolio engines, configured
    /// like [`crate::PortfolioConfig`]'s defaults.
    pub fn new(cfg: ProverConfig) -> Self {
        let portfolio = crate::portfolio::PortfolioConfig::default();
        Self::with_engines(cfg, standard_engines(&portfolio))
    }

    /// A dispatcher over an explicit engine list. Order matters in
    /// [`ProverMode::Sequential`]: it is the execution order. The default
    /// difficulty-analysis caps match [`crate::PortfolioConfig`]'s; use
    /// [`Prover::with_caps`] when the exhaustive engine's admission bounds
    /// differ.
    pub fn with_engines(cfg: ProverConfig, engines: Vec<Box<dyn ProofEngine>>) -> Self {
        Prover {
            engines,
            cfg,
            model: DifficultyModel::default(),
            stats: AtomicStats::default(),
            support_cap: 20,
            cone_cap: 3000,
            lane_pool: Mutex::new(Vec::new()),
        }
    }

    /// Overrides the support/cone caps [`Prover::difficulty`] analyzes
    /// with (keep them equal to the exhaustive engine's admission caps).
    pub fn with_caps(mut self, support_cap: usize, cone_cap: usize) -> Self {
        self.support_cap = support_cap;
        self.cone_cap = cone_cap;
        self
    }

    /// The dispatcher's configuration.
    pub fn config(&self) -> &ProverConfig {
        &self.cfg
    }

    /// Kinds of the registered engines, in registration order.
    pub fn engine_kinds(&self) -> Vec<EngineKind> {
        self.engines.iter().map(|e| e.kind()).collect()
    }

    /// Analyzes a cone with the dispatcher's admission caps.
    pub fn difficulty(&self, cone: &Aig) -> Difficulty {
        Difficulty::analyze(cone, self.support_cap, self.cone_cap)
    }

    /// Pre-seeds the difficulty model from a cached `(engine, cost)`
    /// routing record, so repeat traffic routes like the traffic that
    /// produced the cache entry.
    pub fn observe_hint(&self, engine: EngineKind, difficulty: &Difficulty, cost_micros: u64) {
        self.model.observe(engine, difficulty, cost_micros, true);
        self.stats.routing_hints.fetch_add(1, Ordering::Relaxed);
    }

    /// The shared difficulty model.
    pub fn model(&self) -> &DifficultyModel {
        &self.model
    }

    /// Snapshot of the dispatcher's statistics.
    pub fn stats(&self) -> ProverStats {
        let load = |a: &[AtomicU64; metrics::PROVE_ENGINE_SLOTS]| {
            let mut out = [0u64; metrics::PROVE_ENGINE_SLOTS];
            for (o, a) in out.iter_mut().zip(a) {
                *o = a.load(Ordering::Relaxed);
            }
            out
        };
        ProverStats {
            wins: load(&self.stats.wins),
            losses: load(&self.stats.losses),
            cancelled: load(&self.stats.cancelled),
            skipped: load(&self.stats.skipped),
            elapsed_micros: load(&self.stats.elapsed_micros),
            raced_classes: self.stats.raced_classes.load(Ordering::Relaxed),
            sequential_classes: self.stats.sequential_classes.load(Ordering::Relaxed),
            routing_hints: self.stats.routing_hints.load(Ordering::Relaxed),
        }
    }

    /// Dispatches one class on the wall clock.
    pub fn prove(&self, cone: &Aig, exec: &Executor, token: &CancelToken) -> ProveOutcome {
        self.prove_clocked(cone, exec, token, &WallClock::new())
    }

    /// Dispatches one class, timing attempts on the injected clock.
    pub fn prove_clocked(
        &self,
        cone: &Aig,
        exec: &Executor,
        token: &CancelToken,
        clock: &(dyn Clock + Sync),
    ) -> ProveOutcome {
        let difficulty = self.difficulty(cone);
        self.prove_with_difficulty(cone, &difficulty, exec, token, clock)
    }

    /// Dispatches one class with a caller-supplied difficulty (the caller
    /// may know upstream features, e.g. sim-refinement velocity).
    pub fn prove_with_difficulty(
        &self,
        cone: &Aig,
        difficulty: &Difficulty,
        exec: &Executor,
        token: &CancelToken,
        clock: &(dyn Clock + Sync),
    ) -> ProveOutcome {
        match self.cfg.mode {
            ProverMode::Sequential => self.prove_sequential(cone, difficulty, exec, token, clock),
            ProverMode::Adaptive => self.prove_adaptive(cone, difficulty, exec, token, clock),
        }
    }

    /// Sequential pass: registration order, stop at the first decisive
    /// verdict, record every attempt (skipped ones included).
    fn prove_sequential(
        &self,
        cone: &Aig,
        difficulty: &Difficulty,
        exec: &Executor,
        token: &CancelToken,
        clock: &(dyn Clock + Sync),
    ) -> ProveOutcome {
        let start = clock.now();
        let mut attempts = Vec::with_capacity(self.engines.len());
        let mut winner: Option<(EngineKind, Verdict, SweepStats)> = None;
        for engine in &self.engines {
            if winner.is_some() || !engine.admits(difficulty) {
                attempts.push(EngineAttempt {
                    engine: engine.kind(),
                    status: AttemptStatus::Skipped,
                    seconds: 0.0,
                });
                continue;
            }
            let (report, seconds, cancelled) =
                self.run_attempt(&**engine, cone, exec, token, clock);
            let decided = !matches!(report.verdict, Verdict::Undecided);
            let status = if decided {
                AttemptStatus::Won
            } else if cancelled {
                AttemptStatus::Cancelled
            } else {
                AttemptStatus::Lost
            };
            attempts.push(EngineAttempt {
                engine: engine.kind(),
                status,
                seconds,
            });
            self.model
                .observe(engine.kind(), difficulty, (seconds * 1e6) as u64, decided);
            if decided {
                winner = Some((engine.kind(), report.verdict, report.stats));
            } else if token.is_cancelled() {
                break;
            }
        }
        self.stats
            .sequential_classes
            .fetch_add(1, Ordering::Relaxed);
        self.finish(winner, attempts, clock.since(start).as_secs_f64(), false)
    }

    /// Adaptive pass: inline prefilters, then expected-cost routing; hard
    /// classes race the top engines concurrently with first-verdict-wins
    /// early cancellation.
    fn prove_adaptive(
        &self,
        cone: &Aig,
        difficulty: &Difficulty,
        exec: &Executor,
        token: &CancelToken,
        clock: &(dyn Clock + Sync),
    ) -> ProveOutcome {
        let start = clock.now();
        let mut attempts = Vec::with_capacity(self.engines.len());
        let mut winner: Option<(EngineKind, Verdict, SweepStats)> = None;

        // Cheap screening engines run inline first — micro-second cost,
        // and a disproof here spares every heavy engine.
        for engine in &self.engines {
            if !engine.prefilter() {
                continue;
            }
            if winner.is_some() || !engine.admits(difficulty) {
                attempts.push(EngineAttempt {
                    engine: engine.kind(),
                    status: AttemptStatus::Skipped,
                    seconds: 0.0,
                });
                continue;
            }
            let (report, seconds, cancelled) =
                self.run_attempt(&**engine, cone, exec, token, clock);
            let decided = !matches!(report.verdict, Verdict::Undecided);
            attempts.push(EngineAttempt {
                engine: engine.kind(),
                status: if decided {
                    AttemptStatus::Won
                } else if cancelled {
                    AttemptStatus::Cancelled
                } else {
                    AttemptStatus::Lost
                },
                seconds,
            });
            self.model
                .observe(engine.kind(), difficulty, (seconds * 1e6) as u64, decided);
            if decided {
                winner = Some((engine.kind(), report.verdict, report.stats));
            }
        }

        let mut raced = false;
        if winner.is_none() && !token.is_cancelled() {
            // Rank the heavy engines by expected decision cost.
            let mut ranked: Vec<(usize, f64)> = self
                .engines
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.prefilter())
                .map(|(i, e)| {
                    let score = if e.admits(difficulty) {
                        self.model.expected_decision_micros(
                            e.kind(),
                            difficulty,
                            e.prior_cost_micros(difficulty),
                        )
                    } else {
                        f64::INFINITY
                    };
                    (i, score)
                })
                .collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
            let admitted: Vec<usize> = ranked
                .iter()
                .filter(|(_, s)| s.is_finite())
                .map(|(i, _)| *i)
                .collect();
            for (i, score) in &ranked {
                if !score.is_finite() {
                    attempts.push(EngineAttempt {
                        engine: self.engines[*i].kind(),
                        status: AttemptStatus::Skipped,
                        seconds: 0.0,
                    });
                }
            }
            let hard = admitted.len() >= 2
                && self.cfg.max_race >= 2
                && ranked[0].1 >= self.cfg.race_threshold.as_micros() as f64;
            if hard {
                raced = true;
                let field = &admitted[..admitted.len().min(self.cfg.max_race)];
                let (race_winner, mut race_attempts) =
                    self.race(cone, difficulty, field, exec, token, clock);
                winner = race_winner;
                attempts.append(&mut race_attempts);
                // Engines ranked out of the race field are skipped.
                for &i in &admitted[field.len()..] {
                    attempts.push(EngineAttempt {
                        engine: self.engines[i].kind(),
                        status: AttemptStatus::Skipped,
                        seconds: 0.0,
                    });
                }
            } else {
                // Easy class (or nothing to race against): run the ranked
                // engines one at a time.
                for (pos, &i) in admitted.iter().enumerate() {
                    let engine = &self.engines[i];
                    if winner.is_some() {
                        attempts.push(EngineAttempt {
                            engine: engine.kind(),
                            status: AttemptStatus::Skipped,
                            seconds: 0.0,
                        });
                        continue;
                    }
                    let (report, seconds, cancelled) =
                        self.run_attempt(&**engine, cone, exec, token, clock);
                    let decided = !matches!(report.verdict, Verdict::Undecided);
                    attempts.push(EngineAttempt {
                        engine: engine.kind(),
                        status: if decided {
                            AttemptStatus::Won
                        } else if cancelled {
                            AttemptStatus::Cancelled
                        } else {
                            AttemptStatus::Lost
                        },
                        seconds,
                    });
                    self.model
                        .observe(engine.kind(), difficulty, (seconds * 1e6) as u64, decided);
                    if decided {
                        winner = Some((engine.kind(), report.verdict, report.stats));
                    } else if token.is_cancelled() {
                        for &j in &admitted[pos + 1..] {
                            attempts.push(EngineAttempt {
                                engine: self.engines[j].kind(),
                                status: AttemptStatus::Skipped,
                                seconds: 0.0,
                            });
                        }
                        break;
                    }
                }
            }
        }
        if raced {
            self.stats.raced_classes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats
                .sequential_classes
                .fetch_add(1, Ordering::Relaxed);
        }
        self.finish(winner, attempts, clock.since(start).as_secs_f64(), raced)
    }

    /// Runs the engine field concurrently; the first decisive verdict
    /// cancels the others through a linked child token, so the caller's
    /// job token is never tripped by the dispatcher's own early-cancel.
    fn race(
        &self,
        cone: &Aig,
        difficulty: &Difficulty,
        field: &[usize],
        exec: &Executor,
        token: &CancelToken,
        clock: &(dyn Clock + Sync),
    ) -> (
        Option<(EngineKind, Verdict, SweepStats)>,
        Vec<EngineAttempt>,
    ) {
        let race_token = match self.cfg.attempt_wall {
            Some(wall) => token.child_with_deadline(wall),
            None => token.child(),
        };
        // One executor per lane: lane 0 borrows the caller's, the rest
        // come from (and return to) the pool.
        let mut pool = self.lane_pool.lock().unwrap();
        let mut lane_execs: Vec<Executor> = Vec::new();
        while lane_execs.len() + 1 < field.len() {
            match pool.pop() {
                Some(e) => lane_execs.push(e),
                None => lane_execs.push(Executor::with_threads(1)),
            }
        }
        drop(pool);

        let winner: Mutex<Option<(EngineKind, Verdict, SweepStats)>> = Mutex::new(None);
        let lane_results: Mutex<Vec<(EngineKind, bool, f64, bool)>> =
            Mutex::new(Vec::with_capacity(field.len()));
        std::thread::scope(|s| {
            for (lane, &i) in field.iter().enumerate() {
                let engine = &self.engines[i];
                let lane_exec: &Executor = if lane == 0 {
                    exec
                } else {
                    &lane_execs[lane - 1]
                };
                let race_token = race_token.clone();
                let winner = &winner;
                let lane_results = &lane_results;
                s.spawn(move || {
                    let mut span = parsweep_trace::span(
                        "prove",
                        &format!("prove.engine.{}", engine.kind().name()),
                    );
                    span.arg_str("mode", "race");
                    let t0 = clock.now();
                    let budget = self.cfg.budget;
                    let report = engine.prove(cone, lane_exec, &budget, &race_token);
                    let seconds = clock.since(t0).as_secs_f64();
                    let decided = !matches!(report.verdict, Verdict::Undecided);
                    if decided {
                        let mut w = winner.lock().unwrap();
                        if w.is_none() {
                            *w = Some((engine.kind(), report.verdict, report.stats));
                            // First verdict wins: stop the rival lanes at
                            // their next poll point.
                            race_token.cancel();
                        }
                    }
                    let cancelled = !decided && race_token.is_cancelled();
                    lane_results
                        .lock()
                        .unwrap()
                        .push((engine.kind(), decided, seconds, cancelled));
                });
            }
        });

        // Return the lane executors to the pool for the next race.
        self.lane_pool.lock().unwrap().append(&mut lane_execs);

        let won = winner.into_inner().unwrap();
        let mut attempts = Vec::with_capacity(field.len());
        for (kind, decided, seconds, cancelled) in lane_results.into_inner().unwrap() {
            let status = match (&won, decided, cancelled) {
                (Some((w, _, _)), true, _) if *w == kind => AttemptStatus::Won,
                (_, true, _) => AttemptStatus::Lost,
                (_, false, true) => AttemptStatus::Cancelled,
                (_, false, false) => AttemptStatus::Lost,
            };
            // Winners and losers both feed the model: loser costs are what
            // teach it to stop racing engines that never pay off.
            self.model
                .observe(kind, difficulty, (seconds * 1e6) as u64, decided);
            attempts.push(EngineAttempt {
                engine: kind,
                status,
                seconds,
            });
        }
        (won, attempts)
    }

    /// Runs one attempt inline under a per-attempt child token, with a
    /// span labelled by engine.
    fn run_attempt(
        &self,
        engine: &dyn ProofEngine,
        cone: &Aig,
        exec: &Executor,
        token: &CancelToken,
        clock: &(dyn Clock + Sync),
    ) -> (EngineReport, f64, bool) {
        let attempt_token = match (engine.prefilter(), self.cfg.attempt_wall) {
            (false, Some(wall)) => token.child_with_deadline(wall),
            _ => token.clone(),
        };
        let mut span =
            parsweep_trace::span("prove", &format!("prove.engine.{}", engine.kind().name()));
        span.arg_str("mode", "inline");
        let t0 = clock.now();
        let report = engine.prove(cone, exec, &self.cfg.budget, &attempt_token);
        let seconds = clock.since(t0).as_secs_f64();
        let cancelled =
            matches!(report.verdict, Verdict::Undecided) && attempt_token.is_cancelled();
        (report, seconds, cancelled)
    }

    /// Records the class outcome into the local and global counters and
    /// assembles the [`ProveOutcome`].
    fn finish(
        &self,
        winner: Option<(EngineKind, Verdict, SweepStats)>,
        attempts: Vec<EngineAttempt>,
        seconds: f64,
        raced: bool,
    ) -> ProveOutcome {
        let global = metrics::prove_counters();
        for attempt in &attempts {
            let slot = attempt.engine.slot();
            let (local, global_ctr) = match attempt.status {
                AttemptStatus::Won => (&self.stats.wins[slot], &global.wins[slot]),
                AttemptStatus::Lost => (&self.stats.losses[slot], &global.losses[slot]),
                AttemptStatus::Cancelled => (&self.stats.cancelled[slot], &global.cancelled[slot]),
                AttemptStatus::Skipped => (&self.stats.skipped[slot], &global.skipped[slot]),
            };
            local.fetch_add(1, Ordering::Relaxed);
            global_ctr.fetch_add(1, Ordering::Relaxed);
            let micros = (attempt.seconds * 1e6) as u64;
            self.stats.elapsed_micros[slot].fetch_add(micros, Ordering::Relaxed);
            global.elapsed_micros[slot].fetch_add(micros, Ordering::Relaxed);
        }
        match winner {
            Some((kind, verdict, stats)) => ProveOutcome {
                verdict,
                engine: Some(kind),
                attempts,
                stats,
                seconds,
                raced,
            },
            None => ProveOutcome {
                verdict: Verdict::Undecided,
                engine: None,
                attempts,
                stats: SweepStats::default(),
                seconds,
                raced,
            },
        }
    }
}

/// The four standard portfolio engines in the fixed-sequence order, wired
/// from a [`crate::PortfolioConfig`].
pub fn standard_engines(cfg: &crate::portfolio::PortfolioConfig) -> Vec<Box<dyn ProofEngine>> {
    vec![
        Box::new(StructuralEngine),
        Box::new(RandomSimEngine {
            sim_words: cfg.sim_words,
            seed: 0xc0ffee,
        }),
        Box::new(ExhaustivePoEngine {
            po_support_cap: cfg.po_support_cap,
            po_cone_cap: cfg.po_cone_cap,
            memory_words: cfg.memory_words,
        }),
        Box::new(SatSweepEngine {
            cfg: cfg.sweep.clone(),
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::{miter, Aig};

    fn exec() -> Executor {
        Executor::with_threads(1)
    }

    fn adder(width: usize, ripple: bool) -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_inputs(width);
        let b = aig.add_inputs(width);
        let mut carry = parsweep_aig::Lit::FALSE;
        for i in 0..width {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let new_carry = if ripple {
                let t = aig.and(a[i], b[i]);
                let u = aig.and(axb, carry);
                aig.or(t, u)
            } else {
                aig.maj3(a[i], b[i], carry)
            };
            aig.add_po(sum);
            carry = new_carry;
        }
        aig.add_po(carry);
        aig
    }

    fn prover(mode: ProverMode) -> Prover {
        Prover::new(ProverConfig {
            mode,
            ..ProverConfig::default()
        })
    }

    #[test]
    fn engine_kinds_have_distinct_slots() {
        let mut seen = std::collections::HashSet::new();
        for k in EngineKind::ALL {
            assert!(k.slot() < metrics::PROVE_ENGINE_SLOTS);
            assert!(seen.insert(k.slot()));
            assert_eq!(EngineKind::from_name(k.name()), Some(k));
        }
    }

    #[test]
    fn sequential_equals_the_fixed_sequence() {
        let a = parsweep_aig::random::random_aig(6, 40, 2, 5);
        let m = miter(&a, &a).unwrap();
        let out = prover(ProverMode::Sequential).prove(&m, &exec(), &CancelToken::never());
        assert_eq!(out.engine, Some(EngineKind::Structural));
        assert!(out.verdict.is_equivalent());
        // Attempts cover every registered engine; later ones are skipped.
        assert_eq!(out.attempts.len(), 4);
        assert_eq!(out.attempts[0].status, AttemptStatus::Won);
        assert!(out.attempts[1..]
            .iter()
            .all(|a| a.status == AttemptStatus::Skipped));
    }

    #[test]
    fn losing_attempts_record_elapsed_time() {
        use parsweep_trace::ManualClock;
        // Equivalent but not structurally identical: structural and
        // random-sim lose before the exhaustive engine wins.
        let m = miter(&adder(3, true), &adder(3, false)).unwrap();
        let p = prover(ProverMode::Sequential);
        let clock = ManualClock::new();
        let out = p.prove_clocked(&m, &exec(), &CancelToken::never(), &clock);
        assert_eq!(out.engine, Some(EngineKind::ExhaustivePo));
        let structural = &out.attempts[0];
        assert_eq!(structural.status, AttemptStatus::Lost);
        let random = &out.attempts[1];
        assert_eq!(random.status, AttemptStatus::Lost);
        // The manual clock never advances, so losers report zero — but the
        // attempts themselves are present with a measured duration field.
        assert_eq!(structural.seconds, 0.0);
        assert_eq!(random.seconds, 0.0);
        let s = p.stats();
        assert_eq!(s.losses[EngineKind::Structural.slot()], 1);
        assert_eq!(s.wins[EngineKind::ExhaustivePo.slot()], 1);
        assert_eq!(s.skipped[EngineKind::SatSweep.slot()], 1);
    }

    #[test]
    fn adaptive_agrees_with_sequential_on_an_adder() {
        let m = miter(&adder(4, true), &adder(4, false)).unwrap();
        let seq = prover(ProverMode::Sequential).prove(&m, &exec(), &CancelToken::never());
        let ada = prover(ProverMode::Adaptive).prove(&m, &exec(), &CancelToken::never());
        assert_eq!(
            seq.verdict.is_equivalent(),
            ada.verdict.is_equivalent(),
            "seq {:?} vs ada {:?}",
            seq.verdict,
            ada.verdict
        );
        assert!(ada.verdict.is_equivalent());
    }

    #[test]
    fn adaptive_races_hard_classes() {
        // Wide supports force SatSweep/ExhaustivePo expected costs above
        // the race threshold.
        let m = miter(&adder(10, true), &adder(10, false)).unwrap();
        let p = Prover::new(ProverConfig {
            mode: ProverMode::Adaptive,
            race_threshold: Duration::from_micros(1),
            ..ProverConfig::default()
        });
        let out = p.prove(&m, &exec(), &CancelToken::never());
        assert!(out.raced, "attempts: {:?}", out.attempts);
        assert!(out.verdict.is_equivalent());
        assert_eq!(p.stats().raced_classes, 1);
        // Exactly one racer won; any rival either lost or was cancelled.
        let won = out
            .attempts
            .iter()
            .filter(|a| a.status == AttemptStatus::Won)
            .count();
        assert_eq!(won, 1);
    }

    #[test]
    fn race_cancel_does_not_trip_the_job_token() {
        let m = miter(&adder(8, true), &adder(8, false)).unwrap();
        let p = Prover::new(ProverConfig {
            mode: ProverMode::Adaptive,
            race_threshold: Duration::from_micros(1),
            ..ProverConfig::default()
        });
        let job = CancelToken::new();
        let out = p.prove(&m, &exec(), &job);
        assert!(out.verdict.is_equivalent());
        assert!(
            !job.is_cancelled(),
            "dispatcher early-cancel must stay scoped to the race"
        );
    }

    #[test]
    fn cancelled_dispatch_is_undecided_not_wrong() {
        let m = miter(&adder(6, true), &adder(6, false)).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let out = prover(ProverMode::Adaptive).prove(&m, &exec(), &token);
        // Structural runs regardless (it cannot be wrong); everything that
        // polls the token must come back undecided on this non-structural
        // miter.
        assert_eq!(out.verdict, Verdict::Undecided);
        assert!(out.engine.is_none());
    }

    #[test]
    fn model_learns_and_reroutes() {
        let model = DifficultyModel::default();
        let d = Difficulty {
            ands: 100,
            ..Difficulty::default()
        };
        // Cold: the prior ranks.
        assert_eq!(
            model.expected_decision_micros(EngineKind::SatSweep, &d, 500),
            500.0
        );
        // Observed cheap decisive attempts pull the score down.
        for _ in 0..8 {
            model.observe(EngineKind::SatSweep, &d, 100, true);
        }
        assert!(model.expected_decision_micros(EngineKind::SatSweep, &d, 500) < 200.0);
        // Observed expensive indecision pushes the score up.
        for _ in 0..8 {
            model.observe(EngineKind::ExhaustivePo, &d, 100, false);
        }
        assert!(model.expected_decision_micros(EngineKind::ExhaustivePo, &d, 50) > 1000.0);
    }

    #[test]
    fn routing_hints_pre_seed_the_model() {
        let p = prover(ProverMode::Adaptive);
        let d = Difficulty {
            ands: 64,
            ..Difficulty::default()
        };
        assert_eq!(p.model().attempts(EngineKind::SatSweep, &d), 0);
        p.observe_hint(EngineKind::SatSweep, &d, 1234);
        assert_eq!(p.model().attempts(EngineKind::SatSweep, &d), 1);
        assert_eq!(p.stats().routing_hints, 1);
    }

    #[test]
    fn difficulty_analysis_matches_portfolio_admission() {
        let m = miter(&adder(3, true), &adder(3, false)).unwrap();
        let d = Difficulty::analyze(&m, 20, 3000);
        assert!(d.max_po_support.is_some());
        assert!(d.max_po_cone.is_some());
        assert_eq!(d.pis, 6);
        // A 30-input conjunction exceeds a 16-bit support cap.
        let mut a = Aig::new();
        let xs = a.add_inputs(30);
        let f = a.and_all(xs.iter().copied());
        a.add_po(f);
        let d = Difficulty::analyze(&a, 16, 3000);
        assert_eq!(d.max_po_support, None);
    }
}

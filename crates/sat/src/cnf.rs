//! Tseitin encoding of AIG logic cones into a [`Solver`].

use std::collections::{HashMap, HashSet};

use parsweep_aig::{Aig, Lit, Node, Var};

use crate::slit::{SatLit, SatVar};
use crate::solver::Solver;

/// Incremental encoder: maps AIG variables to SAT variables and lazily
/// adds the AND-gate clauses of each requested cone to the solver.
///
/// ```
/// use parsweep_aig::Aig;
/// use parsweep_sat::{CnfEncoder, Solver, SolveResult};
/// let mut aig = Aig::new();
/// let xs = aig.add_inputs(2);
/// let f = aig.and(xs[0], xs[1]);
/// aig.add_po(f);
/// let mut solver = Solver::new();
/// let mut enc = CnfEncoder::new();
/// let sat_f = enc.encode(&aig, f, &mut solver);
/// // f can be 1...
/// assert_eq!(solver.solve(&[sat_f]), SolveResult::Sat);
/// // ...but not together with !a.
/// let sat_a = enc.encode(&aig, xs[0], &mut solver);
/// assert_eq!(solver.solve(&[sat_f, !sat_a]), SolveResult::Unsat);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CnfEncoder {
    map: HashMap<Var, SatVar>,
    /// AIG nodes whose defining clauses are already in the solver.
    defined: HashSet<Var>,
}

impl CnfEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        CnfEncoder::default()
    }

    /// Number of AIG variables mapped so far.
    pub fn num_mapped(&self) -> usize {
        self.map.len()
    }

    /// Returns the SAT variable for an AIG variable, creating it if new.
    pub fn sat_var(&mut self, v: Var, solver: &mut Solver) -> SatVar {
        *self.map.entry(v).or_insert_with(|| solver.new_var())
    }

    /// Encodes the logic cone of `lit` and returns the corresponding SAT
    /// literal. Constants are encoded via a pinned variable.
    pub fn encode(&mut self, aig: &Aig, lit: Lit, solver: &mut Solver) -> SatLit {
        let mut stack = vec![lit.var()];
        while let Some(v) = stack.pop() {
            if self.defined.contains(&v) {
                continue;
            }
            self.defined.insert(v);
            match aig.node(v) {
                Node::Const => {
                    // Pin the constant variable to false.
                    let sv = self.sat_var(v, solver);
                    solver.add_clause(&[sv.neg()]);
                }
                Node::Input(_) => {
                    self.sat_var(v, solver);
                }
                Node::And(a, b) => {
                    stack.push(a.var());
                    stack.push(b.var());
                    let sv = self.sat_var(v, solver);
                    let sa = self.sat_var(a.var(), solver).lit(a.is_complemented());
                    let sb = self.sat_var(b.var(), solver).lit(b.is_complemented());
                    // v <-> a & b
                    solver.add_clause(&[sv.neg(), sa]);
                    solver.add_clause(&[sv.neg(), sb]);
                    solver.add_clause(&[sv.pos(), !sa, !sb]);
                }
            }
        }
        self.sat_var(lit.var(), solver).lit(lit.is_complemented())
    }

    /// Extracts a (sparse) PI counter-example from the solver's model:
    /// values of all mapped PIs.
    pub fn model_to_cex(&self, aig: &Aig, solver: &Solver) -> parsweep_sim::Cex {
        let mut assignment = Vec::new();
        for (&v, &sv) in &self.map {
            if aig.node(v).is_input() {
                if let Some(val) = solver.model_value(sv) {
                    assignment.push((v, val));
                }
            }
        }
        parsweep_sim::Cex::from_sparse(aig, &assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn encode_and_gate_semantics() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], !xs[1]);
        let mut solver = Solver::new();
        let mut enc = CnfEncoder::new();
        let sf = enc.encode(&aig, f, &mut solver);
        let sa = enc.encode(&aig, xs[0], &mut solver);
        let sb = enc.encode(&aig, xs[1], &mut solver);
        // f & b is unsat, f & !a is unsat, f alone is sat.
        assert_eq!(solver.solve(&[sf, sb]), SolveResult::Unsat);
        assert_eq!(solver.solve(&[sf, !sa]), SolveResult::Unsat);
        assert_eq!(solver.solve(&[sf]), SolveResult::Sat);
    }

    #[test]
    fn encode_constant() {
        let mut aig = Aig::new();
        aig.add_inputs(1);
        let mut solver = Solver::new();
        let mut enc = CnfEncoder::new();
        let t = enc.encode(&aig, Lit::TRUE, &mut solver);
        assert_eq!(solver.solve(&[t]), SolveResult::Sat);
        assert_eq!(solver.solve(&[!t]), SolveResult::Unsat);
    }

    #[test]
    fn equivalence_check_via_xor_assumptions() {
        // f = a^b as XOR, g = a^b via MUX; prove f != g unsat.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.xor(xs[0], xs[1]);
        let g = aig.mux(xs[0], !xs[1], xs[1]);
        let mut solver = Solver::new();
        let mut enc = CnfEncoder::new();
        let sf = enc.encode(&aig, f, &mut solver);
        let sg = enc.encode(&aig, g, &mut solver);
        // XOR via two assumption probes: (f & !g) and (!f & g).
        assert_eq!(solver.solve(&[sf, !sg]), SolveResult::Unsat);
        assert_eq!(solver.solve(&[!sf, sg]), SolveResult::Unsat);
    }

    #[test]
    fn cex_extraction_matches_model() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        let mut solver = Solver::new();
        let mut enc = CnfEncoder::new();
        let sf = enc.encode(&aig, f, &mut solver);
        assert_eq!(solver.solve(&[sf]), SolveResult::Sat);
        let cex = enc.model_to_cex(&aig, &solver);
        let dense = cex.to_dense(&aig);
        assert_eq!(dense, vec![true, true]);
        assert_eq!(aig.eval(&dense), Vec::<bool>::new());
    }

    #[test]
    fn shared_structure_encoded_once() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        let g = aig.or(f, xs[0]);
        let mut solver = Solver::new();
        let mut enc = CnfEncoder::new();
        enc.encode(&aig, g, &mut solver);
        let vars_after_g = solver.num_vars();
        enc.encode(&aig, f, &mut solver);
        assert_eq!(solver.num_vars(), vars_after_g, "f was already encoded");
    }
}

//! SAT solver variables and literals (distinct from AIG literals).

use std::fmt;

/// A SAT variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SatVar(pub(crate) u32);

impl SatVar {
    /// Creates a variable from its index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        SatVar(index)
    }

    /// The variable's index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub const fn pos(self) -> SatLit {
        SatLit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub const fn neg(self) -> SatLit {
        SatLit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given sign (`true` = negated).
    #[inline]
    pub const fn lit(self, negated: bool) -> SatLit {
        SatLit(self.0 << 1 | negated as u32)
    }
}

impl fmt::Debug for SatVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A SAT literal: variable plus sign, encoded `2 * var + sign`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SatLit(pub(crate) u32);

impl SatLit {
    /// The literal's variable.
    #[inline]
    pub const fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }

    /// True if the literal is negated.
    #[inline]
    pub const fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index for watch lists.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The literal negated iff `c`.
    #[inline]
    pub const fn xor(self, c: bool) -> SatLit {
        SatLit(self.0 ^ c as u32)
    }
}

impl std::ops::Not for SatLit {
    type Output = SatLit;
    #[inline]
    fn not(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}",
            if self.is_neg() { "!" } else { "" },
            self.0 >> 1
        )
    }
}

/// Tri-state assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl LBool {
    /// From a boolean.
    #[inline]
    pub const fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Negation (`Undef` stays `Undef`).
    #[inline]
    pub const fn negate(self) -> Self {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding() {
        let v = SatVar::new(3);
        assert_eq!(v.pos().var(), v);
        assert!(!v.pos().is_neg());
        assert!(v.neg().is_neg());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(v.lit(true), v.neg());
        assert_eq!(v.pos().xor(true), v.neg());
    }

    #[test]
    fn lbool_negation() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::from_bool(true), LBool::True);
    }
}

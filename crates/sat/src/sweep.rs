//! SAT sweeping: the baseline combinational equivalence checker (the role
//! ABC `&cec` plays in the paper's evaluation).
//!
//! Classic FRAIG-style flow: random simulation clusters nodes into
//! equivalence classes; candidate pairs (class representative vs member)
//! are checked with budgeted SAT calls; disproofs yield counter-examples
//! that refine the classes; proofs merge nodes and reduce the miter. The
//! loop repeats on the reduced miter until the POs are proved constant
//! zero, disproved, or the budget runs out.

use std::time::{Duration, Instant};

use parsweep_aig::{is_proved, Aig, Lit, Var};
use parsweep_par::{CancelToken, Executor};
use parsweep_sim::{simulate, Cex, Patterns};

use crate::cnf::CnfEncoder;
use crate::solver::{SolveResult, Solver};

/// Configuration for [`sat_sweep`].
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// 64-bit pattern words for the initial random simulation.
    pub sim_words: usize,
    /// Conflict budget per candidate-pair SAT call.
    pub conflicts_per_pair: u64,
    /// Conflict budget for each final PO proof call (the paper uses
    /// `&cec -C 100000` when proving reduced miters).
    pub conflicts_per_po: u64,
    /// Maximum sweeping rounds (simulate / check / reduce).
    pub max_rounds: usize,
    /// Random seed for pattern generation.
    pub seed: u64,
    /// Optional wall-clock budget; exceeding it yields `Undecided`.
    pub wall_budget: Option<Duration>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            sim_words: 8,
            conflicts_per_pair: 1_000,
            conflicts_per_po: 100_000,
            max_rounds: 16,
            seed: 0x5eed,
            wall_budget: None,
        }
    }
}

/// The checker's verdict on a miter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All miter POs proved constant zero: the circuits are equivalent.
    Equivalent,
    /// A counter-example distinguishes the circuits.
    NotEquivalent(Cex),
    /// Budget exhausted before a proof or disproof.
    Undecided,
}

impl Verdict {
    /// True for [`Verdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Verdict::Equivalent)
    }
}

/// Statistics of one sweeping run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SweepStats {
    /// SAT solve calls issued.
    pub sat_calls: u64,
    /// Candidate pairs proved equivalent.
    pub proved_pairs: u64,
    /// Candidate pairs disproved by SAT counter-examples.
    pub disproved_pairs: u64,
    /// Candidate pairs abandoned on budget.
    pub unknown_pairs: u64,
    /// Sweeping rounds executed.
    pub rounds: u32,
    /// Total solver conflicts.
    pub conflicts: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// The outcome of [`sat_sweep`]: verdict, reduced miter and statistics.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Final verdict.
    pub verdict: Verdict,
    /// The miter after merging all proved equivalences.
    pub reduced: Aig,
    /// Run statistics.
    pub stats: SweepStats,
}

/// Runs SAT sweeping on a miter.
///
/// The miter's PIs are shared between the two circuits under comparison
/// (see [`parsweep_aig::miter`]); the verdict refers to whether all POs
/// are constant zero.
pub fn sat_sweep(miter: &Aig, exec: &Executor, cfg: &SweepConfig) -> SweepResult {
    sat_sweep_seeded(miter, exec, cfg, &[])
}

/// Like [`sat_sweep`], but seeded with counter-example patterns collected
/// by an earlier checker (e.g. the simulation engine's disproofs) — the
/// *EC transfer* improvement the paper's Discussion section proposes.
/// Seeded patterns refine the very first equivalence classes, so pairs
/// already disproved upstream are never re-checked by SAT.
pub fn sat_sweep_seeded(
    miter: &Aig,
    exec: &Executor,
    cfg: &SweepConfig,
    seed_cexs: &[Cex],
) -> SweepResult {
    sat_sweep_seeded_cancellable(miter, exec, cfg, seed_cexs, &CancelToken::never())
}

/// Like [`sat_sweep_seeded`], additionally polling `token` wherever the
/// wall budget is checked: between rounds, between per-pair SAT calls
/// (i.e. between conflict budgets — a budgeted call itself is bounded),
/// and between the final PO proofs. On cancellation the verdict degrades
/// to [`Verdict::Undecided`] with the miter as reduced so far; completed
/// proofs and counter-examples remain valid.
pub fn sat_sweep_seeded_cancellable(
    miter: &Aig,
    exec: &Executor,
    cfg: &SweepConfig,
    seed_cexs: &[Cex],
    token: &CancelToken,
) -> SweepResult {
    let start = Instant::now();
    let mut stats = SweepStats::default();
    let mut current = miter.clone();
    let mut pending_cexs: Vec<Cex> = seed_cexs.to_vec();
    let mut round_seed = cfg.seed;

    let out_of_time = |start: &Instant| {
        cfg.wall_budget.is_some_and(|b| start.elapsed() >= b) || token.is_cancelled()
    };

    for round in 0..cfg.max_rounds {
        if is_proved(&current) {
            break;
        }
        if out_of_time(&start) {
            stats.seconds = start.elapsed().as_secs_f64();
            return SweepResult {
                verdict: Verdict::Undecided,
                reduced: current,
                stats,
            };
        }
        stats.rounds = round as u32 + 1;
        // 1. Simulate: random patterns plus any pending counter-examples.
        round_seed = round_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(1);
        let mut patterns = Patterns::random(current.num_pis(), cfg.sim_words, round_seed);
        if let Some(cex_patterns) = Patterns::from_cexs(&current, &pending_cexs) {
            patterns = patterns.concat(&cex_patterns);
        }
        pending_cexs.clear();
        let sigs = simulate(&current, exec, &patterns);

        // Quick disproof from simulation alone.
        if let Some(cex) = parsweep_sim::find_po_counterexample(&current, &sigs, &patterns) {
            stats.seconds = start.elapsed().as_secs_f64();
            return SweepResult {
                verdict: Verdict::NotEquivalent(cex),
                reduced: current,
                stats,
            };
        }

        // 2. Candidate pairs from equivalence classes.
        let classes = parsweep_sim::signature_classes(&current, &sigs);
        let mut subst: Vec<Lit> = (0..current.num_nodes())
            .map(|i| Var::new(i as u32).lit())
            .collect();
        let mut solver = Solver::new();
        let mut enc = CnfEncoder::new();
        let mut progress = false;
        for class in &classes {
            let repr = class[0];
            for &member in &class[1..] {
                if out_of_time(&start) {
                    break;
                }
                // Only AND gates can be merged away; a PI must keep its
                // place in the interface.
                if !current.node(member).is_and() {
                    continue;
                }
                let complement = sigs.phase(repr) != sigs.phase(member);
                let sb = enc.encode(&current, member.lit_with(complement), &mut solver);
                let outcome = if repr.is_const() {
                    // Prove member' constant zero: member' == 1 unsat.
                    stats.sat_calls += 1;
                    solver.set_conflict_budget(Some(cfg.conflicts_per_pair));
                    solver.solve(&[sb])
                } else {
                    let sa = enc.encode(&current, repr.lit(), &mut solver);
                    stats.sat_calls += 1;
                    solver.set_conflict_budget(Some(cfg.conflicts_per_pair));
                    match solver.solve(&[sa, !sb]) {
                        SolveResult::Unsat => {
                            stats.sat_calls += 1;
                            solver.set_conflict_budget(Some(cfg.conflicts_per_pair));
                            solver.solve(&[!sa, sb])
                        }
                        other => other,
                    }
                };
                match outcome {
                    SolveResult::Unsat => {
                        subst[member.index()] = repr.lit_with(complement);
                        stats.proved_pairs += 1;
                        progress = true;
                    }
                    SolveResult::Sat => {
                        pending_cexs.push(enc.model_to_cex(&current, &solver));
                        stats.disproved_pairs += 1;
                        progress = true;
                    }
                    SolveResult::Unknown => {
                        stats.unknown_pairs += 1;
                    }
                }
            }
        }
        stats.conflicts += solver.stats().conflicts;

        // 3. Reduce the miter by the proved equivalences.
        if subst
            .iter()
            .enumerate()
            .any(|(i, &l)| l != Var::new(i as u32).lit())
        {
            let (reduced, _) = current.rebuild_with_substitution(&subst);
            current = reduced;
        }
        if !progress {
            break;
        }
    }

    // Final PO proving on the reduced miter.
    let mut verdict = Verdict::Equivalent;
    if !is_proved(&current) {
        let mut solver = Solver::new();
        let mut enc = CnfEncoder::new();
        for &po in current.pos() {
            if po == Lit::FALSE {
                continue;
            }
            if out_of_time(&start) {
                verdict = Verdict::Undecided;
                break;
            }
            let sp = enc.encode(&current, po, &mut solver);
            stats.sat_calls += 1;
            solver.set_conflict_budget(Some(cfg.conflicts_per_po));
            match solver.solve(&[sp]) {
                SolveResult::Unsat => {}
                SolveResult::Sat => {
                    verdict = Verdict::NotEquivalent(enc.model_to_cex(&current, &solver));
                    break;
                }
                SolveResult::Unknown => {
                    verdict = Verdict::Undecided;
                    break;
                }
            }
        }
        stats.conflicts += solver.stats().conflicts;
    }
    stats.seconds = start.elapsed().as_secs_f64();
    SweepResult {
        verdict,
        reduced: current,
        stats,
    }
}

/// Convenience wrapper: miters two circuits and sweeps.
///
/// # Errors
///
/// Returns the miter-construction error if the interfaces differ.
pub fn check_equivalence(
    left: &Aig,
    right: &Aig,
    exec: &Executor,
    cfg: &SweepConfig,
) -> Result<SweepResult, parsweep_aig::BuildMiterError> {
    let m = parsweep_aig::miter(left, right)?;
    Ok(sat_sweep(&m, exec, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::miter;

    fn exec() -> Executor {
        Executor::with_threads(1)
    }

    fn adder(width: usize, ripple: bool) -> Aig {
        // width-bit adder, two structural styles.
        let mut aig = Aig::new();
        let a = aig.add_inputs(width);
        let b = aig.add_inputs(width);
        let mut carry = Lit::FALSE;
        for i in 0..width {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let new_carry = if ripple {
                let t = aig.and(a[i], b[i]);
                let u = aig.and(axb, carry);
                aig.or(t, u)
            } else {
                aig.maj3(a[i], b[i], carry)
            };
            aig.add_po(sum);
            carry = new_carry;
        }
        aig.add_po(carry);
        aig
    }

    #[test]
    fn equivalent_adders_proved() {
        let m = miter(&adder(4, true), &adder(4, false)).unwrap();
        let r = sat_sweep(&m, &exec(), &SweepConfig::default());
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert!(r.stats.sat_calls > 0);
    }

    #[test]
    fn nonequivalent_circuits_get_valid_cex() {
        let a = adder(3, true);
        // Corrupt one PO of a copy.
        let mut b = adder(3, true);
        let po0 = b.po(0);
        b.set_po(0, !po0);
        let m = miter(&a, &b).unwrap();
        let r = sat_sweep(&m, &exec(), &SweepConfig::default());
        match r.verdict {
            Verdict::NotEquivalent(cex) => {
                let dense = cex.to_dense(&m);
                let out = m.eval(&dense);
                assert!(out.iter().any(|&x| x), "cex must fire the miter");
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn identical_circuits_trivially_proved() {
        let a = adder(3, true);
        let m = miter(&a, &a).unwrap();
        let r = sat_sweep(&m, &exec(), &SweepConfig::default());
        assert_eq!(r.verdict, Verdict::Equivalent);
        // Strash already collapses everything: no SAT calls needed.
        assert_eq!(r.stats.sat_calls, 0);
    }

    #[test]
    fn reduced_miter_is_smaller() {
        let m = miter(&adder(5, true), &adder(5, false)).unwrap();
        let before = m.num_ands();
        let r = sat_sweep(&m, &exec(), &SweepConfig::default());
        assert!(r.reduced.num_ands() < before);
        assert_eq!(r.verdict, Verdict::Equivalent);
    }

    #[test]
    fn zero_wall_budget_is_undecided() {
        let m = miter(&adder(4, true), &adder(4, false)).unwrap();
        let cfg = SweepConfig {
            wall_budget: Some(Duration::from_secs(0)),
            ..SweepConfig::default()
        };
        let r = sat_sweep(&m, &exec(), &cfg);
        assert_eq!(r.verdict, Verdict::Undecided);
    }

    #[test]
    fn check_equivalence_interface_mismatch_errors() {
        let a = adder(2, true);
        let b = adder(3, true);
        assert!(check_equivalence(&a, &b, &exec(), &SweepConfig::default()).is_err());
    }

    #[test]
    fn random_equivalent_pairs_from_rebuild() {
        // A random AIG against its cleaned rebuild (semantically equal,
        // structurally re-hashed).
        for seed in [3u64, 9, 27] {
            let a = parsweep_aig::random::random_aig(6, 60, 3, seed);
            let b = a.clean();
            let m = miter(&a, &b).unwrap();
            let r = sat_sweep(&m, &exec(), &SweepConfig::default());
            assert_eq!(r.verdict, Verdict::Equivalent, "seed {seed}");
        }
    }
}

//! # parsweep-sat — SAT substrate and baseline checkers
//!
//! Everything SAT-flavoured that the paper's evaluation compares against:
//!
//! * a from-scratch CDCL [`Solver`] (two-watched literals, 1-UIP learning,
//!   VSIDS, phase saving, Luby restarts, conflict budgets);
//! * a Tseitin [`CnfEncoder`] for AIG logic cones;
//! * [`sat_sweep`]: the SAT-sweeping combinational equivalence checker
//!   standing in for ABC `&cec`, used both as the baseline of Table II and
//!   as the fallback that finishes miters the simulation engine leaves
//!   undecided;
//! * [`portfolio_check`]: a multi-engine portfolio standing in for the
//!   commercial checker column of Table II.
//!
//! ```
//! use parsweep_aig::{Aig, miter};
//! use parsweep_par::Executor;
//! use parsweep_sat::{sat_sweep, SweepConfig, Verdict};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Aig::new();
//! let xs = a.add_inputs(2);
//! let f = a.xor(xs[0], xs[1]);
//! a.add_po(f);
//! let mut b = Aig::new();
//! let ys = b.add_inputs(2);
//! let o = b.or(ys[0], ys[1]);
//! let n = b.and(ys[0], ys[1]);
//! let g = b.and(o, !n);
//! b.add_po(g);
//! let m = miter(&a, &b)?;
//! let exec = Executor::with_threads(1);
//! let result = sat_sweep(&m, &exec, &SweepConfig::default());
//! assert_eq!(result.verdict, Verdict::Equivalent);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cnf;
pub mod dimacs;
mod heap;
mod portfolio;
pub mod prover;
mod slit;
mod solver;
mod sweep;

pub use cnf::CnfEncoder;
pub use dimacs::{read_dimacs, write_dimacs, Cnf, ParseDimacsError};
pub use portfolio::{
    portfolio_check, portfolio_check_clocked, Engine, PortfolioConfig, PortfolioResult,
};
pub use prover::{
    standard_engines, AttemptStatus, Budget, Difficulty, DifficultyModel, EngineAttempt,
    EngineKind, EngineReport, ProofEngine, ProveOutcome, Prover, ProverConfig, ProverMode,
    ProverStats,
};
pub use slit::{LBool, SatLit, SatVar};
pub use solver::{SolveResult, Solver, SolverStats};
pub use sweep::{
    check_equivalence, sat_sweep, sat_sweep_seeded, sat_sweep_seeded_cancellable, SweepConfig,
    SweepResult, SweepStats, Verdict,
};

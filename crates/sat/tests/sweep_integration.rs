//! Integration tests of the SAT sweeping checker: seeding, budgets,
//! round behaviour.

use parsweep_aig::{miter, Aig, Lit};
use parsweep_par::Executor;
use parsweep_sat::{sat_sweep, sat_sweep_seeded, SweepConfig, Verdict};
use parsweep_sim::Cex;

fn exec() -> Executor {
    Executor::with_threads(1)
}

/// Two builds of a 6-bit odd-parity + threshold circuit.
fn parity_threshold(variant: bool) -> Aig {
    let mut aig = Aig::new();
    let xs = aig.add_inputs(6);
    let parity = if variant {
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.xor(acc, x);
        }
        acc
    } else {
        let a = aig.xor(xs[0], xs[1]);
        let b = aig.xor(xs[2], xs[3]);
        let c = aig.xor(xs[4], xs[5]);
        let ab = aig.xor(a, b);
        aig.xor(ab, c)
    };
    aig.add_po(parity);
    // A second output to keep classes interesting.
    let t = aig.and(xs[0], xs[3]);
    let u = aig.or(t, xs[5]);
    aig.add_po(u);
    aig
}

#[test]
fn seeded_sweep_matches_unseeded_verdict() {
    let m = miter(&parity_threshold(false), &parity_threshold(true)).unwrap();
    let cfg = SweepConfig::default();
    let plain = sat_sweep(&m, &exec(), &cfg);
    // Seed with arbitrary (valid positional) patterns: verdict unchanged.
    let seeds: Vec<Cex> = (0..5)
        .map(|k| Cex::new((0..m.num_pis()).map(|i| (i + k) % 3 == 0).collect()))
        .collect();
    let seeded = sat_sweep_seeded(&m, &exec(), &cfg, &seeds);
    assert_eq!(plain.verdict, seeded.verdict);
    assert_eq!(plain.verdict, Verdict::Equivalent);
}

#[test]
fn seeding_with_distinguishing_pattern_short_circuits() {
    // Make the two circuits differ; seed the sweep with the exact
    // counter-example so round 1 simulation disproves instantly.
    let a = parity_threshold(false);
    let mut b = parity_threshold(false);
    let po = b.po(0);
    b.set_po(0, !po);
    let m = miter(&a, &b).unwrap();
    // Any pattern fires PO 0 (complemented parity differs everywhere).
    let seed = Cex::new(vec![false; m.num_pis()]);
    let r = sat_sweep_seeded(&m, &exec(), &SweepConfig::default(), &[seed]);
    match r.verdict {
        Verdict::NotEquivalent(cex) => assert!(cex.fires(&m)),
        other => panic!("expected disproof, got {other:?}"),
    }
    // Disproved purely by simulation: zero SAT calls.
    assert_eq!(r.stats.sat_calls, 0);
}

#[test]
fn single_round_budget_still_sound() {
    let m = miter(&parity_threshold(false), &parity_threshold(true)).unwrap();
    let cfg = SweepConfig {
        max_rounds: 1,
        ..SweepConfig::default()
    };
    let r = sat_sweep(&m, &exec(), &cfg);
    // One round may or may not finish, but must never disprove an
    // equivalent miter.
    assert!(!matches!(r.verdict, Verdict::NotEquivalent(_)));
}

#[test]
fn tiny_conflict_budgets_degrade_to_undecided_not_wrong() {
    // A moderately hard equivalent pair with absurdly small budgets.
    let mut a = Aig::new();
    let xs = a.add_inputs(14);
    let f = a.and_all(xs.iter().copied());
    a.add_po(f);
    let mut b = Aig::new();
    let ys = b.add_inputs(14);
    let mut g = ys[13];
    for &y in ys[..13].iter().rev() {
        g = b.and(y, g);
    }
    b.add_po(g);
    let m = miter(&a, &b).unwrap();
    let cfg = SweepConfig {
        conflicts_per_pair: 1,
        conflicts_per_po: 1,
        max_rounds: 2,
        ..SweepConfig::default()
    };
    let r = sat_sweep(&m, &exec(), &cfg);
    assert!(
        !matches!(r.verdict, Verdict::NotEquivalent(_)),
        "budget starvation must never fabricate a disproof"
    );
}

#[test]
fn stats_reflect_work() {
    let m = miter(&parity_threshold(false), &parity_threshold(true)).unwrap();
    let r = sat_sweep(&m, &exec(), &SweepConfig::default());
    assert!(r.stats.rounds >= 1);
    assert!(r.stats.seconds >= 0.0);
    if r.verdict == Verdict::Equivalent {
        assert_eq!(r.reduced.num_ands(), 0);
    }
    let _ = Lit::FALSE;
}

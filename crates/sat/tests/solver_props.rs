//! Property-based tests: the CDCL solver against brute force, and the
//! Tseitin encoding against the reference AIG evaluator.

use proptest::prelude::*;

use parsweep_sat::{CnfEncoder, SatLit, SatVar, SolveResult, Solver};

/// Brute-force satisfiability over up to 16 variables.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<SatLit>]) -> bool {
    (0..1u32 << num_vars).any(|m| {
        clauses.iter().all(|c| {
            c.iter().any(|l| {
                let val = m >> l.var().index() & 1 == 1;
                val != l.is_neg()
            })
        })
    })
}

fn arb_cnf(num_vars: usize) -> impl Strategy<Value = Vec<Vec<SatLit>>> {
    let lit = (0..num_vars as u32, any::<bool>()).prop_map(|(v, n)| SatVar::new(v).lit(n));
    proptest::collection::vec(proptest::collection::vec(lit, 1..4), 1..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solver_matches_brute_force(clauses in arb_cnf(8)) {
        let mut s = Solver::new();
        for _ in 0..8 {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c);
        }
        let expect = brute_force_sat(8, &clauses);
        match s.solve(&[]) {
            SolveResult::Sat => {
                prop_assert!(expect, "solver SAT, brute force UNSAT");
                // Model check.
                for c in &clauses {
                    let ok = c.iter().any(|l| {
                        s.model_value(l.var()).unwrap() != l.is_neg()
                    });
                    prop_assert!(ok, "model violates {c:?}");
                }
            }
            SolveResult::Unsat => prop_assert!(!expect, "solver UNSAT, brute force SAT"),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn assumptions_match_brute_force(clauses in arb_cnf(6), probe in 0u32..6, neg in any::<bool>()) {
        let mut s = Solver::new();
        for _ in 0..6 {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c);
        }
        let assumption = SatVar::new(probe).lit(neg);
        let mut forced = clauses.clone();
        forced.push(vec![assumption]);
        let expect = brute_force_sat(6, &forced);
        let got = s.solve(&[assumption]);
        match got {
            SolveResult::Sat => prop_assert!(expect),
            SolveResult::Unsat => prop_assert!(!expect),
            SolveResult::Unknown => prop_assert!(false),
        }
        // The solver must remain reusable afterwards.
        let plain = s.solve(&[]);
        prop_assert_eq!(plain == SolveResult::Sat, brute_force_sat(6, &clauses));
    }

    #[test]
    fn tseitin_encoding_matches_evaluator(seed in any::<u64>(), pis in 1usize..7, ands in 1usize..50) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 1, seed);
        let po = aig.po(0);
        let mut solver = Solver::new();
        let mut enc = CnfEncoder::new();
        let spo = enc.encode(&aig, po, &mut solver);
        // The PO can be 1 iff some input assignment makes it 1.
        let can_be_true = (0..1usize << pis).any(|i| {
            let bits: Vec<bool> = (0..pis).map(|k| i >> k & 1 == 1).collect();
            aig.eval(&bits)[0]
        });
        let can_be_false = (0..1usize << pis).any(|i| {
            let bits: Vec<bool> = (0..pis).map(|k| i >> k & 1 == 1).collect();
            !aig.eval(&bits)[0]
        });
        prop_assert_eq!(solver.solve(&[spo]) == SolveResult::Sat, can_be_true);
        prop_assert_eq!(solver.solve(&[!spo]) == SolveResult::Sat, can_be_false);
    }

    #[test]
    fn sat_model_of_po_is_a_real_witness(seed in any::<u64>(), pis in 1usize..7, ands in 1usize..50) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 1, seed);
        let po = aig.po(0);
        let mut solver = Solver::new();
        let mut enc = CnfEncoder::new();
        let spo = enc.encode(&aig, po, &mut solver);
        if solver.solve(&[spo]) == SolveResult::Sat {
            let cex = enc.model_to_cex(&aig, &solver);
            let out = aig.eval(&cex.to_dense(&aig));
            prop_assert!(out[0], "model does not set the PO");
        }
    }
}

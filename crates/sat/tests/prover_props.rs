//! Property-based tests of the adaptive dispatch layer: the dispatcher
//! may change *who* decides a class and at what cost, but never *what*
//! the verdict is.
//!
//! Two properties hold under any schedule:
//!
//! * **Agreement** — on miters the fixed-sequence portfolio decides, the
//!   adaptive prover reaches the same verdict (possibly via a different
//!   engine or a concurrent race).
//! * **Soundness under deadlines** — a race cut short by a deadline may
//!   settle `Undecided`, but a decisive verdict it does return is always
//!   correct: `Equal` is never fabricated from a cancelled engine's
//!   partial work, and a counter-example always fires.

use std::time::Duration;

use proptest::prelude::*;

use parsweep_aig::{miter, random::random_aig, Aig};
use parsweep_par::{CancelToken, Executor};
use parsweep_sat::{portfolio_check, PortfolioConfig, Prover, ProverConfig, ProverMode, Verdict};

/// Brute-force miter check: constant-zero on every input assignment.
fn brute_equivalent(m: &Aig) -> bool {
    let pis = m.num_pis();
    assert!(pis <= 12, "brute force only for small miters");
    (0..1u32 << pis).all(|mask| {
        let inputs: Vec<bool> = (0..pis).map(|i| mask >> i & 1 == 1).collect();
        m.eval(&inputs).iter().all(|&po| !po)
    })
}

fn adaptive_prover(race_threshold: Duration) -> Prover {
    Prover::new(ProverConfig {
        mode: ProverMode::Adaptive,
        race_threshold,
        ..ProverConfig::default()
    })
}

/// A balanced AND tree and a right-associated AND chain over `n` inputs:
/// equivalent, not structurally collapsible, and (for `n` past the
/// random-sim horizon) only decidable by the heavy engines — the shape
/// that triggers a concurrent race. `corrupt` flips the second build's
/// output so the pair is disprovable instead.
fn hard_pair(n: usize, corrupt: bool) -> Aig {
    let mut a = Aig::new();
    let xs = a.add_inputs(n);
    let f = a.and_all(xs.iter().copied());
    a.add_po(f);
    let mut b = Aig::new();
    let ys = b.add_inputs(n);
    let mut g = ys[n - 1];
    for &y in ys[..n - 1].iter().rev() {
        g = b.and(y, g);
    }
    if corrupt {
        g = !g;
    }
    b.add_po(g);
    miter(&a, &b).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random equivalent pairs (an AIG against its cleaned self) and
    /// random unrelated pairs: the adaptive dispatcher and the fixed
    /// sequence agree on every verdict, and both are sound.
    #[test]
    fn adaptive_agrees_with_fixed_sequence(
        seed in any::<u64>(),
        pis in 2usize..7,
        ands in 2usize..40,
        equivalent in any::<bool>(),
    ) {
        let a = random_aig(pis, ands, 2, seed);
        let b = if equivalent {
            a.clean()
        } else {
            random_aig(pis, ands, 2, seed.wrapping_add(1))
        };
        let m = miter(&a, &b).unwrap();
        let exec = Executor::new();
        let fixed = portfolio_check(&m, &exec, &PortfolioConfig::default());
        let adaptive =
            adaptive_prover(Duration::from_millis(2)).prove(&m, &exec, &CancelToken::never());
        prop_assert_eq!(
            fixed.verdict.is_equivalent(),
            adaptive.verdict.is_equivalent(),
            "fixed {:?} vs adaptive {:?}",
            fixed.verdict,
            adaptive.verdict
        );
        prop_assert_eq!(
            matches!(fixed.verdict, Verdict::Undecided),
            matches!(adaptive.verdict, Verdict::Undecided)
        );
        match &adaptive.verdict {
            Verdict::Equivalent => prop_assert!(brute_equivalent(&m)),
            Verdict::NotEquivalent(cex) => prop_assert!(cex.fires(&m)),
            Verdict::Undecided => {}
        }
    }

    /// A concurrent race under a deadline that may trip anywhere —
    /// before dispatch, mid-race, or never. Whatever engines get
    /// cancelled with partial work, the dispatcher never turns that
    /// partial work into a fabricated `Equal` on a disprovable miter,
    /// and a counter-example it does return always fires.
    #[test]
    fn deadline_cancelled_race_never_fabricates_equal(
        n in 8usize..20,
        corrupt in any::<bool>(),
        deadline_us in 0u64..2000,
    ) {
        let m = hard_pair(n, corrupt);
        let exec = Executor::new();
        // A 1µs race threshold forces every non-prefilter class into the
        // concurrent path, maximizing cancelled-engine interleavings.
        let prover = adaptive_prover(Duration::from_micros(1));
        let token = CancelToken::with_deadline(Duration::from_micros(deadline_us));
        let outcome = prover.prove(&m, &exec, &token);
        match &outcome.verdict {
            Verdict::Equivalent => {
                prop_assert!(!corrupt, "race fabricated Equal on a disprovable miter");
            }
            Verdict::NotEquivalent(cex) => {
                prop_assert!(corrupt, "race disproved an equivalent miter");
                prop_assert!(cex.fires(&m), "race fabricated a counter-example");
            }
            Verdict::Undecided => {}
        }
    }

    /// The same race without a deadline always decides, and decides
    /// correctly — racing costs completeness nothing when time allows.
    #[test]
    fn unbounded_race_decides_correctly(n in 8usize..20, corrupt in any::<bool>()) {
        let m = hard_pair(n, corrupt);
        let exec = Executor::new();
        let prover = adaptive_prover(Duration::from_micros(1));
        let outcome = prover.prove(&m, &exec, &CancelToken::never());
        match &outcome.verdict {
            Verdict::Equivalent => prop_assert!(!corrupt),
            Verdict::NotEquivalent(cex) => {
                prop_assert!(corrupt);
                prop_assert!(cex.fires(&m));
            }
            Verdict::Undecided => prop_assert!(false, "unbounded race left a miter undecided"),
        }
    }
}

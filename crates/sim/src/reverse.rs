//! Reverse simulation: backward value justification (paper §V, citing
//! Zhang et al., DAC'21).
//!
//! Random forward simulation almost never sets a deep AND cone to 1, so
//! such nodes stick to the constant equivalence class and waste checking
//! effort. Reverse simulation walks *backwards* from a desired node value
//! toward the PIs, assigning input values that justify it; the resulting
//! directed patterns split biased classes that random patterns cannot.

use std::collections::HashMap;

use parsweep_aig::random::SplitMix64;
use parsweep_aig::{Aig, Lit, Node, Var};

/// Attempts to find a PI assignment that sets `target` to `want`.
///
/// Performs one randomized backward justification pass; reconvergent
/// logic can defeat it, so the returned assignment is *verified* by
/// forward evaluation — `None` means this attempt failed (callers retry
/// with different randomness).
pub fn justify(aig: &Aig, target: Lit, want: bool, rng: &mut SplitMix64) -> Option<Vec<bool>> {
    // Desired values per variable discovered so far.
    let mut desired: HashMap<Var, bool> = HashMap::new();
    let mut queue: Vec<(Var, bool)> = vec![(target.var(), want != target.is_complemented())];
    while let Some((v, val)) = queue.pop() {
        if let Some(&prev) = desired.get(&v) {
            if prev != val {
                return None; // conflicting requirements
            }
            continue;
        }
        desired.insert(v, val);
        match aig.node(v) {
            Node::Const => {
                if val {
                    return None; // cannot make the constant true
                }
            }
            Node::Input(_) => {}
            Node::And(a, b) => {
                let need = |f: Lit, edge_val: bool| (f.var(), edge_val != f.is_complemented());
                if val {
                    // Both fanin edges must be 1.
                    queue.push(need(a, true));
                    queue.push(need(b, true));
                } else {
                    // One fanin edge at 0 suffices; pick randomly, but
                    // prefer one that is already consistently constrained.
                    let (first, second) = if rng.bool() { (a, b) } else { (b, a) };
                    let (fv, fval) = need(first, false);
                    match desired.get(&fv) {
                        Some(&prev) if prev != fval => queue.push(need(second, false)),
                        _ => queue.push((fv, fval)),
                    }
                }
            }
        }
    }
    // Assemble the PI pattern: justified values, random elsewhere.
    let pattern: Vec<bool> = aig
        .pis()
        .iter()
        .map(|pi| desired.get(pi).copied().unwrap_or_else(|| rng.bool()))
        .collect();
    // Verify (reconvergence may have broken the justification).
    let values = aig.eval_nodes(&pattern);
    let got = target.eval(values[target.var().index()]);
    (got == want).then_some(pattern)
}

/// Tries up to `attempts` randomized justifications and returns the first
/// verified pattern.
pub fn justify_with_retries(
    aig: &Aig,
    target: Lit,
    want: bool,
    attempts: usize,
    rng: &mut SplitMix64,
) -> Option<Vec<bool>> {
    (0..attempts).find_map(|_| justify(aig, target, want, rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn justifies_a_deep_and_cone() {
        // Random forward patterns hit AND-16 = 1 with probability 2^-16;
        // justification finds it immediately.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(16);
        let f = aig.and_all(xs.iter().copied());
        aig.add_po(f);
        let mut rng = SplitMix64::new(1);
        let p = justify(&aig, f, true, &mut rng).expect("justifiable");
        assert!(p.iter().all(|&b| b));
    }

    #[test]
    fn justifies_zero_through_complemented_edges() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let o = aig.or_all(xs.iter().copied());
        aig.add_po(o);
        let mut rng = SplitMix64::new(2);
        // OR of all inputs = 0 requires all inputs 0.
        let p = justify_with_retries(&aig, o, false, 8, &mut rng).expect("justifiable");
        assert!(p.iter().all(|&b| !b));
    }

    #[test]
    fn impossible_targets_fail() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        // f = a & !a folds to constant false; justify(TRUE) must fail.
        let f = aig.and(xs[0], !xs[0]);
        assert_eq!(f, Lit::FALSE);
        let mut rng = SplitMix64::new(3);
        assert!(justify(&aig, f, true, &mut rng).is_none());
        // And the constant itself.
        assert!(justify(&aig, Lit::TRUE, false, &mut rng).is_none());
    }

    #[test]
    fn reconvergent_conflicts_are_caught_by_verification() {
        // f = (a ^ b) & (a XNOR b) is constant 0 but not structurally so.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let x = aig.xor(xs[0], xs[1]);
        let nx = aig.xnor(xs[0], xs[1]);
        let f = aig.and(x, nx);
        let mut rng = SplitMix64::new(4);
        assert!(
            justify_with_retries(&aig, f, true, 32, &mut rng).is_none(),
            "verification must reject unjustifiable reconvergent targets"
        );
    }

    #[test]
    fn random_targets_always_verify_when_some() {
        let aig = parsweep_aig::random::random_aig(8, 80, 2, 5);
        let mut rng = SplitMix64::new(6);
        for i in 0..aig.num_nodes() {
            let v = Var::new(i as u32);
            for want in [false, true] {
                if let Some(p) = justify(&aig, v.lit(), want, &mut rng) {
                    let values = aig.eval_nodes(&p);
                    assert_eq!(values[v.index()], want, "node {i}");
                }
            }
        }
    }
}

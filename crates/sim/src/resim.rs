//! Dirty-cone resimulation: keep a signature table alive across miter
//! rewrites.
//!
//! When FRAIG merges proved pairs and rebuilds the miter, the previous
//! round's `Signatures` table is *mostly* still correct: a node whose TFI
//! contains no replaced node computes exactly the same function in the
//! rewritten network, so its memoized words (and canonical hash) carry
//! over verbatim. Only the TFO of the replaced nodes — the *dirty
//! frontier* — needs re-launching, level by level. [`ResimPlan`] computes
//! that split once per rewrite; [`ResimPlan::resimulate`] then executes
//! one wide copy launch for the clean nodes plus per-level launches over
//! the dirty ones.

use parsweep_aig::{Aig, Lit, Node, Var};
use parsweep_par::{Effect, EffectTable, Executor, Pattern};

use crate::partial::{eval_node, hash_zero_signature, Patterns, Signatures};

/// The clean/dirty split of a rewritten network against its predecessor:
/// which new nodes inherit memoized signature words from an old node, and
/// which sit downstream of a substitution and must be re-launched.
///
/// Built from the outputs of `Aig::rebuild_with_substitution`: the old
/// network, the rewritten network, the old-variable→new-literal `map`,
/// and the substitution that drove the rewrite. A new node is *clean*
/// when it is the image of an old node that is neither substituted nor
/// downstream of a substituted node — its cone, hence its function, is
/// unchanged, so this holds even for unsound substitutions (which is what
/// lets a property test validate the plan under random merges).
#[derive(Debug)]
pub struct ResimPlan {
    /// `(new_var, old_lit)`: the new node's words are the old literal's
    /// words (complement folded in by the copy kernel). Excludes the
    /// constant node, whose words are zero by construction.
    copies: Vec<(Var, Lit)>,
    /// Dirty new nodes grouped by topological level of the new network.
    dirty_groups: Vec<Vec<Var>>,
    /// Node count of the new network (the table size to lease).
    num_nodes: usize,
    num_dirty: usize,
}

impl ResimPlan {
    /// Plans the resimulation of `new = old.rebuild_with_substitution(subst)`,
    /// where `map` is the old→new literal map that rebuild returned.
    ///
    /// # Panics
    ///
    /// Panics if `map` or `subst` do not cover `old`'s nodes.
    pub fn new(old: &Aig, new: &Aig, map: &[Lit], subst: &[Lit]) -> Self {
        Self::new_with_exempt(old, new, map, subst, &[])
    }

    /// Like [`ResimPlan::new`], but substitutions of the listed old
    /// variables do **not** seed taint: their TFO keeps its memoized
    /// words instead of re-launching.
    ///
    /// Only sound for substitutions *proven PO-function-preserving*
    /// (the ODC replaceability check): downstream words may then be
    /// stale in unobservable bits only, which PO cex scans never read
    /// and class refinement can at worst split on (splitting is always
    /// sound). An exempt node still never donates its own words.
    pub fn new_with_exempt(
        old: &Aig,
        new: &Aig,
        map: &[Lit],
        subst: &[Lit],
        exempt: &[Var],
    ) -> Self {
        assert_eq!(map.len(), old.num_nodes(), "map size mismatch");
        assert_eq!(subst.len(), old.num_nodes(), "substitution size mismatch");
        let mut exempted = vec![false; old.num_nodes()];
        for &v in exempt {
            exempted[v.index()] = true;
        }
        // Taint the substituted old nodes and everything downstream of
        // them (ascending ids: fanins are visited before fanouts).
        // Exempt substitutions (proven observability-preserving) are
        // not taint sources, but stay non-donors below.
        let mut substituted = vec![false; old.num_nodes()];
        let mut tainted = vec![false; old.num_nodes()];
        for (i, node) in old.nodes().iter().enumerate() {
            let downstream = match node {
                Node::And(a, b) => tainted[a.var().index()] || tainted[b.var().index()],
                _ => false,
            };
            substituted[i] = subst[i] != Var::new(i as u32).lit();
            tainted[i] = downstream || (substituted[i] && !exempted[i]);
        }
        // First clean old node mapping onto each new variable donates its
        // words. The constant node needs no donor (leased buffers are
        // zeroed); tainted, substituted or dropped old nodes never
        // donate.
        let mut source: Vec<Option<Lit>> = vec![None; new.num_nodes()];
        source[0] = Some(Lit::FALSE);
        for (i, &lit) in map.iter().enumerate() {
            if tainted[i] || substituted[i] || lit.is_const() {
                continue;
            }
            let slot = &mut source[lit.var().index()];
            if slot.is_none() {
                *slot = Some(Var::new(i as u32).lit_with(lit.is_complemented()));
            }
        }
        let mut copies = Vec::new();
        let levels = new.levels();
        let mut dirty_groups: Vec<Vec<Var>> = Vec::new();
        let mut num_dirty = 0usize;
        for (v, slot) in source.iter().enumerate().skip(1) {
            let var = Var::new(v as u32);
            match slot {
                Some(old_lit) => copies.push((var, *old_lit)),
                None => {
                    let level = levels[v] as usize;
                    if dirty_groups.len() <= level {
                        dirty_groups.resize(level + 1, Vec::new());
                    }
                    dirty_groups[level].push(var);
                    num_dirty += 1;
                }
            }
        }
        ResimPlan {
            copies,
            dirty_groups,
            num_nodes: new.num_nodes(),
            num_dirty,
        }
    }

    /// Number of new nodes that inherit memoized words (one copy launch).
    pub fn num_clean(&self) -> usize {
        self.copies.len()
    }

    /// Number of new nodes on the dirty frontier (re-launched per level).
    pub fn num_dirty(&self) -> usize {
        self.num_dirty
    }

    /// Executes the plan: one copy launch moves every clean node's words
    /// (complement folded in; the canonical hash is complement-invariant
    /// and copies verbatim), then the dirty nodes re-launch level by
    /// level on the same stream.
    ///
    /// `old_sigs` must be the *full-coverage* table of the old network
    /// under exactly these `patterns` — the table [`crate::simulate`]
    /// produced, or a previous `resimulate` result (both cover every
    /// node). A support-pruned table is not a valid donor.
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from `old_sigs`'s.
    pub fn resimulate(
        &self,
        new: &Aig,
        exec: &Executor,
        patterns: &Patterns,
        old_sigs: &Signatures,
    ) -> Signatures {
        self.resimulate_with(new, exec, patterns, old_sigs, None)
    }

    /// [`ResimPlan::resimulate`] with an optional windowed residency
    /// policy: `Some` routes copies and dirty re-evals through the
    /// streamed driver (one [`crate::sigwin`] schedule, bounded device
    /// residency, donors read from `old_sigs`' tier transparently).
    ///
    /// # Panics
    ///
    /// Panics if the pattern width differs from `old_sigs`'s.
    pub fn resimulate_with(
        &self,
        new: &Aig,
        exec: &Executor,
        patterns: &Patterns,
        old_sigs: &Signatures,
        window: Option<&crate::sigwin::SigWindowConfig>,
    ) -> Signatures {
        if let Some(cfg) = window {
            assert_eq!(
                patterns.num_words(),
                old_sigs.num_words(),
                "resimulation patterns must match the memoized table"
            );
            return crate::sigwin::resimulate_streamed(
                new,
                exec,
                patterns,
                &self.copies,
                &self.dirty_groups,
                old_sigs,
                cfg,
            );
        }
        assert_eq!(
            patterns.num_words(),
            old_sigs.num_words(),
            "resimulation patterns must match the memoized table"
        );
        assert_eq!(
            patterns.num_pis(),
            new.num_pis(),
            "pattern/PI count mismatch"
        );
        let w = patterns.num_words();
        let mut data = exec.arena().take::<u64>(self.num_nodes * w);
        let mut hashes = exec.arena().take::<u64>(self.num_nodes);
        hashes[0] = hash_zero_signature(w);
        {
            // Declared effects: every launch writes data-dependent
            // disjoint node slots (copy: its clean node; level: its
            // dirty node) and level launches read earlier-written
            // fanins, all ordered by the single stream. Statically
            // verified, so the whole resim chain skips dynamic
            // sanitization.
            let table = EffectTable::new();
            let sig_buf = table.buffer("sim.resim.signatures", self.num_nodes * w);
            let hash_buf = table.buffer("sim.resim.hashes", self.num_nodes);
            let sig_all = Pattern::Indexed {
                lo: 0,
                hi: self.num_nodes * w,
            };
            let hash_all = Pattern::Indexed {
                lo: 0,
                hi: self.num_nodes,
            };
            let cells = exec.bind_table(&table, sig_buf, &mut data);
            let cells = &cells;
            let hcells = exec.bind_table(&table, hash_buf, &mut hashes);
            let hcells = &hcells;
            let copies = &self.copies;
            let mut stream = exec.stream();
            let copy_effects = [
                Effect::write(sig_buf, sig_all),
                Effect::write(hash_buf, hash_all),
            ];
            stream.launch_declared(
                &table,
                "sim.resim.copy",
                copies.len(),
                &copy_effects,
                move |t| {
                    let (nv, old_lit) = copies[t];
                    let mask = if old_lit.is_complemented() {
                        u64::MAX
                    } else {
                        0
                    };
                    let src = old_sigs.sig(old_lit.var());
                    for (k, &word) in src.iter().enumerate().take(w) {
                        // SAFETY: each tid writes only its own node's words;
                        // the donor table is a read-only host buffer.
                        unsafe { cells.write(t, nv.index() * w + k, word ^ mask) };
                    }
                    // SAFETY: each tid writes only its own node's hash slot.
                    unsafe { hcells.write(t, nv.index(), old_sigs.canonical_hash(old_lit.var())) };
                },
            );
            let level_effects = [
                Effect::read(sig_buf, sig_all),
                Effect::write(sig_buf, sig_all),
                Effect::write(hash_buf, hash_all),
            ];
            for group in &self.dirty_groups {
                stream.launch_declared(
                    &table,
                    "sim.resim.level",
                    group.len(),
                    &level_effects,
                    move |t| {
                        // Fanins are either clean (the copy launch above) or
                        // dirty at a strictly lower level (an earlier launch
                        // on this stream): the eval contract holds.
                        eval_node(new, group[t], t, w, patterns, cells, hcells);
                    },
                );
            }
            stream.sync();
        }
        Signatures::from_parts(w, data, hashes)
    }
}

//! Equivalence-class construction and in-place refinement from simulation
//! signatures.

use parsweep_aig::{Aig, Var};

use crate::odc::{OdcCandidate, OdcMasks};
use crate::partial::{hash_canonical_words, Signatures};

/// Clusters all nodes by phase-canonicalized signature.
///
/// Returns every class with at least two members, each sorted by id (the
/// minimum-id member — the paper's *representative* — first), ordered by
/// representative id. A node and its complement land in the same class;
/// the relative phase of two members is `sigs.phase(a) != sigs.phase(b)`.
pub fn signature_classes(aig: &Aig, sigs: &Signatures) -> Vec<Vec<Var>> {
    let all: Vec<Var> = (0..aig.num_nodes()).map(|i| Var::new(i as u32)).collect();
    signature_classes_among(sigs, &all)
}

/// Clusters only the given nodes by phase-canonicalized signature — the
/// companion of [`crate::simulate_pruned`], whose table is meaningful
/// only for live-cone members (dead nodes carry zeroed words that would
/// otherwise cluster into a bogus constant class).
///
/// Buckets come from the cached canonical-hash column (no rehash); the
/// exact canonical-word comparison runs only within a bucket. Same class
/// shape as [`signature_classes`]: sorted members, minimum-id
/// representative first, classes ordered by representative.
pub fn signature_classes_among(sigs: &Signatures, nodes: &[Var]) -> Vec<Vec<Var>> {
    use std::collections::HashMap;
    let mut buckets: HashMap<u64, Vec<Var>> = HashMap::new();
    for &v in nodes {
        buckets.entry(sigs.canonical_hash(v)).or_default().push(v);
    }
    let mut classes = Vec::new();
    for (_, mut members) in buckets {
        if members.len() < 2 {
            continue;
        }
        members.sort_unstable();
        // Split hash buckets by exact canonical signature.
        while members.len() >= 2 {
            let repr = members[0];
            let repr_sig: Vec<u64> = sigs.canonical(repr).collect();
            let (same, rest): (Vec<Var>, Vec<Var>) = members
                .into_iter()
                .partition(|&m| sigs.canonical(m).eq(repr_sig.iter().copied()));
            if same.len() >= 2 {
                classes.push(same);
            }
            members = rest;
        }
    }
    classes.sort_by_key(|c| c[0]);
    classes
}

/// Refines classes in place against a fresh round of signatures, instead
/// of rebucketing every node from scratch.
///
/// `base` is the table the classes were built from (it supplies each
/// member's *persistent* phase); `fresh` is the new round's table (a
/// pruned table covering the class members suffices). Two members `a`,
/// `b` stay together iff the fresh patterns still support the class
/// relation `a == b ^ (phase_a != phase_b)` — i.e. their fresh words
/// agree after each is normalized by its own base phase.
///
/// The fast path hashes each member's normalized fresh words and leaves a
/// class untouched when every member hashes like its representative —
/// "split only classes containing a dirty member". (A 64-bit hash
/// collision can only *keep* a doomed candidate pair, which the
/// exhaustive prover later discharges; it can never produce a wrong
/// merge, since merges come from exhaustive simulation alone.)
///
/// Splinter groups keep the invariants of [`signature_classes`]: sorted
/// members, singletons dropped, classes ordered by representative.
/// Returns the number of classes that split or shrank.
pub fn refine_classes(classes: &mut Vec<Vec<Var>>, base: &Signatures, fresh: &Signatures) -> usize {
    use std::collections::HashMap;
    let normalized_hash = |m: Var| {
        let mask = if base.phase(m) { u64::MAX } else { 0 };
        hash_canonical_words(fresh.sig(m).iter().map(|&w| w ^ mask))
    };
    let mut refined = 0usize;
    let mut out: Vec<Vec<Var>> = Vec::with_capacity(classes.len());
    for class in classes.drain(..) {
        let repr_hash = normalized_hash(class[0]);
        if class[1..].iter().all(|&m| normalized_hash(m) == repr_hash) {
            out.push(class);
            continue;
        }
        refined += 1;
        // Some member diverged: regroup this class by exact normalized
        // fresh words (hash buckets first, exact compare within).
        let mut buckets: HashMap<u64, Vec<Var>> = HashMap::new();
        for &m in &class {
            buckets.entry(normalized_hash(m)).or_default().push(m);
        }
        let normalized = |m: Var| {
            let mask = if base.phase(m) { u64::MAX } else { 0 };
            fresh.sig(m).iter().map(move |&w| w ^ mask)
        };
        for (_, mut members) in buckets {
            while members.len() >= 2 {
                let repr = members[0];
                let repr_sig: Vec<u64> = normalized(repr).collect();
                let (same, rest): (Vec<Var>, Vec<Var>) = members
                    .into_iter()
                    .partition(|&m| normalized(m).eq(repr_sig.iter().copied()));
                if same.len() >= 2 {
                    out.push(same);
                }
                members = rest;
            }
        }
    }
    out.sort_by_key(|c| c[0]);
    *classes = out;
    refined
}

/// [`refine_classes`] with observability don't-cares: exact splitting is
/// unchanged, but pairs whose disagreement is invisible get recorded.
///
/// Whenever a class splits, each splintered member is compared against
/// the class representative one more time under the member's care mask:
/// if every differing fresh bit is a don't-care bit of the member (the
/// flip cannot reach an output under any simulated pattern), the pair is
/// pushed as an [`OdcCandidate`] for the exact
/// [`crate::check_replaceable`] proof — at most `limit` candidates per
/// call. The classes themselves still split exactly (the masks are
/// approximate, so keeping such a pair merged would be unsound); a
/// proven candidate is merged by the engine as a substitution instead.
///
/// `masks` must have been computed over `fresh`'s pattern set (widths
/// must match). Returns the refined-class count and the candidates.
///
/// # Panics
///
/// Panics if `masks` and `fresh` disagree on the word width.
pub fn refine_classes_odc(
    classes: &mut Vec<Vec<Var>>,
    base: &Signatures,
    fresh: &Signatures,
    masks: &OdcMasks,
    limit: usize,
) -> (usize, Vec<OdcCandidate>) {
    use std::collections::HashMap;
    assert_eq!(
        masks.num_words(),
        fresh.num_words(),
        "care masks must cover the fresh pattern set"
    );
    let normalized_hash = |m: Var| {
        let mask = if base.phase(m) { u64::MAX } else { 0 };
        hash_canonical_words(fresh.sig(m).iter().map(|&w| w ^ mask))
    };
    let normalized = |m: Var| {
        let mask = if base.phase(m) { u64::MAX } else { 0 };
        fresh.sig(m).iter().map(move |&w| w ^ mask)
    };
    let mut refined = 0usize;
    let mut candidates: Vec<OdcCandidate> = Vec::new();
    let mut out: Vec<Vec<Var>> = Vec::with_capacity(classes.len());
    for class in classes.drain(..) {
        let repr = class[0];
        let repr_hash = normalized_hash(repr);
        if class[1..].iter().all(|&m| normalized_hash(m) == repr_hash) {
            out.push(class);
            continue;
        }
        refined += 1;
        // Before splitting, sieve the divergent members: a member whose
        // every differing bit is masked by its own don't-cares is an
        // ODC candidate (still split — the merge needs an exact proof).
        let repr_sig: Vec<u64> = normalized(repr).collect();
        for &m in &class[1..] {
            if candidates.len() >= limit {
                break;
            }
            let care = masks.care(m);
            let mut differs = false;
            let mut observable = false;
            for ((a, b), &c) in normalized(m).zip(repr_sig.iter()).zip(care) {
                let diff = a ^ b;
                differs |= diff != 0;
                observable |= diff & c != 0;
            }
            if differs && !observable {
                candidates.push(OdcCandidate {
                    repr,
                    member: m,
                    complement: base.phase(repr) != base.phase(m),
                });
            }
        }
        let mut buckets: HashMap<u64, Vec<Var>> = HashMap::new();
        for &m in &class {
            buckets.entry(normalized_hash(m)).or_default().push(m);
        }
        for (_, mut members) in buckets {
            while members.len() >= 2 {
                let head = members[0];
                let head_sig: Vec<u64> = normalized(head).collect();
                let (same, rest): (Vec<Var>, Vec<Var>) = members
                    .into_iter()
                    .partition(|&m| normalized(m).eq(head_sig.iter().copied()));
                if same.len() >= 2 {
                    out.push(same);
                }
                members = rest;
            }
        }
    }
    out.sort_by_key(|c| c[0]);
    *classes = out;
    (refined, candidates)
}

/// Scans the PO signatures for a fired miter output and extracts the
/// distinguishing input pattern, if any.
///
/// Returns a counter-example as soon as some PO evaluates to 1 under one
/// of the simulated patterns (constant-true POs yield the all-zero
/// pattern).
pub fn find_po_counterexample(
    aig: &Aig,
    sigs: &Signatures,
    patterns: &crate::partial::Patterns,
) -> Option<crate::Cex> {
    use parsweep_aig::Lit;
    for &po in aig.pos() {
        if po == Lit::FALSE {
            continue;
        }
        if po == Lit::TRUE {
            return Some(crate::Cex::new(vec![false; aig.num_pis()]));
        }
        let mask = if po.is_complemented() { u64::MAX } else { 0 };
        for (w, &word) in sigs.sig(po.var()).iter().enumerate() {
            let fired = word ^ mask;
            if fired != 0 {
                let bit = fired.trailing_zeros() as usize;
                let p = w * 64 + bit;
                let inputs = (0..aig.num_pis())
                    .map(|i| patterns.word(i, p / 64) >> (p % 64) & 1 == 1)
                    .collect();
                return Some(crate::Cex::new(inputs));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial::{simulate, Patterns};
    use parsweep_aig::Aig;
    use parsweep_par::Executor;

    #[test]
    fn clusters_equal_functions_and_complements() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        // Two structurally distinct forms of a & b: plain, and the
        // redundant (a | b) & (a & b).
        let f1 = aig.and(xs[0], xs[1]);
        let t = aig.or(xs[0], xs[1]);
        let g = aig.and(t, f1);
        aig.add_po(g);
        aig.add_po(!f1);
        let patterns = Patterns::random(3, 4, 9);
        let sigs = simulate(&aig, &Executor::with_threads(1), &patterns);
        let classes = signature_classes(&aig, &sigs);
        // f1 and g's var must share a class.
        let has = classes
            .iter()
            .any(|c| c.contains(&f1.var()) && c.contains(&g.var()));
        assert!(has, "classes: {classes:?}");
    }

    #[test]
    fn refine_splits_only_dirty_classes() {
        // xor(a,b) three ways plus and(a,b) twice: under one word of
        // patterns that never exercises a distinguishing input, all five
        // land together; a fresh round with the distinguishing pattern
        // must split exactly that one class.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let x1 = aig.xor(xs[0], xs[1]);
        let o = aig.or(xs[0], xs[1]);
        let n = aig.and(xs[0], xs[1]);
        let x2 = aig.and(o, !n);
        aig.add_po(x1);
        aig.add_po(x2);
        aig.add_po(n);
        let exec = Executor::with_threads(1);
        // Base patterns: only the all-zero and all-one inputs, where XOR
        // is 0 and OR == AND — or/and/xor relations all degenerate.
        let base_p = Patterns::from_raw(2, 1, vec![0b10, 0b10]);
        let base = simulate(&aig, &exec, &base_p);
        let mut classes = signature_classes(&aig, &base);
        let before = classes.clone();
        // A fresh all-zero round changes nothing: zero classes refined.
        let dull = simulate(&aig, &exec, &Patterns::from_raw(2, 1, vec![0, 0]));
        assert_eq!(refine_classes(&mut classes, &base, &dull), 0);
        assert_eq!(classes, before);
        // A (0,1) pattern separates xor/or (true) from and (false).
        let sharp = simulate(&aig, &exec, &Patterns::from_raw(2, 1, vec![0, 1]));
        let refined = refine_classes(&mut classes, &base, &sharp);
        assert!(refined > 0, "classes: {classes:?}");
        for class in &classes {
            assert!(class.windows(2).all(|w| w[0] < w[1]));
            assert!(class.len() >= 2);
        }
    }

    #[test]
    fn representative_is_minimum_id() {
        let aig = parsweep_aig::random::random_aig(5, 60, 2, 8);
        let patterns = Patterns::random(5, 2, 3);
        let sigs = simulate(&aig, &Executor::with_threads(1), &patterns);
        for class in signature_classes(&aig, &sigs) {
            assert!(class.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

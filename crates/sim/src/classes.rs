//! Equivalence-class construction from simulation signatures.

use parsweep_aig::{Aig, Var};

use crate::partial::Signatures;

/// Clusters all nodes by phase-canonicalized signature.
///
/// Returns every class with at least two members, each sorted by id (the
/// minimum-id member — the paper's *representative* — first), ordered by
/// representative id. A node and its complement land in the same class;
/// the relative phase of two members is `sigs.phase(a) != sigs.phase(b)`.
pub fn signature_classes(aig: &Aig, sigs: &Signatures) -> Vec<Vec<Var>> {
    use std::collections::HashMap;
    let mut buckets: HashMap<u64, Vec<Var>> = HashMap::new();
    for i in 0..aig.num_nodes() {
        let v = Var::new(i as u32);
        buckets.entry(sigs.canonical_hash(v)).or_default().push(v);
    }
    let mut classes = Vec::new();
    for (_, mut members) in buckets {
        if members.len() < 2 {
            continue;
        }
        members.sort_unstable();
        // Split hash buckets by exact canonical signature.
        while members.len() >= 2 {
            let repr = members[0];
            let repr_sig: Vec<u64> = sigs.canonical(repr).collect();
            let (same, rest): (Vec<Var>, Vec<Var>) = members
                .into_iter()
                .partition(|&m| sigs.canonical(m).eq(repr_sig.iter().copied()));
            if same.len() >= 2 {
                classes.push(same);
            }
            members = rest;
        }
    }
    classes.sort_by_key(|c| c[0]);
    classes
}

/// Scans the PO signatures for a fired miter output and extracts the
/// distinguishing input pattern, if any.
///
/// Returns a counter-example as soon as some PO evaluates to 1 under one
/// of the simulated patterns (constant-true POs yield the all-zero
/// pattern).
pub fn find_po_counterexample(
    aig: &Aig,
    sigs: &Signatures,
    patterns: &crate::partial::Patterns,
) -> Option<crate::Cex> {
    use parsweep_aig::Lit;
    for &po in aig.pos() {
        if po == Lit::FALSE {
            continue;
        }
        if po == Lit::TRUE {
            return Some(crate::Cex::new(vec![false; aig.num_pis()]));
        }
        let mask = if po.is_complemented() { u64::MAX } else { 0 };
        for (w, &word) in sigs.sig(po.var()).iter().enumerate() {
            let fired = word ^ mask;
            if fired != 0 {
                let bit = fired.trailing_zeros() as usize;
                let p = w * 64 + bit;
                let inputs = (0..aig.num_pis())
                    .map(|i| patterns.word(i, p / 64) >> (p % 64) & 1 == 1)
                    .collect();
                return Some(crate::Cex::new(inputs));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial::{simulate, Patterns};
    use parsweep_aig::Aig;
    use parsweep_par::Executor;

    #[test]
    fn clusters_equal_functions_and_complements() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        // Two structurally distinct forms of a & b: plain, and the
        // redundant (a | b) & (a & b).
        let f1 = aig.and(xs[0], xs[1]);
        let t = aig.or(xs[0], xs[1]);
        let g = aig.and(t, f1);
        aig.add_po(g);
        aig.add_po(!f1);
        let patterns = Patterns::random(3, 4, 9);
        let sigs = simulate(&aig, &Executor::with_threads(1), &patterns);
        let classes = signature_classes(&aig, &sigs);
        // f1 and g's var must share a class.
        let has = classes
            .iter()
            .any(|c| c.contains(&f1.var()) && c.contains(&g.var()));
        assert!(has, "classes: {classes:?}");
    }

    #[test]
    fn representative_is_minimum_id() {
        let aig = parsweep_aig::random::random_aig(5, 60, 2, 8);
        let patterns = Patterns::random(5, 2, 3);
        let sigs = simulate(&aig, &Executor::with_threads(1), &patterns);
        for class in signature_classes(&aig, &sigs) {
            assert!(class.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

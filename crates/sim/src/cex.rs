//! Counter-examples.

use parsweep_aig::{Aig, Var};

/// A counter-example: an assignment to the primary inputs *by position*
/// (index `i` is the value of the `i`-th PI).
///
/// Positional storage survives miter reductions: rebuilding an AIG changes
/// node ids but preserves PI order, so a counter-example found on a
/// reduced miter remains meaningful on the original.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cex {
    inputs: Vec<bool>,
}

impl Cex {
    /// Creates a counter-example from positional PI values.
    pub fn new(inputs: Vec<bool>) -> Self {
        Cex { inputs }
    }

    /// Creates a counter-example from a sparse variable assignment over
    /// `aig`'s PIs; unmentioned PIs are `false`, non-PI variables ignored.
    pub fn from_sparse(aig: &Aig, assignment: &[(Var, bool)]) -> Self {
        let mut inputs = vec![false; aig.num_pis()];
        let mut position = vec![usize::MAX; aig.num_nodes()];
        for (i, pi) in aig.pis().iter().enumerate() {
            position[pi.index()] = i;
        }
        for &(var, value) in assignment {
            if let Some(&p) = position.get(var.index()) {
                if p != usize::MAX {
                    inputs[p] = value;
                }
            }
        }
        Cex { inputs }
    }

    /// The positional PI values.
    pub fn inputs(&self) -> &[bool] {
        &self.inputs
    }

    /// Expands to a dense PI-ordered assignment for `aig`, padding with
    /// `false` or truncating if the PI counts differ.
    pub fn to_dense(&self, aig: &Aig) -> Vec<bool> {
        let mut dense = self.inputs.clone();
        dense.resize(aig.num_pis(), false);
        dense
    }

    /// True if the counter-example actually fires some PO of `aig`.
    pub fn fires(&self, aig: &Aig) -> bool {
        aig.eval(&self.to_dense(aig)).iter().any(|&x| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::Aig;

    #[test]
    fn sparse_construction_defaults_to_false() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let cex = Cex::from_sparse(&aig, &[(xs[1].var(), true)]);
        assert_eq!(cex.to_dense(&aig), vec![false, true, false]);
    }

    #[test]
    fn positional_is_stable_across_clean() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        let _dangling = aig.or(xs[0], xs[1]);
        aig.add_po(f);
        let cex = Cex::new(vec![true, true]);
        let cleaned = aig.clean();
        assert!(cex.fires(&aig));
        assert!(cex.fires(&cleaned));
    }

    #[test]
    fn dense_pads_and_truncates() {
        let mut aig = Aig::new();
        aig.add_inputs(4);
        let cex = Cex::new(vec![true]);
        assert_eq!(cex.to_dense(&aig), vec![true, false, false, false]);
    }
}

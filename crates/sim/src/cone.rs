//! Exact truth tables of small single-output cones.
//!
//! The semantic cache keys a cone by the NPN-canonical form of its truth
//! table; this module computes that table by one bit-parallel pass over
//! the cone in topological order, seeding each input with its projection
//! pattern. Complementation XORs full words, so for `k < 6` the result
//! carries dirty don't-care upper bits — it is returned through
//! [`TruthTable::from_sim_words`] and must be [`TruthTable::masked`]
//! (or canonicalized, which masks at its boundary) before any word-level
//! comparison.

use parsweep_aig::{Aig, Node};

use crate::npn::MAX_NPN_VARS;
use crate::tt::{projection_word, word_len, TruthTable};

/// Computes the exact truth table of a single-output cone.
///
/// Returns `None` when the AIG is not a cone the canonicalizer can
/// handle: more than one primary output, or more than `max_vars`
/// (clamped to [`MAX_NPN_VARS`]) primary inputs.
pub fn cone_truth_table(aig: &Aig, max_vars: usize) -> Option<TruthTable> {
    let k = aig.num_pis();
    if aig.num_pos() != 1 || k > max_vars.min(MAX_NPN_VARS) {
        return None;
    }
    let wlen = word_len(k);
    let mut words = vec![0u64; aig.num_nodes() * wlen];
    for (idx, node) in aig.nodes().iter().enumerate() {
        match *node {
            Node::Const => {} // words already zero
            Node::Input(pi) => {
                for w in 0..wlen {
                    words[idx * wlen + w] = projection_word(pi as usize, w);
                }
            }
            Node::And(a, b) => {
                let ma = if a.is_complemented() { u64::MAX } else { 0 };
                let mb = if b.is_complemented() { u64::MAX } else { 0 };
                for w in 0..wlen {
                    let wa = words[a.var().index() * wlen + w] ^ ma;
                    let wb = words[b.var().index() * wlen + w] ^ mb;
                    words[idx * wlen + w] = wa & wb;
                }
            }
        }
    }
    let po = aig.po(0);
    let mpo = if po.is_complemented() { u64::MAX } else { 0 };
    let base = po.var().index() * wlen;
    let out: Vec<u64> = (0..wlen).map(|w| words[base + w] ^ mpo).collect();
    Some(TruthTable::from_sim_words(k, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_pointwise_eval() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let f = aig.and(xs[0], xs[1]);
        let g = aig.or(!xs[2], xs[3]);
        let h = aig.xor(f, g);
        aig.add_po(!h);
        let tt = cone_truth_table(&aig, MAX_NPN_VARS).expect("cone qualifies");
        let want = TruthTable::from_fn(4, |i| {
            let bits: Vec<bool> = (0..4).map(|j| i >> j & 1 == 1).collect();
            aig.eval(&bits)[0]
        });
        assert_eq!(tt.masked(), want);
    }

    #[test]
    fn complemented_po_leaves_dirty_upper_bits() {
        // k = 2 with a complemented PO: the XOR with !0 dirties bits 4..64,
        // which masked() must clear.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        aig.add_po(!f); // NAND
        let tt = cone_truth_table(&aig, MAX_NPN_VARS).expect("cone qualifies");
        assert!(tt.words()[0] >> 4 != 0, "raw sim words keep don't-cares");
        assert_eq!(tt.masked(), TruthTable::from_fn(2, |i| i != 3));
    }

    #[test]
    fn rejects_multi_po_and_wide_cones() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(7);
        let f = aig.and_all(xs.iter().copied());
        aig.add_po(f);
        assert!(cone_truth_table(&aig, MAX_NPN_VARS).is_none(), "7 PIs");
        let mut two = Aig::new();
        let ys = two.add_inputs(2);
        two.add_po(ys[0]);
        two.add_po(ys[1]);
        assert!(cone_truth_table(&two, MAX_NPN_VARS).is_none(), "2 POs");
        let mut narrow = Aig::new();
        let zs = narrow.add_inputs(3);
        let g = narrow.and_all(zs.iter().copied());
        narrow.add_po(g);
        assert!(cone_truth_table(&narrow, 2).is_none(), "max_vars bound");
        assert!(cone_truth_table(&narrow, 3).is_some());
    }

    #[test]
    fn wide_tables_use_projection_words() {
        // k = 6 exercises the multi-word-free but full-word path.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(6);
        let f = aig.xor(xs[0], xs[5]);
        aig.add_po(f);
        let tt = cone_truth_table(&aig, MAX_NPN_VARS).expect("cone qualifies");
        let want = TruthTable::from_fn(6, |i| (i & 1 == 1) != (i >> 5 & 1 == 1));
        assert_eq!(tt.masked(), want);
    }
}

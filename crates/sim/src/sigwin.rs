//! Level-windowed signature streaming — bounded device residency for
//! partial simulation.
//!
//! Whole-table partial simulation leases `num_nodes * num_words` words
//! from the executor's device arena, which is exactly the memory wall the
//! paper's GPU sweeping runs into at industrial scale. This module keeps
//! only a *window* of topological levels resident: a [`SigWindow`]
//! planner walks the level groups once, computes each level's last
//! reader, assigns levels to reusable slot intervals in one bounded
//! device buffer, and schedules a *spill* launch (`sim.window.spill`)
//! that retires a level's columns to a spill tier as soon as every
//! fanout reader level has executed (delayed by at least
//! [`SigWindowConfig::window_levels`] levels of slack). The resulting
//! [`Signatures`] table transparently serves spilled columns for cex
//! scans, class refinement and dirty-cone donor reads — callers cannot
//! tell it apart from a resident table except through the residency
//! counters ([`parsweep_par::LaunchStats::spill_peak_bytes`],
//! `parsweep_sim_window_*`).
//!
//! Two spill tiers exist: **host staging** (the default — one pooled
//! buffer from [`Executor::spill_pool`], the analogue of pinned host
//! memory behind a `cudaMemcpyAsync`) and an optional **disk** tier
//! ([`SpillTier::Disk`]) that writes columns to an unlinked temporary
//! file and re-materializes levels lazily on first read
//! (`sim.window.fill`).

use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parsweep_aig::{Aig, Lit, Node, Var};
use parsweep_par::{Effect, EffectTable, Executor, Pattern, PooledBuf};
use parsweep_trace::{self as trace, metrics::SimCounters};

use crate::partial::{hash_zero_signature, Patterns, Signatures};

/// Where retired signature columns go.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillTier {
    /// Arena-pooled host staging buffer (leased from
    /// [`Executor::spill_pool`], kept out of the gated device arena).
    #[default]
    Host,
    /// An unlinked temporary file; spilled levels are re-read lazily on
    /// first access. Slowest tier, smallest host footprint.
    Disk,
}

/// Configuration of level-windowed signature streaming.
///
/// `None` at the engine level means whole-table residency (the default,
/// bit-identical to the pre-streaming pipeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SigWindowConfig {
    /// Minimum number of levels a column stays resident *behind the
    /// execution frontier* before it may retire (it never retires before
    /// its last fanout reader executes, regardless). `1` retires as
    /// eagerly as correctness allows; `usize::MAX` keeps everything
    /// resident until the run ends (spill-at-end, useful to measure the
    /// spill path without the windowing).
    pub window_levels: usize,
    /// Spill tier for retired columns.
    pub tier: SpillTier,
}

impl Default for SigWindowConfig {
    fn default() -> Self {
        SigWindowConfig {
            window_levels: 4,
            tier: SpillTier::Host,
        }
    }
}

impl SigWindowConfig {
    /// A window of `levels` levels spilling to host staging.
    pub fn with_levels(levels: usize) -> Self {
        SigWindowConfig {
            window_levels: levels.max(1),
            ..Self::default()
        }
    }

    /// Same window, spilling to the disk tier.
    pub fn on_disk(mut self) -> Self {
        self.tier = SpillTier::Disk;
        self
    }
}

/// One unit of per-level work in the streamed driver.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Task {
    /// Evaluate the node from its fanins (or pattern words).
    Eval(Var),
    /// Copy the old table's words for `Lit` (complement folded in) into
    /// the node's column — the dirty-cone resimulator's clean path.
    Copy(Var, Lit),
}

impl Task {
    fn var(self) -> Var {
        match self {
            Task::Eval(v) | Task::Copy(v, _) => v,
        }
    }
}

/// First-fit free-interval allocator over a growable word space — assigns
/// each level a contiguous slot interval at plan time, reusing intervals
/// freed by retired levels. The high-water mark is the device buffer
/// size the streamed run leases.
#[derive(Debug, Default)]
struct SlotAllocator {
    /// Disjoint, sorted, coalesced free intervals `(off, len)`.
    free: Vec<(usize, usize)>,
    /// Size of the allocated address space so far (grows on demand).
    end: usize,
}

impl SlotAllocator {
    fn alloc(&mut self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        for i in 0..self.free.len() {
            let (off, flen) = self.free[i];
            if flen >= len {
                if flen == len {
                    self.free.remove(i);
                } else {
                    self.free[i] = (off + len, flen - len);
                }
                return off;
            }
        }
        // No interval fits: grow the space. If the last free interval
        // abuts the end, extend it instead of leaving a hole.
        if let Some(&(off, flen)) = self.free.last() {
            if off + flen == self.end {
                self.free.pop();
                self.end = off + len;
                return off;
            }
        }
        let off = self.end;
        self.end += len;
        off
    }

    fn release(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let idx = self.free.partition_point(|&(o, _)| o < off);
        self.free.insert(idx, (off, len));
        // Coalesce with neighbours.
        if idx + 1 < self.free.len() && self.free[idx].0 + self.free[idx].1 == self.free[idx + 1].0
        {
            self.free[idx].1 += self.free[idx + 1].1;
            self.free.remove(idx + 1);
        }
        if idx > 0 && self.free[idx - 1].0 + self.free[idx - 1].1 == self.free[idx].0 {
            self.free[idx - 1].1 += self.free[idx].1;
            self.free.remove(idx);
        }
    }
}

/// The residency schedule of one streamed run: slot intervals per level,
/// retirement points, and the var→(level, position) maps shared with the
/// spilled table.
#[derive(Debug)]
pub(crate) struct SigWindow {
    /// Device slot offset (in words) of each level while resident.
    slot_off: Vec<usize>,
    /// Levels to spill after executing level `g` (and, at index
    /// `num_levels`, the levels still resident at the end of the run).
    retire_after: Vec<Vec<usize>>,
    /// Device slot buffer size in words (the residency high-water mark).
    slot_words: usize,
    /// Spill-tier offset (in words) of each level, level-major packed.
    spill_off: Vec<usize>,
    /// Total spill-tier words (covered nodes only).
    total_words: usize,
    /// Topological level of each covered var (`u32::MAX` = uncovered).
    level_of: Vec<u32>,
    /// Position of each covered var inside its level.
    pos_of: Vec<u32>,
}

impl SigWindow {
    /// Plans the streamed execution of `tasks` (one `Vec` per level, in
    /// topological order) over an `num_nodes`-node network.
    pub(crate) fn plan(aig: &Aig, tasks: &[Vec<Task>], w: usize, cfg: &SigWindowConfig) -> Self {
        let num_levels = tasks.len();
        let mut level_of = vec![u32::MAX; aig.num_nodes()];
        let mut pos_of = vec![0u32; aig.num_nodes()];
        for (l, group) in tasks.iter().enumerate() {
            for (p, task) in group.iter().enumerate() {
                level_of[task.var().index()] = l as u32;
                pos_of[task.var().index()] = p as u32;
            }
        }
        // A level's last reader: the highest level holding an Eval task
        // with a fanin in it. A level nothing reads may retire right
        // after executing (subject to the window slack).
        let mut last_reader: Vec<usize> = (0..num_levels).collect();
        for (l, group) in tasks.iter().enumerate() {
            for task in group {
                if let Task::Eval(v) = task {
                    if let Node::And(a, b) = aig.node(*v) {
                        for f in [a.var(), b.var()] {
                            let fl = level_of[f.index()];
                            if fl != u32::MAX {
                                let fl = fl as usize;
                                last_reader[fl] = last_reader[fl].max(l);
                            }
                        }
                    }
                }
            }
        }
        // Walk the schedule once: allocate a slot interval per level,
        // retire levels whose readers are done and whose window slack
        // elapsed, and record the retirement order for the driver to
        // replay. `retire_after[num_levels]` catches everything still
        // resident when the run ends (the whole table for window=∞).
        let mut alloc = SlotAllocator::default();
        let mut slot_off = vec![0usize; num_levels];
        let mut retire_after: Vec<Vec<usize>> = vec![Vec::new(); num_levels + 1];
        let mut resident: Vec<usize> = Vec::new();
        for (g, group) in tasks.iter().enumerate() {
            slot_off[g] = alloc.alloc(group.len() * w);
            resident.push(g);
            let window = cfg.window_levels.max(1);
            resident.retain(|&l| {
                let done = last_reader[l] <= g && g + 1 >= window.saturating_add(l);
                if done {
                    alloc.release(slot_off[l], tasks[l].len() * w);
                    retire_after[g].push(l);
                }
                !done
            });
        }
        retire_after[num_levels] = std::mem::take(&mut resident);
        let mut spill_off = vec![0usize; num_levels];
        let mut total_words = 0usize;
        for (l, group) in tasks.iter().enumerate() {
            spill_off[l] = total_words;
            total_words += group.len() * w;
        }
        SigWindow {
            slot_off,
            retire_after,
            slot_words: alloc.end,
            spill_off,
            total_words,
            level_of,
            pos_of,
        }
    }
}

/// Post-run storage of a windowed run: every covered column lives in the
/// spill tier, addressed by (level, position-in-level).
#[derive(Debug)]
pub(crate) struct SpilledTable {
    num_words: usize,
    level_of: Vec<u32>,
    pos_of: Vec<u32>,
    spill_off: Vec<usize>,
    /// Vars per level — the read-back order of a disk-tier fill.
    level_vars: Vec<Vec<Var>>,
    store: SpillStore,
    /// Served for uncovered vars, matching the zeroed lease of a pruned
    /// resident table.
    zeros: Vec<u64>,
}

#[derive(Debug)]
enum SpillStore {
    Host(PooledBuf<u64>),
    Disk {
        file: Arc<File>,
        /// Lazily filled per-level segments (position-major words).
        segments: Vec<OnceLock<Vec<u64>>>,
    },
}

impl Clone for SpilledTable {
    fn clone(&self) -> Self {
        SpilledTable {
            num_words: self.num_words,
            level_of: self.level_of.clone(),
            pos_of: self.pos_of.clone(),
            spill_off: self.spill_off.clone(),
            level_vars: self.level_vars.clone(),
            store: match &self.store {
                SpillStore::Host(buf) => SpillStore::Host(buf.clone()),
                SpillStore::Disk { file, segments } => SpillStore::Disk {
                    file: Arc::clone(file),
                    segments: segments.clone(),
                },
            },
            zeros: self.zeros.clone(),
        }
    }
}

impl SpilledTable {
    /// The signature words of `var` — a direct staging read on the host
    /// tier, a lazy level fill (`sim.window.fill`) on the disk tier.
    pub(crate) fn sig(&self, var: Var) -> &[u64] {
        let w = self.num_words;
        let l = self.level_of[var.index()];
        if l == u32::MAX {
            return &self.zeros;
        }
        let (l, pos) = (l as usize, self.pos_of[var.index()] as usize);
        match &self.store {
            SpillStore::Host(buf) => {
                let off = self.spill_off[l] + pos * w;
                &buf[off..off + w]
            }
            SpillStore::Disk { file, segments } => {
                let seg = segments[l].get_or_init(|| {
                    let _span = trace::span("sim", "sim.window.fill");
                    let words = self.level_vars[l].len() * w;
                    let mut bytes = vec![0u8; words * 8];
                    use std::os::unix::fs::FileExt;
                    file.read_exact_at(&mut bytes, (self.spill_off[l] * 8) as u64)
                        .expect("sigwin disk fill");
                    let c = trace::metrics::sim_counters();
                    SimCounters::add(&c.window_fills, 1);
                    SimCounters::add(&c.window_filled_words, words as u64);
                    bytes
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                        .collect()
                });
                &seg[pos * w..(pos + 1) * w]
            }
        }
    }
}

/// A raw shared word pointer the spill kernels write through — the
/// executor-model stand-in for the device→host `cudaMemcpyAsync` target.
/// Soundness is the spill launch's tid-disjointness: each tid owns one
/// node's `w`-word chunk of the staging buffer.
#[derive(Clone, Copy)]
struct StagingPtr(*mut u64);
// SAFETY: the pointer is only dereferenced inside spill kernels whose
// tids write disjoint chunks, and launches on one stream are ordered, so
// no two threads ever write the same word concurrently.
unsafe impl Send for StagingPtr {}
// SAFETY: as above — all concurrent access is to disjoint words.
unsafe impl Sync for StagingPtr {}

impl StagingPtr {
    /// # Safety
    ///
    /// `idx` must be in bounds of the staging allocation and no other
    /// thread may concurrently access the same word.
    unsafe fn write(self, idx: usize, word: u64) {
        // SAFETY: forwarded from the caller's contract.
        unsafe { self.0.add(idx).write(word) };
    }
}

/// Monotonic name counter for disk-tier spill files (unlinked right
/// after creation, so the name only needs to be process-unique).
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn spill_file() -> File {
    let seq = SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "parsweep-sigwin-{}-{}.spill",
        std::process::id(),
        seq
    ));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)
        .expect("sigwin spill file");
    // Unlink immediately: the fd keeps the data alive, nothing can
    // collide with the name, and the file vanishes with the process.
    let _ = std::fs::remove_file(&path);
    file
}

/// Executes a level-task schedule with windowed residency and returns a
/// [`Signatures`] table backed by the spill tier. Shared by the full,
/// support-pruned and dirty-cone streamed paths ([`Task::Copy`] entries
/// read their donor columns from `old`, which must cover them).
///
/// Bit-for-bit equivalent to the resident drivers: the eval kernel is
/// the same and/complement/hash math, only the addressing differs.
pub(crate) fn run_streamed(
    aig: &Aig,
    exec: &Executor,
    patterns: &Patterns,
    tasks: &[Vec<Task>],
    old: Option<&Signatures>,
    cfg: &SigWindowConfig,
) -> Signatures {
    assert_eq!(
        patterns.num_pis(),
        aig.num_pis(),
        "pattern/PI count mismatch"
    );
    let w = patterns.num_words();
    let plan = SigWindow::plan(aig, tasks, w, cfg);
    let mut slots = exec.arena().take::<u64>(plan.slot_words);
    let mut hashes = exec.arena().take::<u64>(aig.num_nodes());
    hashes[0] = hash_zero_signature(w);
    // The spill target: host staging (pooled, separate from the device
    // arena) or an unlinked temp file.
    let mut staging: Option<PooledBuf<u64>> = None;
    let mut disk: Option<Arc<File>> = None;
    let staging_ptr = match cfg.tier {
        SpillTier::Host => {
            let buf = staging.insert(exec.spill_pool().take::<u64>(plan.total_words));
            StagingPtr(buf.as_mut_ptr())
        }
        SpillTier::Disk => {
            disk = Some(Arc::new(spill_file()));
            StagingPtr(std::ptr::null_mut())
        }
    };
    let disk_file: Option<&File> = disk.as_deref();
    {
        let table = EffectTable::new();
        let slot_buf = table.buffer("sim.sigwin.slots", plan.slot_words.max(1));
        let hash_buf = table.buffer("sim.sigwin.hashes", aig.num_nodes());
        let cells = exec.bind_table(&table, slot_buf, &mut slots);
        let cells = &cells;
        let hcells = exec.bind_table(&table, hash_buf, &mut hashes);
        let hcells = &hcells;
        let eval_effects = [
            Effect::read(
                slot_buf,
                Pattern::Indexed {
                    lo: 0,
                    hi: plan.slot_words.max(1),
                },
            ),
            Effect::write(
                slot_buf,
                Pattern::Indexed {
                    lo: 0,
                    hi: plan.slot_words.max(1),
                },
            ),
            Effect::write(
                hash_buf,
                Pattern::Indexed {
                    lo: 0,
                    hi: aig.num_nodes(),
                },
            ),
        ];
        let plan_ref = &plan;
        let tier = cfg.tier;
        let mut stream = exec.stream();
        for g in 0..=tasks.len() {
            if g < tasks.len() {
                let group = &tasks[g][..];
                stream.launch_declared(
                    &table,
                    "sim.sigwin.level",
                    group.len(),
                    &eval_effects,
                    move |t| {
                        eval_task(
                            aig,
                            group[t],
                            t,
                            w,
                            patterns,
                            old,
                            plan_ref,
                            plan_ref.slot_off[g],
                            cells,
                            hcells,
                        );
                    },
                );
            }
            // Retire every level whose readers have all executed (and
            // whose window slack elapsed): one `sim.window.spill`
            // launch each, per-thread strided reads declared exactly.
            // The freed slot interval may be reused by a later level —
            // sound because launches on one stream are ordered.
            for &l in &plan.retire_after[g] {
                let n = tasks[l].len();
                if n == 0 {
                    continue;
                }
                let _span = trace::span("sim", "sim.window.spill");
                let (slot_lo, spill_lo) = (plan.slot_off[l], plan.spill_off[l]);
                let spill_effects = [Effect::read(
                    slot_buf,
                    Pattern::Affine {
                        base: slot_lo,
                        stride: w,
                        span: w,
                    },
                )];
                stream.launch_declared(&table, "sim.window.spill", n, &spill_effects, move |t| {
                    match tier {
                        SpillTier::Host => {
                            for k in 0..w {
                                // SAFETY: the slot words were written by
                                // earlier launches on this stream; each
                                // tid writes a disjoint staging chunk
                                // (see StagingPtr).
                                unsafe {
                                    let word = cells.read(t, slot_lo + t * w + k);
                                    staging_ptr.write(spill_lo + t * w + k, word);
                                }
                            }
                        }
                        SpillTier::Disk => {
                            let file = disk_file.expect("disk tier spill file");
                            let mut bytes = vec![0u8; w * 8];
                            for k in 0..w {
                                // SAFETY: the slot words were written by
                                // earlier launches on this stream.
                                let word = unsafe { cells.read(t, slot_lo + t * w + k) };
                                bytes[k * 8..(k + 1) * 8].copy_from_slice(&word.to_le_bytes());
                            }
                            use std::os::unix::fs::FileExt;
                            file.write_all_at(&bytes, ((spill_lo + t * w) * 8) as u64)
                                .expect("sigwin disk spill");
                        }
                    }
                });
                exec.note_window_spill((n * w * 8) as u64);
                let c = trace::metrics::sim_counters();
                SimCounters::add(&c.window_spills, 1);
                SimCounters::add(&c.window_spilled_words, (n * w) as u64);
            }
        }
        stream.sync();
    }
    drop(slots); // the window's device lease ends here
    let store = match cfg.tier {
        SpillTier::Host => SpillStore::Host(staging.expect("host staging allocated")),
        SpillTier::Disk => SpillStore::Disk {
            file: disk.expect("disk spill file created"),
            segments: (0..tasks.len()).map(|_| OnceLock::new()).collect(),
        },
    };
    let spilled = SpilledTable {
        num_words: w,
        level_of: plan.level_of,
        pos_of: plan.pos_of,
        spill_off: plan.spill_off,
        level_vars: tasks
            .iter()
            .map(|g| g.iter().map(|t| t.var()).collect())
            .collect(),
        store,
        zeros: vec![0u64; w],
    };
    Signatures::from_spilled(w, spilled, hashes)
}

/// One streamed task: the same per-node math as
/// [`crate::partial::eval_node`], addressed through the level's slot
/// interval instead of a node-major table.
#[allow(clippy::too_many_arguments)]
fn eval_task(
    aig: &Aig,
    task: Task,
    t: usize,
    w: usize,
    patterns: &Patterns,
    old: Option<&Signatures>,
    plan: &SigWindow,
    my_off: usize,
    cells: &parsweep_par::DeviceSlice<'_, u64>,
    hcells: &parsweep_par::DeviceSlice<'_, u64>,
) {
    let slot_of = |v: Var| -> usize {
        let l = plan.level_of[v.index()] as usize;
        plan.slot_off[l] + plan.pos_of[v.index()] as usize * w
    };
    match task {
        Task::Copy(v, old_lit) => {
            let old = old.expect("Copy tasks need a donor table");
            let mask = if old_lit.is_complemented() {
                u64::MAX
            } else {
                0
            };
            let src = old.sig(old_lit.var());
            let base = my_off + t * w;
            for (k, &word) in src.iter().enumerate().take(w) {
                // SAFETY: each tid writes only its own slot chunk; the
                // donor table is a read-only host buffer.
                unsafe { cells.write(t, base + k, word ^ mask) };
            }
            // SAFETY: each tid writes only its own hash slot (the hash
            // is complement-invariant and copies verbatim).
            unsafe { hcells.write(t, v.index(), old.canonical_hash(old_lit.var())) };
        }
        Task::Eval(v) => match aig.node(v) {
            Node::Const => {
                let base = my_off + t * w;
                for k in 0..w {
                    // SAFETY: each tid writes only its own slot chunk
                    // (slots are recycled, so zeroing is not implicit).
                    unsafe { cells.write(t, base + k, 0) };
                }
                // SAFETY: each tid writes only its own hash slot.
                unsafe { hcells.write(t, v.index(), hash_zero_signature(w)) };
            }
            Node::Input(pi) => {
                let mask = if patterns.word(pi as usize, 0) & 1 == 1 {
                    u64::MAX
                } else {
                    0
                };
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                let base = my_off + t * w;
                for k in 0..w {
                    let word = patterns.word(pi as usize, k);
                    h ^= word ^ mask;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                    // SAFETY: each tid writes only its own slot chunk.
                    unsafe { cells.write(t, base + k, word) };
                }
                // SAFETY: each tid writes only its own hash slot.
                unsafe { hcells.write(t, v.index(), h) };
            }
            Node::And(a, b) => {
                let ma = if a.is_complemented() { u64::MAX } else { 0 };
                let mb = if b.is_complemented() { u64::MAX } else { 0 };
                let (sa, sb) = (slot_of(a.var()), slot_of(b.var()));
                let base = my_off + t * w;
                let mut mask = 0;
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for k in 0..w {
                    // SAFETY: fanin slots were written by earlier
                    // launches on this stream and stay resident until
                    // their last reader (this launch at the latest) has
                    // run; each tid writes only its own slot chunk.
                    unsafe {
                        let wa = cells.read(t, sa + k) ^ ma;
                        let wb = cells.read(t, sb + k) ^ mb;
                        let word = wa & wb;
                        if k == 0 {
                            mask = if word & 1 == 1 { u64::MAX } else { 0 };
                        }
                        h ^= word ^ mask;
                        h = h.wrapping_mul(0x0000_0100_0000_01b3);
                        cells.write(t, base + k, word);
                    }
                }
                // SAFETY: each tid writes only its own hash slot.
                unsafe { hcells.write(t, v.index(), h) };
            }
        },
    }
}

/// Streamed full simulation: every node of `aig`, windowed residency.
pub(crate) fn simulate_streamed(
    aig: &Aig,
    exec: &Executor,
    patterns: &Patterns,
    groups: &[Vec<Var>],
    cfg: &SigWindowConfig,
) -> Signatures {
    let tasks: Vec<Vec<Task>> = groups
        .iter()
        .map(|g| g.iter().map(|&v| Task::Eval(v)).collect())
        .collect();
    run_streamed(aig, exec, patterns, &tasks, None, cfg)
}

/// Streamed dirty-cone resimulation: clean nodes become [`Task::Copy`]
/// entries bucketed by their (new) topological level, dirty nodes stay
/// [`Task::Eval`] — one schedule, one residency policy.
pub(crate) fn resimulate_streamed(
    new: &Aig,
    exec: &Executor,
    patterns: &Patterns,
    copies: &[(Var, Lit)],
    dirty_groups: &[Vec<Var>],
    old: &Signatures,
    cfg: &SigWindowConfig,
) -> Signatures {
    let levels = new.levels();
    let depth = new
        .num_nodes()
        .min(levels.iter().map(|&l| l as usize + 1).max().unwrap_or(0));
    let mut tasks: Vec<Vec<Task>> = vec![Vec::new(); depth.max(dirty_groups.len())];
    for (l, group) in dirty_groups.iter().enumerate() {
        for &v in group {
            tasks[l].push(Task::Eval(v));
        }
    }
    for &(v, old_lit) in copies {
        tasks[levels[v.index()] as usize].push(Task::Copy(v, old_lit));
    }
    run_streamed(new, exec, patterns, &tasks, Some(old), cfg)
}

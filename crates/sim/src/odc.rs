//! Observability don't-care (ODC) masks and exact replaceability
//! checking — don't-care-aware resimulation in the shape of rrr's
//! `DcSimulator`.
//!
//! A node deep inside the miter is rarely observable at every output for
//! every pattern: reconvergence and controlling fanin values mask many
//! of its value bits. [`OdcMasks`] computes an approximate per-node
//! *care* mask over the simulated patterns by pulling observability
//! down the level structure from the miter's output cones (one declared
//! kernel launch per level, descending). Class refinement can then
//! ignore masked bits: a candidate pair whose fresh signatures differ
//! only in don't-care bits of the would-be-substituted member is *not*
//! discarded but recorded (see [`crate::refine_classes_odc`]) and
//! handed to [`check_replaceable`], an exact bounded proof that
//! replacing the member with its representative preserves every output
//! function. The masks are a filter, never a proof: merges only happen
//! when the exact check succeeds.

use std::collections::HashMap;

use parsweep_aig::{Aig, Node, Var};
use parsweep_par::{Effect, EffectTable, Executor, Pattern, PooledBuf};

use crate::partial::Signatures;
use crate::tt::{projection_word, word_len};

/// Knobs of the ODC layer (engine-level `None` disables it entirely).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OdcConfig {
    /// Maximum ODC candidate pairs examined by the exact replaceability
    /// check per refinement round.
    pub check_limit: usize,
    /// Maximum TFO cone size explored around a candidate member; larger
    /// cones give up (the check must stay cheap).
    pub cone_cap: usize,
    /// Maximum primary-input support of the exhaustively evaluated
    /// region (`2^max_inputs` assignments, 64 per word).
    pub max_inputs: usize,
    /// Exempt proven-replaceable substitutions from dirty-cone resim
    /// taint: their TFO keeps memoized words (stale only in
    /// unobservable bits, which output scans never read).
    pub resim_skip: bool,
}

impl Default for OdcConfig {
    fn default() -> Self {
        OdcConfig {
            check_limit: 8,
            cone_cap: 32,
            max_inputs: 12,
            resim_skip: true,
        }
    }
}

/// A split pair whose disagreement was entirely masked by the member's
/// don't-care bits: `member`'s fresh words differ from `repr`'s only
/// where flipping `member` cannot reach an output. Produced by
/// [`crate::refine_classes_odc`]; merged only after [`check_replaceable`]
/// proves the substitution `member := repr ^ complement` exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OdcCandidate {
    /// The class representative (minimum id — the substitution target).
    pub repr: Var,
    /// The member that split away on don't-care bits only.
    pub member: Var,
    /// Relative phase of the pair under the base table.
    pub complement: bool,
}

/// Hard bound on the exhaustively re-evaluated region, independent of
/// its PI support (keeps a pathological deep-but-narrow cone cheap).
const REGION_CAP: usize = 2048;

/// Forward fanout edges of an AIG in CSR form ([`Aig`] itself only
/// stores fanins; `topo.rs` only offers counts). One entry per distinct
/// fanin var of each AND node.
#[derive(Debug)]
pub struct Fanouts {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Fanouts {
    /// Builds the CSR from the network's AND nodes.
    pub fn build(aig: &Aig) -> Self {
        let n = aig.num_nodes();
        let mut counts = vec![0u32; n];
        let each = |aig: &Aig, mut f: Box<dyn FnMut(usize, usize) + '_>| {
            for i in 0..n {
                if let Node::And(a, b) = aig.node(Var::new(i as u32)) {
                    f(a.var().index(), i);
                    if b.var() != a.var() {
                        f(b.var().index(), i);
                    }
                }
            }
        };
        each(aig, Box::new(|fanin, _| counts[fanin] += 1));
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut next = offsets[..n].to_vec();
        let mut targets = vec![0u32; offsets[n] as usize];
        each(
            aig,
            Box::new(|fanin, u| {
                targets[next[fanin] as usize] = u as u32;
                next[fanin] += 1;
            }),
        );
        Fanouts { offsets, targets }
    }

    /// The AND nodes reading `v`.
    pub fn of(&self, v: Var) -> &[u32] {
        let (lo, hi) = (
            self.offsets[v.index()] as usize,
            self.offsets[v.index() + 1] as usize,
        );
        &self.targets[lo..hi]
    }
}

/// Approximate per-node care masks over one simulated pattern set:
/// bit `p` of `care(v)` is 1 when flipping `v` in pattern `p` *may* be
/// observable at an output (single-gate sensitivity pulled through the
/// fanout CSR, reconvergence ignored). A zero bit is only a *filter*
/// signal — exact checking gates every merge.
#[derive(Debug)]
pub struct OdcMasks {
    num_words: usize,
    care: PooledBuf<u64>,
}

impl OdcMasks {
    /// Computes care masks from a simulated table, level-wise from the
    /// output cones: output driver vars care about every bit; an inner
    /// node's care is the OR over its fanouts `u` of
    /// `care(u) & sensitivity(u wrt v)`. One declared launch per level,
    /// descending, on one stream.
    ///
    /// `sigs` must cover every node on a path to an output (the pruned
    /// tables of miter-mode refinement rounds do — their live set is
    /// extended with the PO vars). Nodes outside that cone get zero
    /// care, which is exact: they reach no output.
    pub fn compute(aig: &Aig, exec: &Executor, sigs: &Signatures, fanouts: &Fanouts) -> Self {
        let w = sigs.num_words();
        let n = aig.num_nodes();
        let mut care = exec.arena().take::<u64>(n * w);
        let mut is_output = vec![false; n];
        for &po in aig.pos() {
            if !po.is_const() {
                is_output[po.var().index()] = true;
            }
        }
        // Seed output drivers host-side (their kernels still run — the
        // ones-write is idempotent — but seeding keeps levels with no
        // outputs correct too).
        for (v, &out) in is_output.iter().enumerate() {
            if out {
                care[v * w..(v + 1) * w].fill(u64::MAX);
            }
        }
        let mut groups = aig.level_groups();
        groups.reverse();
        {
            let table = EffectTable::new();
            let care_buf = table.buffer("sim.odc.care", n * w);
            let cells = exec.bind_table(&table, care_buf, &mut care);
            let cells = &cells;
            let effects = [
                Effect::read(care_buf, Pattern::Indexed { lo: 0, hi: n * w }),
                Effect::write(care_buf, Pattern::Indexed { lo: 0, hi: n * w }),
            ];
            let is_output = &is_output;
            let mut stream = exec.stream();
            for group in &groups {
                let group = &group[..];
                stream.launch_declared(&table, "sim.odc.level", group.len(), &effects, move |t| {
                    let v = group[t];
                    let vi = v.index();
                    if is_output[vi] {
                        for k in 0..w {
                            // SAFETY: each tid writes only its own
                            // node's care words.
                            unsafe { cells.write(t, vi * w + k, u64::MAX) };
                        }
                        return;
                    }
                    for k in 0..w {
                        let mut acc = 0u64;
                        for &u in fanouts.of(v) {
                            let uv = Var::new(u);
                            let Node::And(a, b) = aig.node(uv) else {
                                continue;
                            };
                            // SAFETY: fanouts sit at strictly higher
                            // levels, written by earlier (descending)
                            // launches on this stream.
                            let cu = unsafe { cells.read(t, u as usize * w + k) };
                            let sens = if a.var() == b.var() {
                                // Degenerate AND over one var: either
                                // the identity/complement (fully
                                // sensitive) or constant false.
                                if a.is_complemented() == b.is_complemented() {
                                    u64::MAX
                                } else {
                                    0
                                }
                            } else {
                                let other = if a.var() == v { b } else { a };
                                let mask = if other.is_complemented() { u64::MAX } else { 0 };
                                sigs.sig(other.var())[k] ^ mask
                            };
                            acc |= cu & sens;
                        }
                        // SAFETY: each tid writes only its own node's
                        // care words.
                        unsafe { cells.write(t, vi * w + k, acc) };
                    }
                });
            }
            stream.sync();
        }
        OdcMasks { num_words: w, care }
    }

    /// Words per node (matches the table the masks were computed from).
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// The care mask words of `var`.
    pub fn care(&self, var: Var) -> &[u64] {
        &self.care[var.index() * self.num_words..(var.index() + 1) * self.num_words]
    }
}

/// Exact bounded replaceability: may `member` be replaced by
/// `repr ^ complement` without changing any output function?
///
/// Explores `member`'s TFO (capped at [`OdcConfig::cone_cap`] nodes),
/// takes the cone's *frontier outputs* `O` (cone nodes driving an
/// output or read outside the cone), re-evaluates the exact region
/// `tfi(O ∪ {repr})` exhaustively over its primary-input support
/// (capped at [`OdcConfig::max_inputs`] PIs, [`REGION_CAP`] nodes) in
/// both the original and the patched network, and accepts only if every
/// frontier output computes an identical function. A `true` verdict is
/// a proof; `false` means "could not prove cheaply", never "wrong".
pub fn check_replaceable(
    aig: &Aig,
    repr: Var,
    member: Var,
    complement: bool,
    fanouts: &Fanouts,
    cfg: &OdcConfig,
) -> bool {
    if repr >= member {
        return false; // ascending eval order patches member after repr
    }
    // Bounded TFO cone of the member.
    let mut cone: Vec<Var> = vec![member];
    let mut in_cone: HashMap<Var, ()> = HashMap::from([(member, ())]);
    let mut i = 0;
    while i < cone.len() {
        for &u in fanouts.of(cone[i]) {
            let uv = Var::new(u);
            if in_cone.insert(uv, ()).is_none() {
                cone.push(uv);
                if cone.len() > cfg.cone_cap {
                    return false;
                }
            }
        }
        i += 1;
    }
    // Frontier outputs: cone nodes observable outside the cone.
    let mut is_output = vec![false; aig.num_nodes()];
    for &po in aig.pos() {
        if !po.is_const() {
            is_output[po.var().index()] = true;
        }
    }
    let outputs: Vec<Var> = cone
        .iter()
        .copied()
        .filter(|&c| {
            is_output[c.index()]
                || fanouts
                    .of(c)
                    .iter()
                    .any(|&u| !in_cone.contains_key(&Var::new(u)))
        })
        .collect();
    if outputs.is_empty() {
        return true; // nothing observable depends on the member
    }
    // The exact region: every node feeding a frontier output or the
    // representative, evaluated exhaustively over its PI support.
    let mut roots = outputs.clone();
    roots.push(repr);
    let region = aig.tfi_cone(&roots); // sorted ascending
    if region.len() > REGION_CAP {
        return false;
    }
    let mut support: Vec<Var> = Vec::new();
    for &v in &region {
        if matches!(aig.node(v), Node::Input(_)) {
            support.push(v);
        }
    }
    if support.len() > cfg.max_inputs {
        return false;
    }
    let k = support.len();
    let words = word_len(k);
    let proj: HashMap<Var, usize> = support.iter().enumerate().map(|(j, &v)| (v, j)).collect();
    let eval = |patch: bool| -> Vec<Vec<u64>> {
        let mut values: HashMap<Var, Vec<u64>> = HashMap::new();
        for &v in &region {
            let val: Vec<u64> = match aig.node(v) {
                Node::Const => vec![0; words],
                Node::Input(_) => {
                    let j = proj[&v];
                    (0..words).map(|x| projection_word(j, x)).collect()
                }
                Node::And(a, b) => {
                    let ma = if a.is_complemented() { u64::MAX } else { 0 };
                    let mb = if b.is_complemented() { u64::MAX } else { 0 };
                    let va = &values[&a.var()];
                    let vb = &values[&b.var()];
                    (0..words).map(|x| (va[x] ^ ma) & (vb[x] ^ mb)).collect()
                }
            };
            let val = if patch && v == member {
                let mc = if complement { u64::MAX } else { 0 };
                values[&repr].iter().map(|&x| x ^ mc).collect()
            } else {
                val
            };
            values.insert(v, val);
        }
        outputs
            .iter()
            .map(|o| values.remove(o).expect("frontier output evaluated"))
            .collect()
    };
    eval(false) == eval(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial::{simulate, Patterns};
    use parsweep_aig::Aig;
    use parsweep_par::Executor;

    #[test]
    fn output_drivers_care_about_everything() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        aig.add_po(f);
        let exec = Executor::with_threads(1);
        let sigs = simulate(&aig, &exec, &Patterns::random(2, 2, 7));
        let fanouts = Fanouts::build(&aig);
        let masks = OdcMasks::compute(&aig, &exec, &sigs, &fanouts);
        assert!(masks.care(f.var()).iter().all(|&m| m == u64::MAX));
    }

    #[test]
    fn controlled_fanin_is_masked() {
        // g = a & b, f = g & a: when a = 0, g is unobservable through f
        // (a controls the AND), and nothing else reads g.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let g = aig.and(xs[0], xs[1]);
        let f = aig.and(g, xs[0]);
        aig.add_po(f);
        let exec = Executor::with_threads(1);
        let patterns = Patterns::random(2, 2, 13);
        let sigs = simulate(&aig, &exec, &patterns);
        let fanouts = Fanouts::build(&aig);
        let masks = OdcMasks::compute(&aig, &exec, &sigs, &fanouts);
        for k in 0..2 {
            let a_val = sigs.sig(xs[0].var())[k];
            assert_eq!(
                masks.care(g.var())[k],
                a_val,
                "g is observable exactly where a = 1"
            );
        }
    }

    #[test]
    fn replaceability_proves_odc_equivalent_pair() {
        // f = a & b; m = a | b; out = f & m. The OR is stored as a
        // complemented NOR node w (m = !w), so the candidate pair is
        // (f, w) with complement=true: w is only observable through out
        // when f = 1 (a = b = 1), where w = 0 = !f. Replacing w by !f
        // preserves out, though w and !f differ on (1,0)/(0,1) — a
        // plain signature comparison would never merge them.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        let m = aig.or(xs[0], xs[1]);
        let out = aig.and(f, m);
        aig.add_po(out);
        let fanouts = Fanouts::build(&aig);
        let cfg = OdcConfig::default();
        assert!(check_replaceable(
            &aig,
            f.var(),
            m.var(),
            true,
            &fanouts,
            &cfg
        ));
        // The same-phase substitution (w := f) turns out into
        // f & !f = 0: refuted.
        assert!(!check_replaceable(
            &aig,
            f.var(),
            m.var(),
            false,
            &fanouts,
            &cfg
        ));
    }

    #[test]
    fn replaceability_refutes_observable_difference() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        let m = aig.or(xs[0], xs[1]);
        aig.add_po(f);
        aig.add_po(m);
        let fanouts = Fanouts::build(&aig);
        let cfg = OdcConfig::default();
        assert!(!check_replaceable(
            &aig,
            f.var(),
            m.var(),
            false,
            &fanouts,
            &cfg
        ));
    }
}

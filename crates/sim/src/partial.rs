//! Partial (sampled) bit-parallel simulation.
//!
//! The sweeping flow starts by simulating a few hundred random patterns on
//! every node of the miter; nodes with equal signatures form the initial
//! equivalence classes. Counter-example patterns from disproved pairs are
//! later resimulated to refine the classes (§III-A "partial simulator").

use parsweep_aig::{Aig, Node, Var};
use parsweep_par::{DeviceSlice, Effect, EffectTable, Executor, Pattern, PooledBuf};

use crate::Cex;

/// A packed set of input patterns: `num_words * 64` assignments, stored
/// PI-major (pattern bit `p` of PI `i` is bit `p % 64` of word
/// `i * num_words + p / 64`).
#[derive(Clone, Debug)]
pub struct Patterns {
    num_pis: usize,
    num_words: usize,
    data: Vec<u64>,
}

impl Patterns {
    /// Generates uniformly random patterns from a seed (deterministic).
    pub fn random(num_pis: usize, num_words: usize, seed: u64) -> Self {
        let mut rng = parsweep_aig::random::SplitMix64::new(seed);
        let data = (0..num_pis * num_words).map(|_| rng.next_u64()).collect();
        Patterns {
            num_pis,
            num_words,
            data,
        }
    }

    /// Packs counter-examples (one per bit position) into patterns,
    /// padding the rest of the final word by repeating the last CEX.
    ///
    /// Returns `None` if `cexs` is empty.
    pub fn from_cexs(aig: &Aig, cexs: &[Cex]) -> Option<Self> {
        if cexs.is_empty() {
            return None;
        }
        let num_pis = aig.num_pis();
        let num_words = cexs.len().div_ceil(64);
        let mut data = vec![0u64; num_pis * num_words];
        let denses: Vec<Vec<bool>> = cexs.iter().map(|c| c.to_dense(aig)).collect();
        for p in 0..num_words * 64 {
            let dense = &denses[p.min(denses.len() - 1)];
            for (i, &v) in dense.iter().enumerate() {
                if v {
                    data[i * num_words + p / 64] |= 1u64 << (p % 64);
                }
            }
        }
        Some(Patterns {
            num_pis,
            num_words,
            data,
        })
    }

    /// Packs counter-examples together with their *distance-1 neighbours*
    /// (one input bit flipped), the CEX-amplification technique of
    /// Mishchenko et al. (ICCAD'06) cited in the paper's Discussion:
    /// every CEX yields a full 64-pattern word — the CEX itself plus 63
    /// single-bit flips (deterministically chosen from `seed` when the
    /// network has more than 63 PIs).
    ///
    /// Returns `None` if `cexs` is empty.
    pub fn from_cexs_distance1(aig: &Aig, cexs: &[Cex], seed: u64) -> Option<Self> {
        if cexs.is_empty() {
            return None;
        }
        let num_pis = aig.num_pis();
        let num_words = cexs.len();
        let mut rng = parsweep_aig::random::SplitMix64::new(seed);
        let mut data = vec![0u64; num_pis * num_words];
        for (w, cex) in cexs.iter().enumerate() {
            let dense = cex.to_dense(aig);
            // Choose the flip position for each of the 63 neighbour slots.
            let flip_at: Vec<usize> = (0..63)
                .map(|k| {
                    if num_pis <= 63 {
                        k % num_pis.max(1)
                    } else {
                        rng.below(num_pis)
                    }
                })
                .collect();
            for (i, &v) in dense.iter().enumerate() {
                let mut word = if v { u64::MAX } else { 0 };
                for (k, &pos) in flip_at.iter().enumerate() {
                    if pos == i {
                        word ^= 1u64 << (k + 1);
                    }
                }
                data[i * num_words + w] = word;
            }
        }
        Some(Patterns {
            num_pis,
            num_words,
            data,
        })
    }

    /// Builds patterns from raw PI-major words.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != num_pis * num_words`.
    pub fn from_raw(num_pis: usize, num_words: usize, data: Vec<u64>) -> Self {
        assert_eq!(data.len(), num_pis * num_words, "raw pattern size mismatch");
        Patterns {
            num_pis,
            num_words,
            data,
        }
    }

    /// Concatenates two pattern sets over the same PIs.
    ///
    /// # Panics
    ///
    /// Panics if the PI counts differ.
    pub fn concat(&self, other: &Patterns) -> Patterns {
        let mut out = self.clone();
        out.extend(other);
        out
    }

    /// Appends another pattern set in place — the refinement loop's
    /// per-round CEX injection, without [`Patterns::concat`]'s fresh
    /// allocation and double copy.
    ///
    /// The storage is PI-major, so each PI's word run is moved to its new
    /// offset (back to front, sources still intact) and `other`'s words
    /// are spliced in behind it.
    ///
    /// # Panics
    ///
    /// Panics if the PI counts differ.
    pub fn extend(&mut self, other: &Patterns) {
        assert_eq!(self.num_pis, other.num_pis, "PI counts differ");
        let (w1, w2) = (self.num_words, other.num_words);
        if w2 == 0 {
            return;
        }
        let total = w1 + w2;
        self.data.resize(self.num_pis * total, 0);
        for pi in (0..self.num_pis).rev() {
            self.data.copy_within(pi * w1..pi * w1 + w1, pi * total);
            self.data[pi * total + w1..(pi + 1) * total]
                .copy_from_slice(&other.data[pi * w2..(pi + 1) * w2]);
        }
        self.num_words = total;
    }

    /// Number of PIs covered.
    pub fn num_pis(&self) -> usize {
        self.num_pis
    }

    /// Number of 64-bit words per PI.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Word `w` of PI index `pi`.
    #[inline]
    pub fn word(&self, pi: usize, w: usize) -> u64 {
        self.data[pi * self.num_words + w]
    }
}

/// Per-node simulation signatures: `num_words` words per node, node-major,
/// plus a cached canonical-hash column (one word per node) filled by the
/// simulation kernels so class bucketing never rehashes signatures on the
/// host.
///
/// The backing storage is leased from the executor's [`BufferArena`]
/// (`parsweep_par::BufferArena`): dropping a `Signatures` returns the
/// words to the pool, so repeated resimulation rounds recycle one
/// allocation instead of churning the allocator.
///
/// A table produced by a *windowed* run (see [`crate::sigwin`]) is
/// backed by the spill tier instead of a resident device lease; every
/// accessor works identically, so refinement, cex scans and dirty-cone
/// donor reads route through the window transparently.
#[derive(Clone, Debug)]
pub struct Signatures {
    num_words: usize,
    store: SigStore,
    hashes: PooledBuf<u64>,
}

/// Where a signature table's value words live.
#[derive(Clone, Debug)]
pub(crate) enum SigStore {
    /// Whole-table device residency (the pre-streaming layout).
    Resident(PooledBuf<u64>),
    /// Level-windowed run: columns live in the spill tier.
    Spilled(crate::sigwin::SpilledTable),
}

/// FNV-1a over phase-canonicalized signature words — the shared hash used
/// by the device kernels (cache fill), [`Signatures::canonical_hash`] and
/// the class refiner, so every path buckets identically.
pub(crate) fn hash_canonical_words(words: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cached hash of a node that was never simulated (all-zero words,
/// canonical form all-zero): identical to the constant node's hash, so it
/// must only be exposed for nodes a pruned run actually covered.
pub(crate) fn hash_zero_signature(num_words: usize) -> u64 {
    hash_canonical_words((0..num_words).map(|_| 0u64))
}

impl Signatures {
    /// Number of words per node.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// The signature (non-complemented value words) of a variable.
    #[inline]
    pub fn sig(&self, var: Var) -> &[u64] {
        match &self.store {
            SigStore::Resident(data) => {
                &data[var.index() * self.num_words..(var.index() + 1) * self.num_words]
            }
            SigStore::Spilled(table) => table.sig(var),
        }
    }

    /// The phase of a variable: the value of its first simulated bit.
    ///
    /// Signatures canonicalized by phase cluster a node and its complement
    /// into the same equivalence class, ABC-style.
    #[inline]
    pub fn phase(&self, var: Var) -> bool {
        self.sig(var)[0] & 1 == 1
    }

    /// Returns an iterator over the phase-canonicalized signature words of
    /// a variable (complemented so the first bit is zero).
    pub fn canonical(&self, var: Var) -> impl Iterator<Item = u64> + '_ {
        let mask = if self.phase(var) { u64::MAX } else { 0 };
        self.sig(var).iter().map(move |&w| w ^ mask)
    }

    /// A 64-bit hash of the canonical signature, for fast class bucketing.
    ///
    /// Served from the cached column the simulation kernels filled — no
    /// per-call rehash. The cache is valid for every node a full
    /// [`simulate`] covered; after [`simulate_pruned`] it is only valid
    /// for the constant node and nodes inside the live cone (dead nodes
    /// carry the zeroed-buffer sentinel).
    #[inline]
    pub fn canonical_hash(&self, var: Var) -> u64 {
        self.hashes[var.index()]
    }
}

impl Signatures {
    /// Assembles a signature table from already-filled buffers (the
    /// dirty-cone resimulator's construction path).
    pub(crate) fn from_parts(
        num_words: usize,
        data: PooledBuf<u64>,
        hashes: PooledBuf<u64>,
    ) -> Self {
        Signatures {
            num_words,
            store: SigStore::Resident(data),
            hashes,
        }
    }

    /// Assembles a windowed table from a spill-tier store (the streamed
    /// driver's construction path).
    pub(crate) fn from_spilled(
        num_words: usize,
        table: crate::sigwin::SpilledTable,
        hashes: PooledBuf<u64>,
    ) -> Self {
        Signatures {
            num_words,
            store: SigStore::Spilled(table),
            hashes,
        }
    }

    /// True when this table is backed by the spill tier (a windowed run)
    /// rather than a whole-table device lease.
    pub fn is_windowed(&self) -> bool {
        matches!(self.store, SigStore::Spilled(_))
    }
}

/// Simulates all nodes of `aig` on the given patterns, level-parallel.
///
/// The kernel structure mirrors the paper's partial simulator: nodes of
/// one topological level are one kernel launch. All level launches are
/// queued on one [`parsweep_par::Stream`] (program order on a stream is
/// an ordering edge, so each level sees its fanin levels' words) and the
/// signature table is leased from the executor's buffer arena.
pub fn simulate(aig: &Aig, exec: &Executor, patterns: &Patterns) -> Signatures {
    simulate_groups(aig, exec, patterns, &aig.level_groups())
}

/// [`simulate`] with an optional level-windowed residency policy:
/// `None` keeps the whole table resident (bit-identical to
/// [`simulate`]); `Some` streams levels through a bounded window and
/// returns a spill-tier-backed table with identical contents.
pub fn simulate_with(
    aig: &Aig,
    exec: &Executor,
    patterns: &Patterns,
    window: Option<&crate::sigwin::SigWindowConfig>,
) -> Signatures {
    match window {
        None => simulate(aig, exec, patterns),
        Some(cfg) => {
            crate::sigwin::simulate_streamed(aig, exec, patterns, &aig.level_groups(), cfg)
        }
    }
}

/// Simulates only the TFI cone of `live` — the support-pruned partial
/// simulator. After the first refinement round most of a miter is dead
/// weight: only nodes feeding a still-undecided candidate can influence a
/// class split, so each level launch is restricted to cone members and
/// levels whose cone slice is empty launch nothing at all.
///
/// Nodes outside the cone keep the leased buffer's zero words **and** a
/// zero hash sentinel: the returned table is only meaningful for cone
/// members and the constant node. Derive classes with
/// [`crate::signature_classes_among`] over (a subset of) `live`, never
/// with the full [`crate::signature_classes`].
pub fn simulate_pruned(
    aig: &Aig,
    exec: &Executor,
    patterns: &Patterns,
    live: &[Var],
) -> Signatures {
    simulate_pruned_counted(aig, exec, patterns, live).0
}

/// Like [`simulate_pruned`], additionally returning the number of nodes
/// actually simulated (the live cone's size), so callers can account how
/// much of the network the pruning skipped.
pub fn simulate_pruned_counted(
    aig: &Aig,
    exec: &Executor,
    patterns: &Patterns,
    live: &[Var],
) -> (Signatures, usize) {
    simulate_pruned_counted_with(aig, exec, patterns, live, None)
}

/// [`simulate_pruned_counted`] with an optional windowed residency
/// policy (see [`simulate_with`]) — the support-pruned simulator shares
/// the streamed driver, so pruned refinement rounds obey the same
/// window.
pub fn simulate_pruned_counted_with(
    aig: &Aig,
    exec: &Executor,
    patterns: &Patterns,
    live: &[Var],
    window: Option<&crate::sigwin::SigWindowConfig>,
) -> (Signatures, usize) {
    let cone = aig.tfi_cone(live);
    let levels = aig.levels();
    let depth = cone
        .iter()
        .map(|&v| levels[v.index()] as usize)
        .max()
        .map_or(0, |d| d + 1);
    let mut groups = vec![Vec::new(); depth];
    for &v in &cone {
        groups[levels[v.index()] as usize].push(v);
    }
    let covered = cone.len();
    let sigs = match window {
        None => simulate_groups(aig, exec, patterns, &groups),
        Some(cfg) => crate::sigwin::simulate_streamed(aig, exec, patterns, &groups, cfg),
    };
    (sigs, covered)
}

/// Level-parallel simulation over an explicit level grouping (every fanin
/// of a grouped node must appear in an earlier group). Shared by the full
/// and support-pruned simulators.
fn simulate_groups(
    aig: &Aig,
    exec: &Executor,
    patterns: &Patterns,
    groups: &[Vec<Var>],
) -> Signatures {
    assert_eq!(
        patterns.num_pis(),
        aig.num_pis(),
        "pattern/PI count mismatch"
    );
    let w = patterns.num_words();
    let mut data = exec.arena().take::<u64>(aig.num_nodes() * w);
    let mut hashes = exec.arena().take::<u64>(aig.num_nodes());
    // The constant node's hash must be valid even when no group covers
    // var 0 (a pruned cone rarely does): proved-constant candidates
    // bucket against it.
    hashes[0] = hash_zero_signature(w);
    {
        // Effects per level launch: node t reads its fanins' signature
        // words (earlier groups, ordered by the stream) and writes its
        // own words plus hash slot — data-dependent disjoint chunks,
        // declared so the whole level chain is statically verified and
        // skips dynamic sanitization.
        let table = EffectTable::new();
        let sig_buf = table.buffer("sim.partial.signatures", aig.num_nodes() * w);
        let hash_buf = table.buffer("sim.partial.hashes", aig.num_nodes());
        let cells = exec.bind_table(&table, sig_buf, &mut data);
        let cells = &cells;
        let hcells = exec.bind_table(&table, hash_buf, &mut hashes);
        let hcells = &hcells;
        let effects = [
            Effect::read(
                sig_buf,
                Pattern::Indexed {
                    lo: 0,
                    hi: aig.num_nodes() * w,
                },
            ),
            Effect::write(
                sig_buf,
                Pattern::Indexed {
                    lo: 0,
                    hi: aig.num_nodes() * w,
                },
            ),
            Effect::write(
                hash_buf,
                Pattern::Indexed {
                    lo: 0,
                    hi: aig.num_nodes(),
                },
            ),
        ];
        let mut stream = exec.stream();
        for group in groups {
            stream.launch_declared(
                &table,
                "sim.partial.level",
                group.len(),
                &effects,
                move |t| {
                    eval_node(aig, group[t], t, w, patterns, cells, hcells);
                },
            );
        }
        stream.sync();
    }
    Signatures {
        num_words: w,
        store: SigStore::Resident(data),
        hashes,
    }
}

/// One node's simulation step: computes its `w` signature words from its
/// fanins (or the pattern words for a PI), writes them as tid `t`'s slots
/// and fills the node's canonical-hash cache slot. Shared by the level
/// kernels of [`simulate`]/[`simulate_pruned`] and the dirty-cone
/// resimulator.
///
/// Launch-ordering contract (the caller's obligation): every fanin of `v`
/// must have been written by an *earlier launch on the same stream*.
#[inline]
pub(crate) fn eval_node(
    aig: &Aig,
    v: Var,
    t: usize,
    w: usize,
    patterns: &Patterns,
    cells: &DeviceSlice<'_, u64>,
    hcells: &DeviceSlice<'_, u64>,
) {
    match aig.node(v) {
        Node::Const => {
            // Words already zero; the hash slot was host-seeded.
        }
        Node::Input(pi) => {
            let mask = if patterns.word(pi as usize, 0) & 1 == 1 {
                u64::MAX
            } else {
                0
            };
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for k in 0..w {
                let word = patterns.word(pi as usize, k);
                h ^= word ^ mask;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
                // SAFETY: each node writes only its own words.
                unsafe { cells.write(t, v.index() * w + k, word) };
            }
            // SAFETY: each node writes only its own hash slot.
            unsafe { hcells.write(t, v.index(), h) };
        }
        Node::And(a, b) => {
            let ma = if a.is_complemented() { u64::MAX } else { 0 };
            let mb = if b.is_complemented() { u64::MAX } else { 0 };
            let mut mask = 0;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for k in 0..w {
                // SAFETY: fanins were written by earlier launches on this
                // stream (see the ordering contract); each node writes
                // only its own words.
                unsafe {
                    let wa = cells.read(t, a.var().index() * w + k) ^ ma;
                    let wb = cells.read(t, b.var().index() * w + k) ^ mb;
                    let word = wa & wb;
                    if k == 0 {
                        mask = if word & 1 == 1 { u64::MAX } else { 0 };
                    }
                    h ^= word ^ mask;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                    cells.write(t, v.index() * w + k, word);
                }
            }
            // SAFETY: each node writes only its own hash slot.
            unsafe { hcells.write(t, v.index(), h) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::Aig;

    fn exec() -> Executor {
        Executor::with_threads(2)
    }

    #[test]
    fn simulation_matches_reference_eval() {
        let aig = parsweep_aig::random::random_aig(6, 40, 3, 11);
        let patterns = Patterns::random(6, 2, 5);
        let sigs = simulate(&aig, &exec(), &patterns);
        // Check 128 patterns against the slow evaluator.
        for p in 0..128usize {
            let bits: Vec<bool> = (0..6)
                .map(|i| patterns.word(i, p / 64) >> (p % 64) & 1 == 1)
                .collect();
            let values = aig.eval_nodes(&bits);
            for (v, &expect) in values.iter().enumerate() {
                let var = Var::new(v as u32);
                let got = sigs.sig(var)[p / 64] >> (p % 64) & 1 == 1;
                assert_eq!(got, expect, "node {v} pattern {p}");
            }
        }
    }

    #[test]
    fn canonical_signature_merges_complements() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        aig.add_po(f);
        let patterns = Patterns::random(2, 1, 3);
        let sigs = simulate(&aig, &exec(), &patterns);
        // x and !x canonicalize identically.
        let v = f.var();
        let canon: Vec<u64> = sigs.canonical(v).collect();
        assert_eq!(canon[0] & 1, 0, "canonical signature starts with 0");
        let _ = sigs.canonical_hash(v);
    }

    #[test]
    fn cex_patterns_contain_the_cex() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        aig.add_po(xs[0]);
        let cex = Cex::from_sparse(&aig, &[(xs[0].var(), true), (xs[2].var(), true)]);
        let p = Patterns::from_cexs(&aig, &[cex]).unwrap();
        assert_eq!(p.num_words(), 1);
        // Bit 0 of PI 0 and PI 2 set; PI 1 zero.
        assert_eq!(p.word(0, 0) & 1, 1);
        assert_eq!(p.word(1, 0) & 1, 0);
        assert_eq!(p.word(2, 0) & 1, 1);
    }

    #[test]
    fn distance1_patterns_contain_cex_and_neighbours() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        aig.add_po(xs[0]);
        let cex = Cex::new(vec![true, false, true, false]);
        let p = Patterns::from_cexs_distance1(&aig, std::slice::from_ref(&cex), 1).unwrap();
        assert_eq!(p.num_words(), 1);
        // Bit 0 is the CEX itself.
        for i in 0..4 {
            assert_eq!(p.word(i, 0) & 1 == 1, cex.to_dense(&aig)[i]);
        }
        // Every other bit position differs from the CEX in exactly one PI.
        for bit in 1..64 {
            let diff: usize = (0..4)
                .filter(|&i| (p.word(i, 0) >> bit & 1 == 1) != cex.to_dense(&aig)[i])
                .count();
            assert_eq!(diff, 1, "bit {bit}");
        }
    }

    #[test]
    fn extend_appends_words_pi_major() {
        let a = Patterns::from_raw(2, 2, vec![1, 2, 3, 4]);
        let b = Patterns::from_raw(2, 1, vec![9, 8]);
        let mut ext = a.clone();
        ext.extend(&b);
        assert_eq!(ext.num_words(), 3);
        // PI 0: [1, 2] ++ [9]; PI 1: [3, 4] ++ [8].
        assert_eq!(
            (0..3).map(|w| ext.word(0, w)).collect::<Vec<_>>(),
            vec![1, 2, 9]
        );
        assert_eq!(
            (0..3).map(|w| ext.word(1, w)).collect::<Vec<_>>(),
            vec![3, 4, 8]
        );
        // concat is the by-value spelling of extend.
        let c = a.concat(&b);
        assert_eq!(
            (0..3).map(|w| c.word(1, w)).collect::<Vec<_>>(),
            vec![3, 4, 8]
        );
    }

    #[test]
    fn pruned_simulation_covers_only_the_live_cone() {
        // Two independent cones; keep only one alive.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let f = aig.and(xs[0], xs[1]);
        let g = aig.and(xs[2], xs[3]);
        aig.add_po(f);
        aig.add_po(g);
        let patterns = Patterns::random(4, 2, 5);
        let full = simulate(&aig, &exec(), &patterns);
        let (pruned, covered) = simulate_pruned_counted(&aig, &exec(), &patterns, &[f.var()]);
        // Cone of f: x0, x1, f.
        assert_eq!(covered, 3);
        assert_eq!(pruned.sig(f.var()), full.sig(f.var()));
        assert_eq!(pruned.canonical_hash(f.var()), full.canonical_hash(f.var()));
        // The dead cone keeps the zeroed lease — never launched.
        assert!(pruned.sig(g.var()).iter().all(|&w| w == 0));
    }

    #[test]
    fn no_cexs_gives_none() {
        let mut aig = Aig::new();
        aig.add_inputs(1);
        assert!(Patterns::from_cexs(&aig, &[]).is_none());
        assert!(Patterns::from_cexs_distance1(&aig, &[], 0).is_none());
    }

    #[test]
    fn equal_functions_have_equal_signatures() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.xor(xs[0], xs[1]);
        // XNOR: complement of XOR.
        let t0 = aig.and(xs[0], xs[1]);
        let t1 = aig.and(!xs[0], !xs[1]);
        let g = aig.or(t0, t1);
        aig.add_po(f);
        aig.add_po(g);
        let patterns = Patterns::random(2, 4, 17);
        let sigs = simulate(&aig, &exec(), &patterns);
        // XOR node and XNOR node have complementary signatures, hence
        // identical canonical forms.
        let cf: Vec<u64> = sigs.canonical(f.var()).collect();
        let cg: Vec<u64> = sigs.canonical(g.var()).collect();
        // f = or(...) is stored complemented relative to its var; compare
        // canonical forms of the actual functions instead of raw vars.
        assert_eq!(cf, cg);
        assert_eq!(sigs.canonical_hash(f.var()), sigs.canonical_hash(g.var()));
    }
}

//! The parallel exhaustive simulator (paper §III-B, Algorithm 1).
//!
//! Checks batches of candidate pairs by computing and comparing their
//! *entire* truth tables over the window inputs. A bounded simulation
//! table holds `E`-word segments of every node's truth table; simulation
//! proceeds in rounds over segments, with three dimensions of parallelism:
//! words within a node, nodes within a level, and windows within a batch.
//!
//! The multi-round loop is recorded as a [`KernelGraphBuilder`] launch DAG
//! once per batch — one `inputs → levels → compare` chain per window — and
//! replayed with fresh round bindings, CUDA-graph style. Chains of
//! different windows are independent, so their launches overlap at replay;
//! the simulation table and outcome slots come from the executor's
//! [`BufferArena`](parsweep_par::BufferArena) and are recycled across
//! rounds and batches.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parsweep_aig::{Aig, Node, Var};
use parsweep_par::{CancelToken, Effect, EffectTable, Executor, KernelGraphBuilder, Pattern};

use crate::tt::projection_word;
use crate::window::Window;

/// Default simulation-table budget: 2^22 words (32 MiB).
pub const DEFAULT_MEMORY_WORDS: usize = 1 << 22;

/// The verdict of exhaustively simulating one candidate pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PairOutcome {
    /// The two truth tables agree everywhere: the pair is proved
    /// equivalent over the window inputs (for global checking this proves
    /// functional equivalence; for local checking it proves the pair).
    Equal,
    /// The truth tables differ. For global checking this is a disproof and
    /// the assignment is a counter-example over the window inputs; for
    /// local checking the pair is merely *inconclusive* (the differing
    /// pattern may be a satisfiability don't-care).
    Mismatch {
        /// Index of the first differing assignment.
        pattern_index: u64,
        /// Values of the window inputs (in window-input order) at the
        /// differing assignment.
        assignment: Vec<bool>,
    },
}

/// Aggregate effort statistics of one exhaustive-simulation batch, used by
/// the window-merging ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimEffort {
    /// Total node-words simulated.
    pub words: u64,
    /// Number of rounds executed.
    pub rounds: u32,
    /// Entry size `E` (words per node segment) chosen for the batch.
    pub entry_words: usize,
}

struct WindowPlan<'w> {
    window: &'w Window,
    /// First entry slot of this window in the simulation table.
    base: usize,
    /// Window-node -> local entry slot.
    index: std::collections::HashMap<Var, u32>,
    /// Interior nodes grouped by window-local level.
    levels: Vec<Vec<Var>>,
    /// Truth-table length in words.
    tt_words: usize,
}

/// Runs Algorithm 1 on a batch of windows.
///
/// Returns, for every window, the outcome of every one of its pairs, plus
/// the effort spent. `memory_words` bounds the simulation table (the
/// paper's `M`); the entry size `E` is chosen as the largest power of two
/// that fits.
///
/// # Panics
///
/// Panics if `memory_words == 0`.
pub fn check_windows(
    aig: &Aig,
    exec: &Executor,
    windows: &[Window],
    memory_words: usize,
) -> (Vec<Vec<PairOutcome>>, SimEffort) {
    check_windows_cancellable(aig, exec, windows, memory_words, &CancelToken::never())
}

/// [`check_windows`] with a cancellation point between simulation rounds.
///
/// When the token trips mid-batch the round loop stops and every window
/// whose truth table was not fully simulated (and whose pairs were not
/// all resolved) returns an *empty* outcome vector — no outcome, rather
/// than a wrong `Equal` for pairs whose remaining segments were never
/// compared. Mismatches found in completed rounds of such windows are
/// dropped with them, keeping each window's outcomes index-aligned with
/// its pairs.
///
/// # Panics
///
/// Panics if `memory_words == 0`.
pub fn check_windows_cancellable(
    aig: &Aig,
    exec: &Executor,
    windows: &[Window],
    memory_words: usize,
    token: &CancelToken,
) -> (Vec<Vec<PairOutcome>>, SimEffort) {
    assert!(memory_words > 0, "simulation table needs some memory");
    if windows.is_empty() {
        return (Vec::new(), SimEffort::default());
    }

    // Plan entry layout: entries of all windows are consecutive.
    let mut plans: Vec<WindowPlan> = Vec::with_capacity(windows.len());
    let mut total_entries = 0usize;
    for w in windows {
        plans.push(WindowPlan {
            window: w,
            base: total_entries,
            index: w.entry_index(),
            levels: w.level_groups(aig),
            tt_words: w.tt_words(),
        });
        total_entries += w.num_entries();
    }

    // Entry size E: the largest power of two with E * N <= M (at least 1),
    // capped at the longest truth table in the batch.
    let max_tt = plans.iter().map(|p| p.tt_words).max().unwrap_or(1);
    let mut entry_words = 1usize;
    while entry_words < max_tt && entry_words * 2 * total_entries <= memory_words {
        entry_words *= 2;
    }
    let rounds = max_tt.div_ceil(entry_words);

    let mut simt = exec.arena().take::<u64>(entry_words * total_entries);
    let resolved: Vec<Vec<AtomicBool>> = windows
        .iter()
        .map(|w| (0..w.pairs.len()).map(|_| AtomicBool::new(false)).collect())
        .collect();
    let unresolved: Vec<AtomicUsize> = windows
        .iter()
        .map(|w| AtomicUsize::new(w.pairs.len()))
        .collect();
    // Flat outcome slots: one per (window, pair), disjointly written.
    let pair_base: Vec<usize> = {
        let mut acc = 0usize;
        windows
            .iter()
            .map(|w| {
                let b = acc;
                acc += w.pairs.len();
                b
            })
            .collect()
    };
    let total_pairs: usize = windows.iter().map(|w| w.pairs.len()).sum();
    let mut outcomes = exec.arena().take::<Option<PairOutcome>>(total_pairs);
    let mut words_simulated = 0u64;
    let mut rounds_run = 0u32;
    let mut completed_rounds = 0usize;

    /// Bindings one graph replay runs against: the round index and the
    /// per-window activity mask (a window goes inactive when its truth
    /// table is exhausted or all its pairs resolved).
    struct Round {
        r: usize,
        active: Vec<bool>,
    }

    {
        // Declare the device buffers and every kernel's footprint over
        // them, so the whole round graph is *statically verified* at
        // build time and replays skip dynamic sanitization (the
        // verified-replay fast path).
        let table = EffectTable::new();
        let tbl_buf = table.buffer("sim.exhaustive.table", entry_words * total_entries);
        let out_buf = table.buffer("sim.exhaustive.outcomes", total_pairs);
        let cells = exec.bind_table(&table, tbl_buf, &mut simt);
        let out_cells = exec.bind_table(&table, out_buf, &mut outcomes);
        let cells = &cells;
        let out_cells = &out_cells;
        let resolved = &resolved;
        let unresolved = &unresolved;
        let pair_base = &pair_base;

        // Record the launch DAG once: per window a chain
        // `inputs → level 0 → … → compare`. Chains of different windows
        // carry no edges between them, so at replay each wave runs their
        // launches on separate streams (windows touch disjoint table
        // ranges) and only the deepest chain paces the critical path.
        let mut builder = KernelGraphBuilder::<Round>::new().with_table(&table);
        for (i, p) in plans.iter().enumerate() {
            let active_words =
                move |r: usize| -> usize { (p.tt_words - r * entry_words).min(entry_words) };
            // This window's slice of the simulation table, in words.
            let win_lo = p.base * entry_words;
            let win_hi = (p.base + p.window.num_entries()) * entry_words;
            let inputs = builder.kernel_declared(
                "sim.exhaustive.inputs",
                &[],
                move |b: &Round| {
                    if b.active[i] {
                        p.window.inputs.len()
                    } else {
                        0
                    }
                },
                p.window.inputs.len(),
                // Input j owns entry (base + j): stride == span, so the
                // checker proves thread disjointness in closed form.
                vec![Effect::write(
                    tbl_buf,
                    Pattern::Affine {
                        base: win_lo,
                        stride: entry_words,
                        span: entry_words,
                    },
                )],
                move |j, b: &Round| {
                    let aw = active_words(b.r);
                    let entry = (p.base + j) * entry_words;
                    for w in 0..aw {
                        // SAFETY: each (window, input) kernel owns a
                        // distinct entry.
                        unsafe {
                            cells.write(j, entry + w, projection_word(j, b.r * entry_words + w))
                        };
                    }
                },
            );
            let mut prev = inputs;
            for nodes in &p.levels {
                prev = builder.kernel_declared(
                    "sim.exhaustive.level",
                    &[prev],
                    move |b: &Round| if b.active[i] { nodes.len() } else { 0 },
                    nodes.len(),
                    // Node k reads its fanins' entries (strictly lower
                    // levels) and writes its own — data-dependent
                    // disjoint chunks inside this window's table slice.
                    vec![
                        Effect::read(
                            tbl_buf,
                            Pattern::Indexed {
                                lo: win_lo,
                                hi: win_hi,
                            },
                        ),
                        Effect::write(
                            tbl_buf,
                            Pattern::Indexed {
                                lo: win_lo,
                                hi: win_hi,
                            },
                        ),
                    ],
                    move |k, b: &Round| {
                        let aw = active_words(b.r);
                        let v = nodes[k];
                        let Node::And(fa, fb) = aig.node(v) else {
                            unreachable!("interior window nodes are AND gates");
                        };
                        let ea = p.index[&fa.var()] as usize;
                        let eb = p.index[&fb.var()] as usize;
                        let ev = p.index[&v] as usize;
                        let ma = if fa.is_complemented() { u64::MAX } else { 0 };
                        let mb = if fb.is_complemented() { u64::MAX } else { 0 };
                        let (ba, bb, bv) = (
                            (p.base + ea) * entry_words,
                            (p.base + eb) * entry_words,
                            (p.base + ev) * entry_words,
                        );
                        for w in 0..aw {
                            // SAFETY: fanin entries were written by earlier
                            // levels (graph-ordered launches); each node
                            // writes only its own entry.
                            unsafe {
                                let wa = cells.read(k, ba + w) ^ ma;
                                let wb = cells.read(k, bb + w) ^ mb;
                                cells.write(k, bv + w, wa & wb);
                            }
                        }
                    },
                );
            }
            builder.kernel_declared(
                "sim.exhaustive.compare",
                &[prev],
                move |b: &Round| if b.active[i] { p.window.pairs.len() } else { 0 },
                p.window.pairs.len(),
                // Pair k reads its roots' entries and writes its own
                // outcome slot (one slot per pair, stride 1).
                vec![
                    Effect::read(
                        tbl_buf,
                        Pattern::Indexed {
                            lo: win_lo,
                            hi: win_hi,
                        },
                    ),
                    Effect::write(
                        out_buf,
                        Pattern::Affine {
                            base: pair_base[i],
                            stride: 1,
                            span: 1,
                        },
                    ),
                ],
                move |k, b: &Round| {
                    if resolved[i][k].load(Ordering::Relaxed) {
                        return;
                    }
                    let aw = active_words(b.r);
                    let pair = p.window.pairs[k];
                    let cmask = if pair.complement { u64::MAX } else { 0 };
                    let entry_of = |v: Var| -> Option<usize> {
                        if v.is_const() {
                            None
                        } else {
                            Some((p.base + p.index[&v] as usize) * entry_words)
                        }
                    };
                    let (ea, eb) = (entry_of(pair.a), entry_of(pair.b));
                    let k_in = p.window.inputs.len();
                    let valid = if k_in < 6 {
                        (1u64 << (1usize << k_in)) - 1
                    } else {
                        u64::MAX
                    };
                    for w in 0..aw {
                        // SAFETY: root entries were written by the level
                        // launches this chain depends on.
                        let wa = ea.map_or(0, |e| unsafe { cells.read(k, e + w) });
                        // SAFETY: as above.
                        let wb = eb.map_or(0, |e| unsafe { cells.read(k, e + w) });
                        let diff = (wa ^ wb ^ cmask) & valid;
                        if diff != 0 {
                            let bit = diff.trailing_zeros() as u64;
                            let pattern_index = ((b.r * entry_words + w) as u64) << 6 | bit;
                            let assignment =
                                (0..k_in).map(|j| pattern_index >> j & 1 == 1).collect();
                            resolved[i][k].store(true, Ordering::Relaxed);
                            unresolved[i].fetch_sub(1, Ordering::Relaxed);
                            // SAFETY: exactly one kernel thread exists per
                            // (window, pair), so the flat slot is written
                            // by at most one thread.
                            unsafe {
                                out_cells.write(
                                    k,
                                    pair_base[i] + k,
                                    Some(PairOutcome::Mismatch {
                                        pattern_index,
                                        assignment,
                                    }),
                                );
                            }
                            return;
                        }
                    }
                },
            );
        }
        let graph = builder.build();

        for r in 0..rounds {
            if token.is_cancelled() {
                break;
            }
            // Windows still needing simulation this round.
            let active: Vec<bool> = (0..plans.len())
                .map(|i| {
                    plans[i].tt_words > r * entry_words && unresolved[i].load(Ordering::Relaxed) > 0
                })
                .collect();
            if !active.iter().any(|&a| a) {
                break;
            }
            rounds_run += 1;
            for (i, p) in plans.iter().enumerate() {
                if active[i] {
                    let aw = (p.tt_words - r * entry_words).min(entry_words) as u64;
                    words_simulated += aw * p.levels.iter().map(|l| l.len() as u64).sum::<u64>();
                }
            }
            graph.replay(exec, &Round { r, active });
            completed_rounds = r + 1;
        }
    }

    let mut slot = 0usize;
    let results = windows
        .iter()
        .enumerate()
        .map(|(i, w)| {
            // A window's absent outcomes default to `Equal` only once its
            // entire truth table was simulated (or every pair already
            // resolved); a cancellation-truncated window reports nothing.
            let complete = plans[i].tt_words <= completed_rounds * entry_words
                || unresolved[i].load(Ordering::Relaxed) == 0;
            let collected: Vec<PairOutcome> = (0..w.pairs.len())
                .map(|_| {
                    let outcome = outcomes[slot].take();
                    slot += 1;
                    outcome.unwrap_or(PairOutcome::Equal)
                })
                .collect();
            if complete {
                collected
            } else {
                Vec::new()
            }
        })
        .collect();
    let effort = SimEffort {
        words: words_simulated,
        rounds: rounds_run,
        entry_words,
    };
    (results, effort)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{PairCheck, Window};
    use parsweep_aig::Aig;

    fn exec() -> Executor {
        Executor::with_threads(2)
    }

    fn pc(a: Var, b: Var, complement: bool) -> PairCheck {
        PairCheck { a, b, complement }
    }

    #[test]
    fn proves_equivalent_pair() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        // XOR vs complement of XNOR.
        let f = aig.xor(xs[0], xs[1]);
        let t0 = aig.and(xs[0], xs[1]);
        let t1 = aig.and(!xs[0], !xs[1]);
        let g = aig.or(t0, t1); // XNOR
                                // var(f) and var(g): possibly complemented nodes; figure out the
                                // complement relation from the literals: f == !g.
        let complement = f.is_complemented() == g.is_complemented();
        let w = Window::global(&aig, pc(f.var(), g.var(), complement));
        let (res, _) = check_windows(&aig, &exec(), &[w], 1 << 16);
        assert_eq!(res[0][0], PairOutcome::Equal);
    }

    #[test]
    fn disproves_with_counterexample() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        let g = aig.or(xs[0], xs[1]);
        let w = Window::global(
            &aig,
            pc(f.var(), g.var(), f.is_complemented() != g.is_complemented()),
        );
        let (res, _) = check_windows(&aig, &exec(), std::slice::from_ref(&w), 1 << 16);
        match &res[0][0] {
            PairOutcome::Mismatch { assignment, .. } => {
                // Validate against the reference evaluator: the functions
                // AND and OR must differ under the assignment.
                let bits: Vec<bool> = assignment.clone();
                let dense: Vec<bool> = bits;
                let values = aig.eval_nodes(&dense);
                let vf = f.eval(values[f.var().index()]);
                let vg = g.eval(values[g.var().index()]);
                assert_ne!(vf, vg);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn proves_constant_po() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        // x & !x is folded by strash, so build (a & b) & !(a & b) through
        // two separate gates to keep a real node.
        let f = aig.and(xs[0], xs[1]);
        let g = aig.and(f, !xs[0]); // a & b & !a == 0 semantically
        let w = Window::global(&aig, pc(Var::FALSE, g.var(), g.is_complemented()));
        let (res, _) = check_windows(&aig, &exec(), &[w], 1 << 16);
        assert_eq!(res[0][0], PairOutcome::Equal);
    }

    #[test]
    fn multi_round_simulation_with_tiny_memory() {
        // 8 inputs => tt of 4 words; squeeze memory so E = 1 and the
        // simulation takes 4 rounds.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(8);
        let f = aig.and_all(xs.iter().copied());
        let g = {
            // Same function, built right-associated.
            let mut acc = xs[7];
            for &x in xs[..7].iter().rev() {
                acc = aig.and(x, acc);
            }
            acc
        };
        let w = Window::global(
            &aig,
            pc(f.var(), g.var(), f.is_complemented() != g.is_complemented()),
        );
        let entries = w.num_entries();
        let (res, effort) = check_windows(&aig, &exec(), &[w], entries * 2);
        assert_eq!(res[0][0], PairOutcome::Equal);
        assert_eq!(effort.entry_words, 2);
        assert_eq!(effort.rounds, 2);
    }

    #[test]
    fn mismatch_found_in_late_round() {
        // Functions that agree except when all 8 inputs are 1: AND8 vs 0.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(8);
        let f = aig.and_all(xs.iter().copied());
        let w = Window::global(&aig, pc(Var::FALSE, f.var(), f.is_complemented()));
        let entries = w.num_entries();
        let (res, _) = check_windows(&aig, &exec(), &[w], entries);
        match &res[0][0] {
            PairOutcome::Mismatch {
                pattern_index,
                assignment,
            } => {
                assert_eq!(*pattern_index, 255);
                assert!(assignment.iter().all(|&b| b));
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn local_window_respects_cut_semantics() {
        // g = (a&b) & c, h = c & (a&b): local functions over cut {ab, c}
        // are both AND2 and thus equal.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let ab = aig.and(xs[0], xs[1]);
        let g = aig.and(ab, xs[2]);
        // Force a distinct second node with same local function by using
        // a redundant wrapper: h = (ab & c) & (ab | c) — semantically
        // equal to g but structurally different.
        let o = aig.or(ab, xs[2]);
        let h = aig.and(g, o);
        let w = Window::for_pair(
            &aig,
            pc(g.var(), h.var(), g.is_complemented() != h.is_complemented()),
            vec![ab.var(), xs[2].var()],
        )
        .unwrap();
        let (res, _) = check_windows(&aig, &exec(), &[w], 1 << 12);
        assert_eq!(res[0][0], PairOutcome::Equal);
    }

    #[test]
    fn batch_of_windows_mixed_outcomes() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let f1 = aig.xor(xs[0], xs[1]);
        let p0 = aig.and(xs[0], !xs[1]);
        let p1 = aig.and(!xs[0], xs[1]);
        let f2 = aig.or(p0, p1);
        let g1 = aig.and(xs[2], xs[3]);
        let g2 = aig.or(xs[2], xs[3]);
        let w1 = Window::global(
            &aig,
            pc(
                f1.var(),
                f2.var(),
                f1.is_complemented() != f2.is_complemented(),
            ),
        );
        let w2 = Window::global(
            &aig,
            pc(
                g1.var(),
                g2.var(),
                g1.is_complemented() != g2.is_complemented(),
            ),
        );
        let (res, _) = check_windows(&aig, &exec(), &[w1, w2], 1 << 16);
        assert_eq!(res[0][0], PairOutcome::Equal);
        assert!(matches!(res[1][0], PairOutcome::Mismatch { .. }));
    }
}

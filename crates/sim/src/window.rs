//! Simulation windows (§III-B1).
//!
//! A window is the set of intermediate nodes that drive the roots of one or
//! more candidate pairs, together with the window's input nodes. Global
//! function checking uses the union of the pair's structural supports as
//! inputs; local function checking uses a common cut.

use std::collections::HashMap;

use parsweep_aig::{Aig, Node, Var};

use crate::tt::word_len;

/// One candidate equivalence to check inside a window: `a ≡ b ⊕ complement`.
///
/// By convention `a` is the representative (smaller id); a check against
/// the constant node (`a == Var::FALSE`) proves that `b` is constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairCheck {
    /// Representative (or constant) root.
    pub a: Var,
    /// The other root.
    pub b: Var,
    /// True if `b` is expected to be the complement of `a`.
    pub complement: bool,
}

/// A simulation window: input nodes, interior nodes (topologically sorted)
/// and the candidate pairs whose roots lie inside it.
#[derive(Clone, Debug)]
pub struct Window {
    /// Input nodes in increasing id order (the truth-table variables).
    pub inputs: Vec<Var>,
    /// Interior nodes (including roots), topologically sorted, excluding
    /// inputs.
    pub nodes: Vec<Var>,
    /// The candidate pairs checked with this window.
    pub pairs: Vec<PairCheck>,
}

impl Window {
    /// Builds a window for checking one pair over an explicit input set
    /// (either the support union for global checking, or a common cut for
    /// local checking).
    ///
    /// Returns `None` if `inputs` is not a valid cut of both roots.
    pub fn for_pair(aig: &Aig, pair: PairCheck, mut inputs: Vec<Var>) -> Option<Window> {
        inputs.sort_unstable();
        inputs.dedup();
        Self::for_sorted_inputs(aig, pair, inputs)
    }

    /// Like [`Window::for_pair`] for inputs that are already sorted and
    /// deduplicated — the invariant every in-tree producer upholds
    /// ([`Aig::support`], `Aig::tfi_cone`, support unions, and cut leaf
    /// lists are all ascending) — skipping the defensive re-sort on the
    /// per-candidate hot path.
    ///
    /// # Panics
    ///
    /// Debug builds assert the sorted invariant; release builds trust it
    /// (an unsorted list would only make `cone_between` reject the cut or
    /// misorder truth-table variables, both caught by the assert in
    /// tests).
    pub fn for_sorted_inputs(aig: &Aig, pair: PairCheck, inputs: Vec<Var>) -> Option<Window> {
        debug_assert!(
            inputs.windows(2).all(|w| w[0] < w[1]),
            "window inputs must be strictly ascending"
        );
        let mut roots = Vec::with_capacity(2);
        if !pair.a.is_const() {
            roots.push(pair.a);
        }
        roots.push(pair.b);
        let nodes = aig.cone_between(&roots, &inputs)?;
        Some(Window {
            inputs,
            nodes,
            pairs: vec![pair],
        })
    }

    /// Builds a global-checking window: inputs are the union of the two
    /// roots' structural supports.
    pub fn global(aig: &Aig, pair: PairCheck) -> Window {
        let mut roots = Vec::with_capacity(2);
        if !pair.a.is_const() {
            roots.push(pair.a);
        }
        roots.push(pair.b);
        // `Aig::support` documents the ascending sorted invariant.
        let inputs = aig.support(&roots);
        Self::for_sorted_inputs(aig, pair, inputs).expect("support union is always a valid cut")
    }

    /// Number of truth-table variables (window inputs).
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Length of the full truth table in 64-bit words.
    pub fn tt_words(&self) -> usize {
        word_len(self.inputs.len())
    }

    /// Number of simulation-table entries this window occupies
    /// (inputs + interior nodes), the paper's `|w| + |inputs(w)|`.
    pub fn num_entries(&self) -> usize {
        self.inputs.len() + self.nodes.len()
    }

    /// Maps each window node (inputs first, then interior) to its entry
    /// slot inside this window.
    pub fn entry_index(&self) -> HashMap<Var, u32> {
        let mut map = HashMap::with_capacity(self.num_entries());
        for (i, &v) in self.inputs.iter().chain(&self.nodes).enumerate() {
            map.insert(v, i as u32);
        }
        map
    }

    /// Groups interior nodes by window-local topological level (inputs are
    /// level 0; every interior node is `1 + max(fanin levels)`).
    pub fn level_groups(&self, aig: &Aig) -> Vec<Vec<Var>> {
        let mut level: HashMap<Var, u32> = HashMap::with_capacity(self.num_entries());
        for &v in &self.inputs {
            level.insert(v, 0);
        }
        let mut groups: Vec<Vec<Var>> = Vec::new();
        for &v in &self.nodes {
            if level.contains_key(&v) {
                continue; // a root that is also an input
            }
            let l = match aig.node(v) {
                Node::And(a, b) => {
                    let la = *level.get(&a.var()).expect("window is topologically closed");
                    let lb = *level.get(&b.var()).expect("window is topologically closed");
                    1 + la.max(lb)
                }
                _ => unreachable!("interior window nodes are AND gates"),
            };
            level.insert(v, l);
            let idx = l as usize - 1;
            if groups.len() <= idx {
                groups.resize(idx + 1, Vec::new());
            }
            groups[idx].push(v);
        }
        groups
    }
}

/// Merges a batch of global-checking windows by greedy similarity
/// clustering — the "more dedicated approach" the paper contrasts with
/// lexicographic merging (§III-B3): each seed window absorbs the
/// remaining window with the highest input-set Jaccard similarity until
/// nothing fits under `k_s`. Quadratic in the batch size (the overhead
/// the paper predicts), measured against [`merge_windows`] by the
/// ablation harness.
pub fn merge_windows_clustered(windows: Vec<Window>, k_s: usize) -> Vec<Window> {
    if windows.len() <= 1 {
        return windows;
    }
    let mut pool: Vec<Option<Window>> = windows.into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(pool.len());
    for i in 0..pool.len() {
        let Some(mut current) = pool[i].take() else {
            continue;
        };
        loop {
            // Pick the most input-similar remaining window that fits.
            let mut best: Option<(usize, f64)> = None;
            for (j, slot) in pool.iter().enumerate().skip(i + 1) {
                let Some(w) = slot else { continue };
                let union = union_sorted(&current.inputs, &w.inputs);
                if union.len() > k_s {
                    continue;
                }
                let inter = current.inputs.len() + w.inputs.len() - union.len();
                if inter == 0 {
                    continue; // disjoint windows never merge (see try_union)
                }
                let sim = inter as f64 / union.len().max(1) as f64;
                if best.is_none_or(|(_, s)| sim > s) {
                    best = Some((j, sim));
                }
            }
            let Some((j, _)) = best else { break };
            let absorbed = pool[j].take().expect("candidate present");
            current = try_union(&current, &absorbed, k_s).expect("union checked to fit k_s");
        }
        out.push(current);
    }
    out
}

/// Merges a sorted batch of global-checking windows (§III-B3): windows are
/// sorted lexicographically by input list, then consecutive windows are
/// merged greedily while the merged input count stays within `k_s`.
///
/// Only valid for global-checking windows (inputs are PIs), where an input
/// of one window can never be an interior node of another.
pub fn merge_windows(mut windows: Vec<Window>, k_s: usize) -> Vec<Window> {
    if windows.len() <= 1 {
        return windows;
    }
    windows.sort_by(|a, b| a.inputs.cmp(&b.inputs));
    let mut out: Vec<Window> = Vec::with_capacity(windows.len());
    let mut it = windows.into_iter();
    let mut current = it.next().expect("nonempty");
    for w in it {
        match try_union(&current, &w, k_s) {
            Some(merged) => current = merged,
            None => {
                out.push(std::mem::replace(&mut current, w));
            }
        }
    }
    out.push(current);
    out
}

fn union_sorted(a: &[Var], b: &[Var]) -> Vec<Var> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j >= b.len() || (i < a.len() && a[i] < b[j]) {
            out.push(a[i]);
            i += 1;
        } else if i >= a.len() || b[j] < a[i] {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
            j += 1;
        }
    }
    out
}

fn try_union(a: &Window, b: &Window, k_s: usize) -> Option<Window> {
    let inputs = union_sorted(&a.inputs, &b.inputs);
    if inputs.len() > k_s {
        return None;
    }
    // Never merge input-disjoint windows: the merged truth table costs
    // 2^(|A|+|B|) patterns where the separate windows cost 2^|A| + 2^|B|.
    // (All of the paper's §III-B3 examples share inputs.)
    if inputs.len() == a.inputs.len() + b.inputs.len() {
        return None;
    }
    let nodes = union_sorted(&a.nodes, &b.nodes);
    let mut pairs = a.pairs.clone();
    pairs.extend_from_slice(&b.pairs);
    Some(Window {
        inputs,
        nodes,
        pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::Aig;

    fn pair(a: Var, b: Var) -> PairCheck {
        PairCheck {
            a,
            b,
            complement: false,
        }
    }

    #[test]
    fn global_window_covers_cone() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let f = aig.xor(xs[0], xs[1]);
        let g = aig.and(f, xs[2]);
        let w = Window::global(&aig, pair(f.var(), g.var()));
        assert_eq!(w.num_inputs(), 3);
        assert!(w.nodes.contains(&f.var()));
        assert!(w.nodes.contains(&g.var()));
        assert_eq!(w.tt_words(), 1);
    }

    #[test]
    fn window_against_constant() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        let w = Window::global(&aig, pair(Var::FALSE, f.var()));
        assert_eq!(w.num_inputs(), 2);
        assert_eq!(w.nodes, vec![f.var()]);
    }

    #[test]
    fn invalid_cut_rejected() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]);
        // Cut missing xs[1].
        let w = Window::for_pair(&aig, pair(Var::FALSE, f.var()), vec![xs[0].var()]);
        assert!(w.is_none());
    }

    #[test]
    fn level_groups_respect_dependencies() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let a = aig.and(xs[0], xs[1]);
        let b = aig.and(xs[2], xs[3]);
        let c = aig.and(a, b);
        let w = Window::global(&aig, pair(a.var(), c.var()));
        let groups = w.level_groups(&aig);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 2); // a and b
        assert_eq!(groups[1], vec![c.var()]);
    }

    #[test]
    fn merge_respects_threshold() {
        // Paper example: inputs {a,b}, {a,b,c}, {a,c}... with k_s = 3 the
        // lexicographically consecutive ones merge while small enough.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(6);
        let vars: Vec<Var> = xs.iter().map(|l| l.var()).collect();
        let mk = |inputs: &[usize], aig: &mut Aig| {
            // Build a tiny node over the inputs so cones are valid.
            let lits: Vec<_> = inputs.iter().map(|&i| xs[i]).collect();
            let f = aig.and_all(lits);
            Window::for_pair(
                aig,
                pair(Var::FALSE, f.var()),
                inputs.iter().map(|&i| vars[i]).collect(),
            )
            .unwrap()
        };
        let w1 = mk(&[0, 1], &mut aig);
        let w2 = mk(&[0, 1, 2], &mut aig);
        let w3 = mk(&[0, 4], &mut aig);
        let w4 = mk(&[0, 5], &mut aig);
        let merged = merge_windows(vec![w1, w2, w3, w4], 3);
        assert_eq!(merged.len(), 2);
        let sizes: Vec<usize> = merged.iter().map(|w| w.num_inputs()).collect();
        assert!(sizes.iter().all(|&s| s <= 3));
        let total_pairs: usize = merged.iter().map(|w| w.pairs.len()).sum();
        assert_eq!(total_pairs, 4);
    }

    #[test]
    fn merge_keeps_singletons_when_threshold_tight() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(4);
        let f = aig.and(xs[0], xs[1]);
        let g = aig.and(xs[2], xs[3]);
        let w1 = Window::global(&aig, pair(Var::FALSE, f.var()));
        let w2 = Window::global(&aig, pair(Var::FALSE, g.var()));
        let merged = merge_windows(vec![w1, w2], 2);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn clustered_merge_respects_threshold_and_keeps_pairs() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(6);
        let mk = |inputs: &[usize], aig: &mut Aig| {
            let lits: Vec<_> = inputs.iter().map(|&i| xs[i]).collect();
            let f = aig.and_all(lits);
            Window::for_pair(
                aig,
                pair(Var::FALSE, f.var()),
                inputs.iter().map(|&i| xs[i].var()).collect(),
            )
            .unwrap()
        };
        let w1 = mk(&[0, 1], &mut aig);
        let w2 = mk(&[0, 1, 2], &mut aig);
        let w3 = mk(&[3, 4], &mut aig);
        let w4 = mk(&[3, 5], &mut aig);
        let merged = merge_windows_clustered(vec![w1, w2, w3, w4], 3);
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().all(|w| w.num_inputs() <= 3));
        let total_pairs: usize = merged.iter().map(|w| w.pairs.len()).sum();
        assert_eq!(total_pairs, 4);
    }

    #[test]
    fn clustered_merge_prefers_similar_inputs() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(8);
        let mk = |inputs: &[usize], aig: &mut Aig| {
            let lits: Vec<_> = inputs.iter().map(|&i| xs[i]).collect();
            let f = aig.and_all(lits);
            Window::for_pair(
                aig,
                pair(Var::FALSE, f.var()),
                inputs.iter().map(|&i| xs[i].var()).collect(),
            )
            .unwrap()
        };
        // Seed {0,1}: {0,1,2} is more similar than {6,7}; with k_s = 4
        // the seed must absorb the similar one.
        let w1 = mk(&[0, 1], &mut aig);
        let w2 = mk(&[6, 7], &mut aig);
        let w3 = mk(&[0, 1, 2], &mut aig);
        let merged = merge_windows_clustered(vec![w1, w2, w3], 4);
        let with_0 = merged
            .iter()
            .find(|w| w.inputs.contains(&xs[0].var()))
            .unwrap();
        assert!(with_0.inputs.contains(&xs[2].var()));
    }

    #[test]
    fn entry_index_is_dense_and_unique() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let f = aig.xor(xs[0], xs[1]);
        let g = aig.and(f, xs[2]);
        let w = Window::global(&aig, pair(f.var(), g.var()));
        let idx = w.entry_index();
        assert_eq!(idx.len(), w.num_entries());
        let mut slots: Vec<u32> = idx.values().copied().collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..w.num_entries() as u32).collect::<Vec<_>>());
    }
}

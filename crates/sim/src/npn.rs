//! NPN canonicalization of small truth tables.
//!
//! Two functions are NPN-equivalent when one can be obtained from the
//! other by Negating inputs, Permuting inputs and/or Negating the output.
//! Canonical forms let rewriting engines and function caches treat all
//! 2^2^k functions as a few hundred classes (e.g. 222 for k = 4); this is
//! the standard machinery behind ABC-style rewriting libraries.

use crate::tt::TruthTable;

/// Maximum variable count supported by the exhaustive canonicalizer.
pub const MAX_NPN_VARS: usize = 6;

/// One NPN transform: permute inputs, complement a subset of inputs,
/// optionally complement the output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NpnTransform {
    /// `perm[i]` is the source variable feeding output variable `i`.
    pub perm: [u8; MAX_NPN_VARS],
    /// Bit `i` set: input `i` (after permutation) is complemented.
    pub input_neg: u8,
    /// Complement the output.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transform over `k` variables.
    pub fn identity() -> Self {
        let mut perm = [0u8; MAX_NPN_VARS];
        for (i, p) in perm.iter_mut().enumerate() {
            *p = i as u8;
        }
        NpnTransform {
            perm,
            input_neg: 0,
            output_neg: false,
        }
    }
}

/// Applies an NPN transform: output minterm `i` takes the value of the
/// source function at the index obtained by routing bit `j` of `i`
/// (xor the negation mask) to source variable `perm[j]`.
///
/// # Panics
///
/// Panics if the table has more than [`MAX_NPN_VARS`] variables.
pub fn apply_npn(tt: &TruthTable, t: &NpnTransform) -> TruthTable {
    let k = tt.num_vars();
    assert!(k <= MAX_NPN_VARS, "NPN supports up to {MAX_NPN_VARS} vars");
    TruthTable::from_fn(k, |i| tt.value(lift_index(t, k, i)) != t.output_neg)
}

/// Maps an assignment index in the transform's *canonical* (output) space
/// back to an assignment index of the source function: bit `j` of
/// `canon_index`, xor the input-negation mask, lands on source variable
/// `perm[j]`. This is how a counterexample found on a canonical form is
/// lifted back onto the cone it came from.
pub fn lift_index(t: &NpnTransform, k: usize, canon_index: usize) -> usize {
    let mut src = 0usize;
    for j in 0..k {
        let bit = (canon_index >> j & 1 == 1) != (t.input_neg >> j & 1 == 1);
        if bit {
            src |= 1 << t.perm[j] as usize;
        }
    }
    src
}

/// Inverse of [`lift_index`]: maps a source-space assignment index into
/// the transform's canonical space. Round-trips with `lift_index` for any
/// transform whose `perm` is a bijection on `0..k`.
pub fn push_index(t: &NpnTransform, k: usize, src_index: usize) -> usize {
    let mut out = 0usize;
    for j in 0..k {
        let bit = (src_index >> t.perm[j] as usize & 1 == 1) != (t.input_neg >> j & 1 == 1);
        if bit {
            out |= 1 << j;
        }
    }
    out
}

fn permutations(k: usize) -> Vec<[u8; MAX_NPN_VARS]> {
    let mut base: Vec<u8> = (0..k as u8).collect();
    let mut out = Vec::new();
    heap_permute(&mut base, k, &mut out);
    out
}

fn heap_permute(arr: &mut [u8], n: usize, out: &mut Vec<[u8; MAX_NPN_VARS]>) {
    if n <= 1 {
        let mut fixed = [0u8; MAX_NPN_VARS];
        for (i, &v) in arr.iter().enumerate() {
            fixed[i] = v;
        }
        for (i, slot) in fixed.iter_mut().enumerate().skip(arr.len()) {
            *slot = i as u8;
        }
        out.push(fixed);
        return;
    }
    for i in 0..n {
        heap_permute(arr, n - 1, out);
        if n.is_multiple_of(2) {
            arr.swap(i, n - 1);
        } else {
            arr.swap(0, n - 1);
        }
    }
}

/// Computes the NPN-canonical representative of a function (the
/// lexicographically smallest word vector over all transforms) and the
/// transform that produces it.
///
/// Exhaustive over all `k! * 2^k * 2` transforms — fine for `k <= 6`
/// (92k transforms) outside inner loops.
///
/// # Panics
///
/// Panics if the table has more than [`MAX_NPN_VARS`] variables.
pub fn npn_canonical(tt: &TruthTable) -> (TruthTable, NpnTransform) {
    let k = tt.num_vars();
    assert!(k <= MAX_NPN_VARS, "NPN supports up to {MAX_NPN_VARS} vars");
    // Mask at the boundary: the lexicographic minimum below compares raw
    // word vectors, so a `k < 6` table carrying dirty don't-care upper
    // bits (e.g. from `TruthTable::from_sim_words`) would otherwise split
    // an NPN class across several "canonical" forms.
    let tt = tt.masked();
    let mut best: Option<(TruthTable, NpnTransform)> = None;
    for perm in permutations(k) {
        for input_neg in 0..1u16 << k {
            for output_neg in [false, true] {
                let t = NpnTransform {
                    perm,
                    input_neg: input_neg as u8,
                    output_neg,
                };
                let cand = apply_npn(&tt, &t);
                let better = match &best {
                    None => true,
                    Some((b, _)) => cand.words() < b.words(),
                };
                if better {
                    best = Some((cand, t));
                }
            }
        }
    }
    best.expect("at least the identity transform exists")
}

/// True if two functions are NPN-equivalent.
pub fn npn_equivalent(a: &TruthTable, b: &TruthTable) -> bool {
    a.num_vars() == b.num_vars() && npn_canonical(a).0 == npn_canonical(b).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj(k: usize, v: usize) -> TruthTable {
        TruthTable::projection(k, v)
    }

    #[test]
    fn identity_transform_is_noop() {
        let f = proj(3, 0).and(&proj(3, 1)).or(&proj(3, 2));
        assert_eq!(apply_npn(&f, &NpnTransform::identity()), f);
    }

    #[test]
    fn all_projections_share_a_class() {
        for k in 1..=4 {
            let c0 = npn_canonical(&proj(k, 0)).0;
            for v in 1..k {
                assert_eq!(npn_canonical(&proj(k, v)).0, c0, "k={k} v={v}");
                assert_eq!(npn_canonical(&proj(k, v).not()).0, c0, "k={k} !v={v}");
            }
        }
    }

    #[test]
    fn and_or_are_npn_equivalent() {
        // a & b ~ a | b under input+output negation (De Morgan).
        let a = proj(2, 0);
        let b = proj(2, 1);
        assert!(npn_equivalent(&a.and(&b), &a.or(&b)));
        // XOR is in a different class.
        assert!(!npn_equivalent(&a.and(&b), &a.xor(&b)));
    }

    #[test]
    fn canonical_transform_reproduces_canonical_form() {
        let f = TruthTable::from_fn(4, |i| (i * 7 + 3) % 5 < 2);
        let (canon, t) = npn_canonical(&f);
        assert_eq!(apply_npn(&f, &t), canon);
    }

    #[test]
    fn npn_classes_of_two_variables() {
        // The 16 two-variable functions fall into exactly 4 NPN classes:
        // const, projection, and2, xor2.
        use std::collections::HashSet;
        let mut classes = HashSet::new();
        for code in 0..16u64 {
            let f = TruthTable::from_fn(2, |i| code >> i & 1 == 1);
            classes.insert(npn_canonical(&f).0.words().to_vec());
        }
        assert_eq!(classes.len(), 4);
    }

    #[test]
    fn npn_classes_of_three_variables() {
        // Known count: 14 NPN classes of 3-variable functions.
        use std::collections::HashSet;
        let mut classes = HashSet::new();
        for code in 0..256u64 {
            let f = TruthTable::from_fn(3, |i| code >> i & 1 == 1);
            classes.insert(npn_canonical(&f).0.words().to_vec());
        }
        assert_eq!(classes.len(), 14);
    }

    #[test]
    fn dirty_upper_bits_do_not_split_a_class() {
        // Same 3-variable function, once clean and once with don't-care
        // garbage above bit 8 (as a bit-parallel simulator would leave it).
        // Canonicalization must mask at the boundary so both land on the
        // same canonical word vector — and a clean one.
        let clean = TruthTable::from_fn(3, |i| (i * 5 + 1) % 3 == 0);
        let dirty = TruthTable::from_sim_words(3, vec![clean.words()[0] | !0xFFu64]);
        assert_ne!(clean.words(), dirty.words(), "test needs dirty bits");
        let (cc, _) = npn_canonical(&clean);
        let (cd, _) = npn_canonical(&dirty);
        assert_eq!(cc, cd);
        assert_eq!(cc.words(), cd.words());
        assert_eq!(cd.masked().words(), cd.words(), "canonical form is masked");
    }

    #[test]
    fn lift_and_push_are_inverse() {
        let mut rng = parsweep_aig::random::SplitMix64::new(42);
        for k in 0..=4usize {
            for _ in 0..10 {
                let t = NpnTransform {
                    perm: {
                        let mut p = [0u8, 1, 2, 3, 4, 5];
                        for i in (1..k).rev() {
                            p.swap(i, rng.below(i + 1));
                        }
                        p
                    },
                    input_neg: (rng.next_u64() & ((1 << k) - 1)) as u8,
                    output_neg: rng.bool(),
                };
                for i in 0..1usize << k {
                    assert_eq!(push_index(&t, k, lift_index(&t, k, i)), i);
                    assert_eq!(lift_index(&t, k, push_index(&t, k, i)), i);
                }
            }
        }
    }

    #[test]
    fn canonical_cex_lifts_back_to_the_source() {
        // For every canonical-space assignment i, the lifted source index
        // evaluates to canon(i) xor output_neg — the invariant the
        // semantic cache relies on to replay counterexamples.
        let mut rng = parsweep_aig::random::SplitMix64::new(7);
        for _ in 0..20 {
            let f = TruthTable::from_fn(4, |_| rng.bool());
            let (canon, t) = npn_canonical(&f);
            for i in 0..canon.num_bits() {
                let src = lift_index(&t, 4, i);
                assert_eq!(f.value(src) != t.output_neg, canon.value(i));
            }
        }
    }

    #[test]
    fn equivalence_is_invariant_under_random_transforms() {
        let mut rng = parsweep_aig::random::SplitMix64::new(11);
        for _ in 0..20 {
            let f = TruthTable::from_fn(4, |_| rng.bool());
            // Scramble with a random transform.
            let t = NpnTransform {
                perm: {
                    let mut p = [0u8, 1, 2, 3, 4, 5];
                    let i = rng.below(4);
                    p.swap(i, (i + 1) % 4);
                    p
                },
                input_neg: (rng.next_u64() & 0xF) as u8,
                output_neg: rng.bool(),
            };
            let g = apply_npn(&f, &t);
            assert!(npn_equivalent(&f, &g));
        }
    }
}

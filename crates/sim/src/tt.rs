//! Packed truth tables.
//!
//! A truth table over `k` variables is a bit string of length `2^k` stored
//! in 64-bit words; bit `i` is the function value under the assignment
//! where input `j` takes bit `j` of `i` (the paper's §II-A encoding).

use std::fmt;

/// Number of 64-bit words needed for a truth table over `num_vars` inputs.
#[inline]
pub const fn word_len(num_vars: usize) -> usize {
    if num_vars < 6 {
        1
    } else {
        1 << (num_vars - 6)
    }
}

/// The six canonical single-word projection patterns for variables 0..6.
pub const PROJECTIONS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Returns word `word_index` of the projection truth table for variable
/// `var` in a table over at least `var + 1` variables.
///
/// For `var < 6` the word is a fixed alternating pattern; for `var >= 6`
/// the word is all-ones iff bit `var - 6` of the word index is set.
#[inline]
pub fn projection_word(var: usize, word_index: usize) -> u64 {
    if var < 6 {
        PROJECTIONS[var]
    } else if word_index >> (var - 6) & 1 == 1 {
        u64::MAX
    } else {
        0
    }
}

/// A dense truth table over an explicit number of variables.
///
/// ```
/// use parsweep_sim::TruthTable;
/// let x0 = TruthTable::projection(3, 0);
/// let x1 = TruthTable::projection(3, 1);
/// let and = x0.and(&x1);
/// assert!(and.value(0b011));
/// assert!(!and.value(0b001));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// The constant-false table over `num_vars` variables.
    pub fn zeros(num_vars: usize) -> Self {
        TruthTable {
            num_vars,
            words: vec![0; word_len(num_vars)],
        }
    }

    /// The constant-true table over `num_vars` variables.
    pub fn ones(num_vars: usize) -> Self {
        let mut tt = Self::zeros(num_vars);
        for w in &mut tt.words {
            *w = u64::MAX;
        }
        tt.mask_off();
        tt
    }

    /// The projection table of variable `var` over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn projection(num_vars: usize, var: usize) -> Self {
        assert!(var < num_vars, "projection variable out of range");
        let mut tt = Self::zeros(num_vars);
        for (i, w) in tt.words.iter_mut().enumerate() {
            *w = projection_word(var, i);
        }
        tt.mask_off();
        tt
    }

    /// Builds a table from a function over assignments.
    pub fn from_fn<F: FnMut(usize) -> bool>(num_vars: usize, mut f: F) -> Self {
        let mut tt = Self::zeros(num_vars);
        for i in 0..1usize << num_vars {
            if f(i) {
                tt.words[i >> 6] |= 1u64 << (i & 63);
            }
        }
        tt
    }

    /// Builds a table from raw words (little-endian bit order).
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != word_len(num_vars)`.
    pub fn from_words(num_vars: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), word_len(num_vars), "wrong word count");
        let mut tt = TruthTable { num_vars, words };
        tt.mask_off();
        tt
    }

    /// Builds a table directly from raw simulation words **without**
    /// masking the unused upper bits.
    ///
    /// Bit-parallel simulators hand back full 64-bit words even for
    /// `num_vars < 6` cones, and the bits above `2^num_vars` are
    /// don't-cares left over from whatever patterns filled the word. A
    /// table built this way is only safe to consume through
    /// [`TruthTable::value`] (which never reads the dirty region) or
    /// after [`TruthTable::masked`]; comparing it with `==` or hashing
    /// its raw [`TruthTable::words`] is meaningless until masked.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != word_len(num_vars)`.
    pub fn from_sim_words(num_vars: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), word_len(num_vars), "wrong word count");
        TruthTable { num_vars, words }
    }

    /// Returns a copy with the unused upper bits zeroed (`num_vars < 6`),
    /// restoring the invariant every other constructor maintains. The
    /// canonical entry point for laundering [`TruthTable::from_sim_words`]
    /// output before word-level comparison or hashing.
    pub fn masked(&self) -> Self {
        let mut tt = self.clone();
        tt.mask_off();
        tt
    }

    /// Zeroes the unused upper bits when `num_vars < 6`.
    fn mask_off(&mut self) {
        if self.num_vars < 6 {
            let used = 1u64 << (1 << self.num_vars);
            self.words[0] &= used.wrapping_sub(1);
        }
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of assignments (bits).
    #[inline]
    pub fn num_bits(&self) -> usize {
        1 << self.num_vars
    }

    /// The underlying words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The function value under assignment index `i` (bit `j` of `i` is the
    /// value of variable `j`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 2^num_vars`.
    #[inline]
    pub fn value(&self, i: usize) -> bool {
        assert!(i < self.num_bits(), "assignment index out of range");
        self.words[i >> 6] >> (i & 63) & 1 == 1
    }

    /// Bitwise AND of two tables over the same variables.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn and(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn or(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn xor(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a ^ b)
    }

    fn zip<F: Fn(u64, u64) -> u64>(&self, other: &Self, f: F) -> Self {
        assert_eq!(self.num_vars, other.num_vars, "variable counts differ");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        let mut tt = TruthTable {
            num_vars: self.num_vars,
            words,
        };
        tt.mask_off();
        tt
    }

    /// Bitwise complement.
    pub fn not(&self) -> Self {
        let words = self.words.iter().map(|&w| !w).collect();
        let mut tt = TruthTable {
            num_vars: self.num_vars,
            words,
        };
        tt.mask_off();
        tt
    }

    /// True if the table is constant false.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the table is constant true.
    pub fn is_ones(&self) -> bool {
        *self == Self::ones(self.num_vars)
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the function depends on variable `var` (semantically).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn depends_on(&self, var: usize) -> bool {
        assert!(var < self.num_vars);
        let proj = Self::projection(self.num_vars, var);
        // f depends on x iff f restricted to x=0 differs from x=1 anywhere.
        for i in 0..self.words.len() {
            let w = self.words[i];
            let p = proj.words[i];
            if var < 6 {
                // Compare adjacent blocks within the word.
                let lo = w & !p;
                let hi = (w & p) >> (1 << var);
                let used = if self.num_vars < 6 {
                    (1u64 << (1 << self.num_vars)) - 1
                } else {
                    u64::MAX
                };
                let mask = !p & used;
                if (lo ^ hi) & mask != 0 {
                    return true;
                }
            } else {
                let stride = 1usize << (var - 6);
                if i >> (var - 6) & 1 == 0 && self.words[i] != self.words[i + stride] {
                    return true;
                }
            }
        }
        false
    }

    /// The positive cofactor with respect to `var` (as a table over the
    /// same variable set, with `var` forced to 1).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        assert!(var < self.num_vars);
        Self::from_fn(self.num_vars, |i| {
            let j = if value {
                i | (1 << var)
            } else {
                i & !(1 << var)
            };
            self.value(j)
        })
    }
}

impl TruthTable {
    /// Renders the table as a hex string, most-significant word first
    /// (ABC's truth-table notation), e.g. `8` for AND2, `6` for XOR2.
    pub fn to_hex(&self) -> String {
        let nibbles = (self.num_bits().max(4)) / 4;
        let mut out = String::with_capacity(nibbles);
        for i in (0..nibbles).rev() {
            let word = self.words[i / 16];
            let nib = (word >> ((i % 16) * 4)) & 0xF;
            out.push(char::from_digit(nib as u32, 16).expect("nibble"));
        }
        out
    }

    /// Parses a hex string written by [`TruthTable::to_hex`].
    ///
    /// Returns `None` if the string has the wrong length or bad digits.
    pub fn from_hex(num_vars: usize, hex: &str) -> Option<Self> {
        let nibbles = (1usize << num_vars).max(4) / 4;
        if hex.len() != nibbles {
            return None;
        }
        let mut tt = TruthTable::zeros(num_vars);
        let mut words = vec![0u64; tt.words.len()];
        for (k, c) in hex.chars().rev().enumerate() {
            let nib = c.to_digit(16)? as u64;
            words[k / 16] |= nib << ((k % 16) * 4);
        }
        tt.words = words;
        tt.mask_off();
        Some(tt)
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({}v: ", self.num_vars)?;
        if self.num_vars <= 6 {
            let bits = self.num_bits();
            for i in (0..bits).rev() {
                write!(f, "{}", self.value(i) as u8)?;
            }
        } else {
            write!(f, "{} words", self.words.len())?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_matches_paper_example() {
        // Paper §II-A: for k = 3, projections are 10101010, 11001100,
        // 11110000.
        let p0 = TruthTable::projection(3, 0);
        let p1 = TruthTable::projection(3, 1);
        let p2 = TruthTable::projection(3, 2);
        assert_eq!(p0.words()[0], 0xAA);
        assert_eq!(p1.words()[0], 0xCC);
        assert_eq!(p2.words()[0], 0xF0);
    }

    #[test]
    fn projection_value_semantics() {
        for k in 1..=8 {
            for v in 0..k {
                let p = TruthTable::projection(k, v);
                for i in 0..1usize << k {
                    assert_eq!(p.value(i), i >> v & 1 == 1, "k={k} v={v} i={i}");
                }
            }
        }
    }

    #[test]
    fn ops_match_boolean_semantics() {
        let k = 7;
        let a = TruthTable::projection(k, 2);
        let b = TruthTable::projection(k, 6);
        let and = a.and(&b);
        let or = a.or(&b);
        let xor = a.xor(&b);
        for i in 0..1usize << k {
            let (va, vb) = (a.value(i), b.value(i));
            assert_eq!(and.value(i), va && vb);
            assert_eq!(or.value(i), va || vb);
            assert_eq!(xor.value(i), va != vb);
        }
    }

    #[test]
    fn not_masks_unused_bits() {
        let t = TruthTable::zeros(2).not();
        assert!(t.is_ones());
        assert_eq!(t.words()[0], 0b1111);
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    fn depends_on_detects_support() {
        // f = x0 & x1 over 3 vars does not depend on x2.
        let x0 = TruthTable::projection(3, 0);
        let x1 = TruthTable::projection(3, 1);
        let f = x0.and(&x1);
        assert!(f.depends_on(0));
        assert!(f.depends_on(1));
        assert!(!f.depends_on(2));
    }

    #[test]
    fn depends_on_large_vars() {
        let k = 8;
        let f = TruthTable::projection(k, 7);
        assert!(f.depends_on(7));
        for v in 0..7 {
            assert!(!f.depends_on(v));
        }
    }

    #[test]
    fn cofactor_fixes_variable() {
        let x0 = TruthTable::projection(3, 0);
        let x2 = TruthTable::projection(3, 2);
        let f = x0.and(&x2); // x0 & x2
        let c1 = f.cofactor(2, true); // = x0
        let c0 = f.cofactor(2, false); // = 0
        assert_eq!(c1, TruthTable::projection(3, 0));
        assert!(c0.is_zero());
    }

    #[test]
    fn from_fn_roundtrip() {
        let f = TruthTable::from_fn(5, |i| i.count_ones() % 2 == 1);
        for i in 0..32 {
            assert_eq!(f.value(i), i.count_ones() % 2 == 1);
        }
        assert_eq!(f.count_ones(), 16);
    }

    #[test]
    fn hex_notation_matches_abc_conventions() {
        let a = TruthTable::projection(2, 0);
        let b = TruthTable::projection(2, 1);
        assert_eq!(a.and(&b).to_hex(), "8");
        assert_eq!(a.or(&b).to_hex(), "e");
        assert_eq!(a.xor(&b).to_hex(), "6");
        let m3 = {
            let x = TruthTable::projection(3, 0);
            let y = TruthTable::projection(3, 1);
            let z = TruthTable::projection(3, 2);
            let xy = x.and(&y);
            let xz = x.and(&z);
            let yz = y.and(&z);
            xy.or(&xz).or(&yz)
        };
        assert_eq!(m3.to_hex(), "e8"); // MAJ3 in ABC notation
    }

    #[test]
    fn hex_roundtrip() {
        for k in [2usize, 4, 6, 8] {
            let f = TruthTable::from_fn(k, |i| (i * 11 + 5) % 7 < 3);
            let hex = f.to_hex();
            assert_eq!(TruthTable::from_hex(k, &hex), Some(f));
        }
        assert_eq!(TruthTable::from_hex(3, "zz"), None);
        assert_eq!(TruthTable::from_hex(3, "123"), None);
    }

    #[test]
    fn word_len_boundaries() {
        assert_eq!(word_len(0), 1);
        assert_eq!(word_len(5), 1);
        assert_eq!(word_len(6), 1);
        assert_eq!(word_len(7), 2);
        assert_eq!(word_len(10), 16);
    }

    #[test]
    fn projection_word_high_vars() {
        // Variable 6 alternates every word; variable 7 every two words.
        assert_eq!(projection_word(6, 0), 0);
        assert_eq!(projection_word(6, 1), u64::MAX);
        assert_eq!(projection_word(7, 1), 0);
        assert_eq!(projection_word(7, 2), u64::MAX);
    }
}

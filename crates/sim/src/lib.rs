//! # parsweep-sim — bit-parallel simulation substrate
//!
//! Implements both simulators of the paper's CEC engine:
//!
//! * the **partial simulator** ([`partial`]): samples random or
//!   counter-example patterns on every node of a miter to initialize and
//!   refine equivalence classes;
//! * the **exhaustive simulator** ([`exhaustive`], paper Algorithm 1): the
//!   engine's *prover*, which compares the complete truth tables of
//!   candidate pairs over simulation [`Window`]s, in bounded memory via
//!   multi-round segment simulation, with window merging (§III-B3) to
//!   reduce total effort.
//!
//! ```
//! use parsweep_aig::Aig;
//! use parsweep_par::Executor;
//! use parsweep_sim::{check_windows, PairCheck, PairOutcome, Window};
//!
//! // Prove (a & b) == !(!a | !b) by exhaustive simulation.
//! let mut aig = Aig::new();
//! let xs = aig.add_inputs(2);
//! let f = aig.and(xs[0], xs[1]);
//! let g = aig.or(!xs[0], !xs[1]); // g == !f
//! let complement = f.is_complemented() == g.is_complemented();
//! let pair = PairCheck { a: f.var(), b: g.var(), complement };
//! let window = Window::global(&aig, pair);
//! let exec = Executor::with_threads(1);
//! let (outcomes, _) = check_windows(&aig, &exec, &[window], 1 << 12);
//! assert_eq!(outcomes[0][0], PairOutcome::Equal);
//! ```

#![warn(missing_docs)]

mod cex;
mod classes;
pub mod cone;
pub mod exhaustive;
pub mod npn;
pub mod odc;
pub mod partial;
pub mod resim;
pub mod reverse;
pub mod sigwin;
mod tt;
mod window;

pub use cex::Cex;
pub use classes::{
    find_po_counterexample, refine_classes, refine_classes_odc, signature_classes,
    signature_classes_among,
};
pub use cone::cone_truth_table;
pub use exhaustive::{
    check_windows, check_windows_cancellable, PairOutcome, SimEffort, DEFAULT_MEMORY_WORDS,
};
pub use npn::{
    apply_npn, lift_index, npn_canonical, npn_equivalent, push_index, NpnTransform, MAX_NPN_VARS,
};
pub use odc::{check_replaceable, Fanouts, OdcCandidate, OdcConfig, OdcMasks};
pub use partial::{
    simulate, simulate_pruned, simulate_pruned_counted, simulate_pruned_counted_with,
    simulate_with, Patterns, Signatures,
};
pub use resim::ResimPlan;
pub use sigwin::{SigWindowConfig, SpillTier};
pub use tt::{projection_word, word_len, TruthTable, PROJECTIONS};
pub use window::{merge_windows, merge_windows_clustered, PairCheck, Window};

//! The simulation engines declare their kernel effects, so on a
//! sanitizing executor they must take the statically-verified fast path:
//! identical results, zero dynamic reports, and the verified-launch
//! counters ticking. Under cross-check mode (`check_declared`, what
//! `PARSWEEP_SANITIZE=all` forces) the same engines run fully sanitized
//! against their declarations without a single uncovered access.

use parsweep_aig::{Lit, Var};
use parsweep_par::{Executor, SanitizerConfig};
use parsweep_sim::{check_windows, simulate, PairCheck, Patterns, ResimPlan, Window};

fn sanitizing() -> Executor {
    Executor::with_sanitizer(2)
}

fn cross_checking() -> Executor {
    Executor::with_sanitizer_config(
        2,
        SanitizerConfig {
            fail_fast: true,
            check_declared: true,
            ..SanitizerConfig::default()
        },
    )
}

#[test]
fn exhaustive_checker_is_verified_on_sanitizing_executor() {
    let aig = parsweep_aig::random::random_aig(6, 50, 2, 7);
    let pair = PairCheck {
        a: aig.po(0).var(),
        b: aig.po(1).var(),
        complement: false,
    };
    let windows = [Window::global(&aig, pair)];

    let raw = Executor::with_threads(2);
    let (expected, _) = check_windows(&aig, &raw, &windows, 1 << 14);

    let exec = sanitizing();
    let (out, _) = check_windows(&aig, &exec, &windows, 1 << 14);
    assert_eq!(out, expected, "verified fast path must not change verdicts");
    assert!(exec.take_reports().is_empty());
    // Ambient PARSWEEP_SANITIZE=all forces cross-check mode, where
    // declared launches deliberately run sanitized instead.
    if !exec.cross_checking() {
        assert!(
            exec.stats().static_verified_launches > 0,
            "declared launches must skip dynamic sanitization"
        );
    }

    // Cross-check: fail_fast panics on any access outside a declaration.
    let exec = cross_checking();
    let (out, _) = check_windows(&aig, &exec, &windows, 1 << 14);
    assert_eq!(out, expected);
    assert_eq!(exec.stats().static_verified_launches, 0);
}

#[test]
fn partial_simulation_is_verified_on_sanitizing_executor() {
    let aig = parsweep_aig::random::random_aig(5, 40, 2, 11);
    let patterns = Patterns::random(5, 2, 99);

    let raw = Executor::with_threads(2);
    let expected = simulate(&aig, &raw, &patterns);

    let exec = sanitizing();
    let sigs = simulate(&aig, &exec, &patterns);
    for v in (0..aig.num_nodes()).map(|i| Var::new(i as u32)) {
        assert_eq!(sigs.sig(v), expected.sig(v));
        assert_eq!(sigs.canonical_hash(v), expected.canonical_hash(v));
    }
    assert!(exec.take_reports().is_empty());
    if !exec.cross_checking() {
        assert!(exec.stats().static_verified_launches > 0);
    }

    let exec = cross_checking();
    let sigs = simulate(&aig, &exec, &patterns);
    assert_eq!(sigs.sig(Var::new(1)), expected.sig(Var::new(1)));
    assert_eq!(exec.stats().static_verified_launches, 0);
}

#[test]
fn resimulation_is_verified_on_sanitizing_executor() {
    let old = parsweep_aig::random::random_aig(5, 40, 2, 23);
    let patterns = Patterns::random(5, 2, 5);
    // Merge one AND node into a smaller literal and rebuild.
    let mut subst: Vec<Lit> = (0..old.num_nodes())
        .map(|i| Var::new(i as u32).lit())
        .collect();
    let victim = old.and_vars().last().expect("network has AND nodes");
    subst[victim.index()] = Var::new(victim.index() as u32 / 2).lit();
    let (new, map) = old.rebuild_with_substitution(&subst);
    let plan = ResimPlan::new(&old, &new, &map, &subst);

    let raw = Executor::with_threads(2);
    let old_sigs = simulate(&old, &raw, &patterns);
    let expected = plan.resimulate(&new, &raw, &patterns, &old_sigs);

    let exec = sanitizing();
    let old_sigs2 = simulate(&old, &exec, &patterns);
    let sigs = plan.resimulate(&new, &exec, &patterns, &old_sigs2);
    for v in (0..new.num_nodes()).map(|i| Var::new(i as u32)) {
        assert_eq!(sigs.sig(v), expected.sig(v));
    }
    assert!(exec.take_reports().is_empty());
    if !exec.cross_checking() {
        assert!(exec.stats().static_verified_launches > 0);
    }

    let exec = cross_checking();
    let old_sigs3 = simulate(&old, &exec, &patterns);
    let sigs = plan.resimulate(&new, &exec, &patterns, &old_sigs3);
    assert_eq!(sigs.sig(Var::new(1)), expected.sig(Var::new(1)));
    assert_eq!(exec.stats().static_verified_launches, 0);
}

//! Property tests of the two window-merging strategies: both must
//! preserve the pair population, respect the input bound, and never
//! change any verdict.

use proptest::prelude::*;

use parsweep_aig::{Aig, Var};
use parsweep_par::Executor;
use parsweep_sim::{
    check_windows, merge_windows, merge_windows_clustered, PairCheck, PairOutcome, Window,
};

/// Builds a batch of constant-check windows over random small input sets.
fn random_windows(seed: u64, count: usize, num_pis: usize) -> (Aig, Vec<Window>) {
    let mut rng = parsweep_aig::random::SplitMix64::new(seed);
    let mut aig = Aig::new();
    let xs = aig.add_inputs(num_pis);
    let mut windows = Vec::new();
    for _ in 0..count {
        let k = 2 + rng.below(3);
        let mut picks: Vec<usize> = (0..k).map(|_| rng.below(num_pis)).collect();
        picks.sort_unstable();
        picks.dedup();
        let lits: Vec<_> = picks.iter().map(|&i| xs[i]).collect();
        let f = aig.and_all(lits.clone());
        if f.is_const() || !aig.node(f.var()).is_and() {
            continue;
        }
        let pair = PairCheck {
            a: Var::FALSE,
            b: f.var(),
            complement: f.is_complemented(),
        };
        if let Some(w) = Window::for_pair(&aig, pair, picks.iter().map(|&i| xs[i].var()).collect())
        {
            windows.push(w);
        }
    }
    (aig, windows)
}

fn verdict_map(windows: &[Window], outcomes: &[Vec<PairOutcome>]) -> Vec<(Var, bool)> {
    let mut v: Vec<(Var, bool)> = Vec::new();
    for (w, win) in windows.iter().enumerate() {
        for (k, o) in outcomes[w].iter().enumerate() {
            v.push((win.pairs[k].b, matches!(o, PairOutcome::Equal)));
        }
    }
    v.sort();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn both_strategies_preserve_pairs_and_bound(
        seed in any::<u64>(), count in 1usize..12, k_s in 3usize..8
    ) {
        let (_aig, windows) = random_windows(seed, count, 10);
        let total: usize = windows.iter().map(|w| w.pairs.len()).sum();
        for (name, merged) in [
            ("lex", merge_windows(windows.clone(), k_s)),
            ("clustered", merge_windows_clustered(windows.clone(), k_s)),
        ] {
            let after: usize = merged.iter().map(|w| w.pairs.len()).sum();
            prop_assert_eq!(after, total, "{} lost pairs", name);
            prop_assert!(
                merged.iter().all(|w| w.num_inputs() <= k_s.max(
                    windows.iter().map(|x| x.num_inputs()).max().unwrap_or(0)
                )),
                "{} exceeded k_s", name
            );
            prop_assert!(merged.len() <= windows.len());
        }
    }

    #[test]
    fn merging_never_changes_verdicts(seed in any::<u64>(), count in 1usize..10) {
        let (aig, windows) = random_windows(seed, count, 9);
        if windows.is_empty() {
            return Ok(());
        }
        let exec = Executor::with_threads(1);
        let (base_out, _) = check_windows(&aig, &exec, &windows, 1 << 14);
        let base = verdict_map(&windows, &base_out);
        for merged in [
            merge_windows(windows.clone(), 7),
            merge_windows_clustered(windows.clone(), 7),
        ] {
            let (out, _) = check_windows(&aig, &exec, &merged, 1 << 14);
            prop_assert_eq!(verdict_map(&merged, &out), base.clone());
        }
    }

    #[test]
    fn merging_reduces_total_entries_on_overlap(seed in any::<u64>()) {
        // Heavily overlapping windows (all over the same few PIs) must
        // shrink: that is the whole point of §III-B3.
        let (_aig, windows) = random_windows(seed, 12, 4);
        if windows.len() < 4 {
            return Ok(());
        }
        let before: usize = windows.iter().map(|w| w.num_entries()).sum();
        let merged = merge_windows(windows, 4);
        let after: usize = merged.iter().map(|w| w.num_entries()).sum();
        prop_assert!(after <= before);
    }
}

//! Property tests for the incremental simulation stack: support-pruned
//! simulation, dirty-cone resimulation across rewrites, and in-place
//! class refinement must all be indistinguishable from simulating from
//! scratch.
//!
//! The whole suite is also run under `PARSWEEP_SANITIZE=1` in CI (see
//! `scripts/bench.sh` and the sanitizer test jobs): every kernel these
//! paths launch must stay racecheck-clean.

use proptest::prelude::*;

use parsweep_aig::random::SplitMix64;
use parsweep_aig::{Aig, Lit, Var};
use parsweep_par::Executor;
use parsweep_sim::{
    refine_classes, signature_classes, signature_classes_among, simulate, simulate_pruned,
    Patterns, ResimPlan,
};

fn exec() -> Executor {
    Executor::with_threads(2)
}

/// A random live set: each var kept with probability ~1/4, at least one.
fn random_live(aig: &Aig, seed: u64) -> Vec<Var> {
    let mut rng = SplitMix64::new(seed);
    let mut live: Vec<Var> = (0..aig.num_nodes())
        .map(|i| Var::new(i as u32))
        .filter(|_| rng.below(4) == 0)
        .collect();
    if live.is_empty() {
        live.push(Var::new((aig.num_nodes() - 1) as u32));
    }
    live
}

/// A random (generally unsound) substitution in engine shape: some AND
/// nodes replaced by a smaller-id literal. PIs are never substituted.
fn random_merges(aig: &Aig, seed: u64) -> Vec<Lit> {
    let mut rng = SplitMix64::new(seed);
    let mut subst: Vec<Lit> = (0..aig.num_nodes())
        .map(|i| Var::new(i as u32).lit())
        .collect();
    for v in aig.and_vars() {
        if rng.below(5) != 0 {
            continue;
        }
        let target = rng.below(v.index());
        subst[v.index()] = Var::new(target as u32).lit_with(rng.bool());
    }
    subst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pruned_simulation_matches_full_on_the_live_cone(
        pis in 2usize..7,
        ands in 5usize..60,
        words in 1usize..4,
        seed in any::<u64>(),
    ) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 2, seed);
        let patterns = Patterns::random(pis, words, seed ^ 0xa5a5);
        let live = random_live(&aig, seed ^ 0x11);
        let full = simulate(&aig, &exec(), &patterns);
        let pruned = simulate_pruned(&aig, &exec(), &patterns, &live);
        // Every cone member carries the exact full-simulation words and
        // the same cached canonical hash.
        for &v in &aig.tfi_cone(&live) {
            prop_assert_eq!(pruned.sig(v), full.sig(v), "node {:?}", v);
            prop_assert_eq!(
                pruned.canonical_hash(v),
                full.canonical_hash(v),
                "hash of {:?}", v
            );
        }
        // Clustering the live members from either table agrees.
        prop_assert_eq!(
            signature_classes_among(&pruned, &live),
            signature_classes_among(&full, &live)
        );
    }

    #[test]
    fn dirty_cone_resim_matches_full_simulation_after_random_merges(
        pis in 2usize..7,
        ands in 5usize..60,
        words in 1usize..4,
        seed in any::<u64>(),
    ) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 2, seed);
        let patterns = Patterns::random(pis, words, seed ^ 0x77);
        let base = simulate(&aig, &exec(), &patterns);
        // Unsound random merges: the clean/dirty split must still be
        // exact, because clean nodes are untainted by construction.
        let subst = random_merges(&aig, seed ^ 0x3c3c);
        let (new, map) = aig.rebuild_with_substitution(&subst);
        let plan = ResimPlan::new(&aig, &new, &map, &subst);
        prop_assert_eq!(plan.num_clean() + plan.num_dirty() + 1, new.num_nodes());
        let resimmed = plan.resimulate(&new, &exec(), &patterns, &base);
        let full = simulate(&new, &exec(), &patterns);
        for i in 0..new.num_nodes() {
            let v = Var::new(i as u32);
            prop_assert_eq!(resimmed.sig(v), full.sig(v), "node {:?}", v);
            prop_assert_eq!(
                resimmed.canonical_hash(v),
                full.canonical_hash(v),
                "hash of {:?}", v
            );
        }
    }

    #[test]
    fn in_place_refinement_equals_reclustering_the_extended_patterns(
        pis in 2usize..7,
        ands in 5usize..60,
        seed in any::<u64>(),
    ) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 2, seed);
        let base_patterns = Patterns::random(pis, 2, seed ^ 0x1111);
        let fresh_patterns = Patterns::random(pis, 2, seed ^ 0x2222);
        let base = simulate(&aig, &exec(), &base_patterns);
        let mut classes = signature_classes(&aig, &base);
        // Refine in place against the fresh table (pruned to the members).
        let live: Vec<Var> = classes.iter().flatten().copied().collect();
        let fresh = simulate_pruned(&aig, &exec(), &fresh_patterns, &live);
        refine_classes(&mut classes, &base, &fresh);
        // The ground truth: a class relation survives iff it holds over
        // the concatenated pattern set.
        let mut extended = base_patterns.clone();
        extended.extend(&fresh_patterns);
        let scratch = simulate(&aig, &exec(), &extended);
        prop_assert_eq!(classes, signature_classes(&aig, &scratch));
    }
}

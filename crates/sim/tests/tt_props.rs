//! Property-based tests of truth tables and the exhaustive simulator.

use proptest::prelude::*;

use parsweep_aig::{Aig, Var};
use parsweep_par::Executor;
use parsweep_sim::{check_windows, PairCheck, PairOutcome, TruthTable, Window};

fn arb_tt(num_vars: usize) -> impl Strategy<Value = TruthTable> {
    proptest::collection::vec(any::<u64>(), parsweep_sim::word_len(num_vars))
        .prop_map(move |words| TruthTable::from_words(num_vars, words))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn de_morgan_holds(a in arb_tt(7), b in arb_tt(7)) {
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }

    #[test]
    fn xor_is_its_own_inverse(a in arb_tt(6), b in arb_tt(6)) {
        prop_assert_eq!(a.xor(&b).xor(&b), a.clone());
        prop_assert!(a.xor(&a).is_zero());
    }

    #[test]
    fn double_complement_is_identity(a in arb_tt(5)) {
        prop_assert_eq!(a.not().not(), a.clone());
        prop_assert_eq!(a.count_ones() + a.not().count_ones(), a.num_bits());
    }

    #[test]
    fn cofactors_reconstruct_by_shannon(a in arb_tt(5), var in 0usize..5) {
        let c1 = a.cofactor(var, true);
        let c0 = a.cofactor(var, false);
        let x = TruthTable::projection(5, var);
        let rebuilt = x.and(&c1).or(&x.not().and(&c0));
        prop_assert_eq!(rebuilt, a.clone());
        // Cofactors never depend on the cofactored variable.
        prop_assert!(!c1.depends_on(var));
        prop_assert!(!c0.depends_on(var));
    }

    #[test]
    fn depends_on_matches_cofactor_difference(a in arb_tt(6), var in 0usize..6) {
        let differs = a.cofactor(var, true) != a.cofactor(var, false);
        prop_assert_eq!(a.depends_on(var), differs);
    }

    #[test]
    fn exhaustive_checker_agrees_with_reference_eval(
        seed in any::<u64>(), pis in 2usize..7, ands in 4usize..60
    ) {
        // Build one random network; pick the two newest nodes as a pair
        // and compare the checker's verdict with brute-force evaluation.
        let aig = parsweep_aig::random::random_aig(pis, ands, 2, seed);
        let v1 = aig.po(0).var();
        let v2 = aig.po(1).var();
        if v1 == v2 || v1.is_const() || v2.is_const() {
            return Ok(());
        }
        let (a, b) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
        for complement in [false, true] {
            let pair = PairCheck { a, b, complement };
            let w = Window::global(&aig, pair);
            let exec = Executor::with_threads(1);
            let (out, _) = check_windows(&aig, &exec, &[w], 1 << 14);
            // Reference: brute force over all assignments.
            let mut equal = true;
            for i in 0..1usize << pis {
                let bits: Vec<bool> = (0..pis).map(|k| i >> k & 1 == 1).collect();
                let values = aig.eval_nodes(&bits);
                if values[a.index()] != (values[b.index()] != complement) {
                    equal = false;
                    break;
                }
            }
            match &out[0][0] {
                PairOutcome::Equal => prop_assert!(equal, "checker said equal, reference disagrees"),
                PairOutcome::Mismatch { .. } => prop_assert!(!equal, "checker mismatch, reference says equal"),
            }
        }
    }

    #[test]
    fn mismatch_assignment_is_a_witness(
        seed in any::<u64>(), pis in 2usize..7, ands in 4usize..60
    ) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 2, seed);
        let v1 = aig.po(0).var();
        let v2 = aig.po(1).var();
        if v1 == v2 || v1.is_const() || v2.is_const() {
            return Ok(());
        }
        let (a, b) = if v1 < v2 { (v1, v2) } else { (v2, v1) };
        let pair = PairCheck { a, b, complement: false };
        let w = Window::global(&aig, pair);
        let inputs = w.inputs.clone();
        let exec = Executor::with_threads(1);
        let (out, _) = check_windows(&aig, &exec, &[w], 1 << 14);
        if let PairOutcome::Mismatch { assignment, .. } = &out[0][0] {
            // Evaluate the witness: expand window-input assignment to PIs.
            let mut dense = vec![false; aig.num_pis()];
            let mut pi_pos = std::collections::HashMap::new();
            for (i, &pi) in aig.pis().iter().enumerate() {
                pi_pos.insert(pi, i);
            }
            for (v, &val) in inputs.iter().zip(assignment.iter()) {
                dense[pi_pos[v]] = val;
            }
            let values = aig.eval_nodes(&dense);
            prop_assert_ne!(values[a.index()], values[b.index()]);
        }
        let _ = Var::FALSE;
    }
}

#[test]
fn window_merging_preserves_outcomes() {
    // Merged and unmerged batches must agree on every pair verdict.
    let mut aig = Aig::new();
    let xs = aig.add_inputs(6);
    let f1 = aig.xor(xs[0], xs[1]);
    let f2 = {
        let t0 = aig.and(xs[0], !xs[1]);
        let t1 = aig.and(!xs[0], xs[1]);
        aig.or(t0, t1)
    };
    let g1 = aig.and(xs[2], xs[3]);
    let g2 = aig.or(xs[2], xs[3]);
    let h1 = aig.maj3(xs[3], xs[4], xs[5]);
    let h2 = {
        let or = aig.or(xs[4], xs[5]);
        let and = aig.and(xs[4], xs[5]);
        aig.mux(xs[3], or, and)
    };
    let pairs = [(f1, f2), (g1, g2), (h1, h2)];
    let exec = Executor::with_threads(1);
    let windows: Vec<Window> = pairs
        .iter()
        .map(|(x, y)| {
            Window::global(
                &aig,
                PairCheck {
                    a: x.var().min(y.var()),
                    b: x.var().max(y.var()),
                    complement: x.is_complemented() != y.is_complemented(),
                },
            )
        })
        .collect();
    let (plain, _) = check_windows(&aig, &exec, &windows, 1 << 14);
    let merged = parsweep_sim::merge_windows(windows.clone(), 6);
    let (merged_out, _) = check_windows(&aig, &exec, &merged, 1 << 14);
    // Collect verdicts per pair (b-var identifies the pair).
    let collect = |wins: &[Window], outs: &[Vec<PairOutcome>]| {
        let mut v: Vec<(Var, bool)> = Vec::new();
        for (w, win) in wins.iter().enumerate() {
            for (k, o) in outs[w].iter().enumerate() {
                v.push((win.pairs[k].b, matches!(o, PairOutcome::Equal)));
            }
        }
        v.sort();
        v
    };
    assert_eq!(collect(&windows, &plain), collect(&merged, &merged_out));
}

//! Property tests for the level-windowed streaming simulator and the
//! ODC-aware refinement layer: a windowed run must be bit-identical to
//! whole-table residency (signatures, canonical hashes, classes) at any
//! window size and spill tier, streamed dirty-cone resimulation must
//! round-trip spilled donors exactly, and ODC-masked refinement must
//! split classes exactly like the plain refiner.
//!
//! The whole suite is also run under `PARSWEEP_SANITIZE=all` in CI (see
//! the sanitize job): every spill/fill/eval kernel must stay
//! racecheck-clean.

use proptest::prelude::*;

use parsweep_aig::random::SplitMix64;
use parsweep_aig::{Aig, Lit, Var};
use parsweep_par::Executor;
use parsweep_sim::{
    refine_classes, refine_classes_odc, signature_classes, signature_classes_among, simulate,
    simulate_pruned, simulate_pruned_counted_with, simulate_with, Fanouts, OdcMasks, Patterns,
    ResimPlan, SigWindowConfig,
};

fn exec() -> Executor {
    Executor::with_threads(2)
}

/// The window ladder every equivalence property sweeps: degenerate
/// single-level, small, unbounded (never retires — still must match),
/// and a disk-backed tier.
fn window_ladder() -> Vec<SigWindowConfig> {
    vec![
        SigWindowConfig::with_levels(1),
        SigWindowConfig::with_levels(2),
        SigWindowConfig::with_levels(usize::MAX),
        SigWindowConfig::with_levels(1).on_disk(),
    ]
}

/// A random live set: each var kept with probability ~1/4, at least one.
fn random_live(aig: &Aig, seed: u64) -> Vec<Var> {
    let mut rng = SplitMix64::new(seed);
    let mut live: Vec<Var> = (0..aig.num_nodes())
        .map(|i| Var::new(i as u32))
        .filter(|_| rng.below(4) == 0)
        .collect();
    if live.is_empty() {
        live.push(Var::new((aig.num_nodes() - 1) as u32));
    }
    live
}

/// A random (generally unsound) substitution in engine shape: some AND
/// nodes replaced by a smaller-id literal. PIs are never substituted.
fn random_merges(aig: &Aig, seed: u64) -> Vec<Lit> {
    let mut rng = SplitMix64::new(seed);
    let mut subst: Vec<Lit> = (0..aig.num_nodes())
        .map(|i| Var::new(i as u32).lit())
        .collect();
    for v in aig.and_vars() {
        if rng.below(5) != 0 {
            continue;
        }
        let target = rng.below(v.index());
        subst[v.index()] = Var::new(target as u32).lit_with(rng.bool());
    }
    subst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn windowed_simulation_is_bit_identical_to_whole_table(
        pis in 2usize..7,
        ands in 5usize..60,
        words in 1usize..4,
        seed in any::<u64>(),
    ) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 2, seed);
        let patterns = Patterns::random(pis, words, seed ^ 0x5157);
        let full = simulate(&aig, &exec(), &patterns);
        for cfg in window_ladder() {
            let windowed = simulate_with(&aig, &exec(), &patterns, Some(&cfg));
            prop_assert!(windowed.is_windowed());
            for i in 0..aig.num_nodes() {
                let v = Var::new(i as u32);
                prop_assert_eq!(windowed.sig(v), full.sig(v), "{:?} under {:?}", v, cfg);
                prop_assert_eq!(
                    windowed.canonical_hash(v),
                    full.canonical_hash(v),
                    "hash of {:?} under {:?}", v, cfg
                );
            }
            prop_assert_eq!(
                signature_classes(&aig, &windowed),
                signature_classes(&aig, &full)
            );
        }
    }

    #[test]
    fn windowed_pruned_simulation_matches_whole_table_on_the_cone(
        pis in 2usize..7,
        ands in 5usize..60,
        words in 1usize..4,
        seed in any::<u64>(),
    ) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 2, seed);
        let patterns = Patterns::random(pis, words, seed ^ 0xc0de);
        let live = random_live(&aig, seed ^ 0x31);
        let pruned = simulate_pruned(&aig, &exec(), &patterns, &live);
        for cfg in window_ladder() {
            let (windowed, covered) =
                simulate_pruned_counted_with(&aig, &exec(), &patterns, &live, Some(&cfg));
            prop_assert_eq!(covered, aig.tfi_cone(&live).len());
            for &v in &aig.tfi_cone(&live) {
                prop_assert_eq!(windowed.sig(v), pruned.sig(v), "{:?} under {:?}", v, cfg);
                prop_assert_eq!(
                    windowed.canonical_hash(v),
                    pruned.canonical_hash(v),
                    "hash of {:?} under {:?}", v, cfg
                );
            }
            prop_assert_eq!(
                signature_classes_among(&windowed, &live),
                signature_classes_among(&pruned, &live)
            );
        }
    }

    #[test]
    fn streamed_resim_round_trips_spilled_donors_after_unsound_merges(
        pis in 2usize..7,
        ands in 5usize..60,
        words in 1usize..4,
        seed in any::<u64>(),
    ) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 2, seed);
        let patterns = Patterns::random(pis, words, seed ^ 0x99);
        let subst = random_merges(&aig, seed ^ 0x1234);
        let (new, map) = aig.rebuild_with_substitution(&subst);
        let plan = ResimPlan::new(&aig, &new, &map, &subst);
        let full = simulate(&new, &exec(), &patterns);
        for cfg in window_ladder() {
            // The donor table itself lives in the spill tier: copies
            // must fill retired donor levels back in bit-exactly.
            let old = simulate_with(&aig, &exec(), &patterns, Some(&cfg));
            let resimmed =
                plan.resimulate_with(&new, &exec(), &patterns, &old, Some(&cfg));
            for i in 0..new.num_nodes() {
                let v = Var::new(i as u32);
                prop_assert_eq!(resimmed.sig(v), full.sig(v), "{:?} under {:?}", v, cfg);
                prop_assert_eq!(
                    resimmed.canonical_hash(v),
                    full.canonical_hash(v),
                    "hash of {:?} under {:?}", v, cfg
                );
            }
        }
    }

    #[test]
    fn odc_masked_refinement_splits_exactly_like_the_plain_refiner(
        pis in 2usize..7,
        ands in 5usize..60,
        seed in any::<u64>(),
    ) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 2, seed);
        let base_patterns = Patterns::random(pis, 2, seed ^ 0xaaaa);
        let fresh_patterns = Patterns::random(pis, 2, seed ^ 0xbbbb);
        let e = exec();
        let base = simulate(&aig, &e, &base_patterns);
        let fresh = simulate(&aig, &e, &fresh_patterns);
        let fanouts = Fanouts::build(&aig);
        let masks = OdcMasks::compute(&aig, &e, &fresh, &fanouts);
        let mut plain = signature_classes(&aig, &base);
        let mut odc = plain.clone();
        let n_plain = refine_classes(&mut plain, &base, &fresh);
        let (n_odc, candidates) = refine_classes_odc(&mut odc, &base, &fresh, &masks, 8);
        // The masks are a filter, never a proof: the ODC variant must
        // split identically — a distinguishable pair is never left
        // merged, it is at most *reported* for the exact check.
        prop_assert_eq!(n_plain, n_odc);
        prop_assert_eq!(plain.clone(), odc);
        // Every candidate really is distinguishable (it was split) yet
        // unobservably so: its normalized divergence lies entirely in
        // masked-out bits of the member's care set.
        for c in &candidates {
            let phase_fix = if base.phase(c.repr) != base.phase(c.member) {
                u64::MAX
            } else {
                0
            };
            let mut differs = false;
            let mut observable = false;
            for ((&a, &b), &m) in fresh
                .sig(c.repr)
                .iter()
                .zip(fresh.sig(c.member))
                .zip(masks.care(c.member))
            {
                let diff = a ^ b ^ phase_fix;
                differs |= diff != 0;
                observable |= diff & m != 0;
            }
            prop_assert!(differs, "candidate {:?} is not distinguishable", c);
            prop_assert!(!observable, "candidate {:?} has observable divergence", c);
            prop_assert!(
                !plain.iter().any(|cl| cl.contains(&c.repr) && cl.contains(&c.member)),
                "candidate {:?} was left merged", c
            );
        }
    }
}

//! Property tests: arena-pooled buffers must be invisible to simulation
//! results — a signature table built in a recycled (dirty) arena buffer is
//! bit-identical to one built in a fresh allocation.

use proptest::prelude::*;

use parsweep_aig::Var;
use parsweep_par::Executor;
use parsweep_sim::{simulate, Patterns};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pooled_and_fresh_tables_are_bit_identical(
        pis in 1usize..8,
        ands in 1usize..120,
        words in 1usize..4,
        seed in any::<u64>(),
        threads in 1usize..4,
    ) {
        let aig = parsweep_aig::random::random_aig(pis, ands, 3, seed);
        let patterns = Patterns::random(pis, words, seed ^ 0xa5a5);

        // Warmed executor: a first run leaves a dirty table in the pool,
        // so the second run simulates into recycled memory.
        let warmed = Executor::with_threads(threads);
        drop(simulate(&aig, &warmed, &patterns));
        prop_assert!(warmed.stats().arena_misses > 0);
        let pooled = simulate(&aig, &warmed, &patterns);
        prop_assert!(
            warmed.stats().arena_hits > 0,
            "second simulation must recycle the first run's table"
        );

        // Fresh executor: nothing pooled, every buffer newly allocated.
        let fresh = Executor::with_threads(threads);
        let clean = simulate(&aig, &fresh, &patterns);

        for i in 0..aig.num_nodes() {
            let v = Var::new(i as u32);
            prop_assert_eq!(pooled.sig(v), clean.sig(v), "node {}", i);
        }
    }
}

//! Offline drop-in subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion used by `crates/bench`: named
//! benchmark groups, `bench_function`, `iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` entry points. Instead of
//! criterion's statistical analysis it runs a fixed warm-up plus a small
//! number of measured iterations and prints the mean wall-clock time.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Strategy for handing setup output to a batched benchmark routine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs: one setup per measured iteration.
    #[default]
    SmallInput,
    /// Large per-iteration inputs; treated identically to `SmallInput`.
    LargeInput,
}

/// Times closures handed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: u32) -> Self {
        Bencher {
            samples,
            elapsed: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Measures `routine` over the configured number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // One warm-up iteration, then the measured runs.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.samples as u64;
    }

    /// Measures `routine` on fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iterations += self.samples as u64;
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<N: Into<String>>(
        &mut self,
        id: N,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        let mean = if b.iterations == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iterations as u32
        };
        println!(
            "{}/{id}: {mean:?} mean over {} iters",
            self.name, b.iterations
        );
        self
    }

    /// Finishes the group (reporting is per-benchmark; this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs one named benchmark outside any group.
    pub fn bench_function<N: Into<String>>(
        &mut self,
        id: N,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions as a single runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}

//! Property-based tests of cuts and cut enumeration.

use proptest::prelude::*;

use parsweep_aig::{Lit, Var};
use parsweep_cut::{
    enumerate_cuts, select_priority_cuts, similarity, Cut, CutParams, CutScorer, Pass, MAX_CUT_SIZE,
};

fn arb_cut() -> impl Strategy<Value = Cut> {
    proptest::collection::btree_set(0u32..40, 1..=MAX_CUT_SIZE)
        .prop_map(|s| Cut::new(&s.into_iter().map(Var::new).collect::<Vec<_>>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(a in arb_cut(), b in arb_cut()) {
        prop_assert_eq!(a.merge(&b, MAX_CUT_SIZE), b.merge(&a, MAX_CUT_SIZE));
    }

    #[test]
    fn merge_result_is_superset(a in arb_cut(), b in arb_cut()) {
        if let Some(m) = a.merge(&b, MAX_CUT_SIZE) {
            prop_assert!(a.subset_of(&m));
            prop_assert!(b.subset_of(&m));
            prop_assert_eq!(m.len(), a.len() + b.len() - a.intersection_len(&b));
        } else {
            // Merge only fails when the true union is too large.
            prop_assert!(a.len() + b.len() - a.intersection_len(&b) > MAX_CUT_SIZE);
        }
    }

    #[test]
    fn merge_respects_bound(a in arb_cut(), b in arb_cut(), k in 1usize..=MAX_CUT_SIZE) {
        match a.merge(&b, k) {
            Some(m) => prop_assert!(m.len() <= k),
            None => {
                let union = a.len() + b.len() - a.intersection_len(&b);
                prop_assert!(union > k);
            }
        }
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded(a in arb_cut(), b in arb_cut()) {
        let j = a.jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - b.jaccard(&a)).abs() < 1e-12);
        prop_assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_monotone_in_set(a in arb_cut(), p in proptest::collection::vec(arb_cut(), 0..6)) {
        let mut bigger = p.clone();
        bigger.push(a);
        // Adding the cut itself adds exactly 1.0.
        prop_assert!((similarity(&a, &bigger) - similarity(&a, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumeration_respects_k_and_contains_fanin_pair(
        p0 in proptest::collection::vec(arb_cut(), 0..5),
        p1 in proptest::collection::vec(arb_cut(), 0..5),
        k in 2usize..=MAX_CUT_SIZE,
    ) {
        let f0 = Lit::new(100, false);
        let f1 = Lit::new(101, true);
        let cuts = enumerate_cuts(f0, f1, &p0, &p1, CutParams { k_l: k, c: 8 });
        prop_assert!(cuts.iter().all(|c| c.len() <= k));
        // The pair of trivial fanin cuts always fits (k >= 2).
        let base = Cut::new(&[Var::new(100), Var::new(101)]);
        prop_assert!(cuts.contains(&base));
        // No duplicates.
        for (i, c) in cuts.iter().enumerate() {
            prop_assert!(!cuts[i + 1..].contains(c));
        }
    }

    #[test]
    fn selection_returns_best_prefix(
        cands in proptest::collection::vec(arb_cut(), 1..20),
        c in 1usize..8,
    ) {
        let fanouts = vec![1u32; 64];
        let levels = vec![1u32; 64];
        let scorer = CutScorer::new(&fanouts, &levels);
        let picked = select_priority_cuts(
            cands.clone(), &scorer, Pass::Fanout, CutParams { k_l: MAX_CUT_SIZE, c }, None,
        );
        prop_assert!(picked.len() <= c.min(cands.len()));
        // Sorted best-first under the pass ordering.
        for w in picked.windows(2) {
            prop_assert_ne!(
                scorer.compare(&w[0], &w[1], Pass::Fanout),
                std::cmp::Ordering::Greater
            );
        }
    }
}

//! Priority-cut enumeration (paper Eq. 1) and common-cut generation.

use parsweep_aig::{Lit, Var};

use crate::{compare_with_similarity, Cut, CutScorer, Pass};

/// Parameters of cut enumeration: `k_l` bounds cut size, `c` bounds the
/// number of priority cuts kept per node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutParams {
    /// Maximum cut size (the paper's `k_l`, default 8).
    pub k_l: usize,
    /// Number of priority cuts per node (the paper's `C`, default 8).
    pub c: usize,
}

impl Default for CutParams {
    fn default() -> Self {
        CutParams { k_l: 8, c: 8 }
    }
}

/// Enumerates the candidate cuts of a node per Eq. (1):
/// `E(n) = { u ∪ v : u ∈ P(n0) ∪ {{n0}}, v ∈ P(n1) ∪ {{n1}}, |u ∪ v| ≤ k_l }`,
/// where `p0`/`p1` are the fanin priority-cut sets.
pub fn enumerate_cuts(
    fanin0: Lit,
    fanin1: Lit,
    p0: &[Cut],
    p1: &[Cut],
    params: CutParams,
) -> Vec<Cut> {
    let t0 = Cut::trivial(fanin0.var());
    let t1 = Cut::trivial(fanin1.var());
    let set0: Vec<&Cut> = p0.iter().chain(std::iter::once(&t0)).collect();
    let set1: Vec<&Cut> = p1.iter().chain(std::iter::once(&t1)).collect();
    let mut out: Vec<Cut> = Vec::with_capacity(set0.len() * set1.len());
    for u in &set0 {
        for v in &set1 {
            if let Some(m) = u.merge(v, params.k_l) {
                if !out.contains(&m) {
                    out.push(m);
                }
            }
        }
    }
    out
}

/// Selects the best `params.c` priority cuts from candidates using the
/// pass criteria; if `repr_cuts` is given (the node is a
/// non-representative), similarity to the representative's priority cuts
/// takes precedence (paper §III-C1).
pub fn select_priority_cuts(
    mut candidates: Vec<Cut>,
    scorer: &CutScorer<'_>,
    pass: Pass,
    params: CutParams,
    repr_cuts: Option<&[Cut]>,
) -> Vec<Cut> {
    match repr_cuts {
        Some(rc) => candidates.sort_by(|a, b| compare_with_similarity(scorer, a, b, pass, rc)),
        None => candidates.sort_by(|a, b| scorer.compare(a, b, pass)),
    }
    candidates.truncate(params.c);
    candidates
}

/// Removes dominated cuts: a cut that is a strict superset of another
/// candidate is redundant for *mapping-style* uses (anything computable
/// from the superset is computable from the subset). Note that local
/// function *checking* deliberately keeps dominated cuts — a deeper cut
/// sees different satisfiability don't-cares — so the engine does not
/// call this; the rewriting optimizer does.
pub fn filter_dominated(cuts: Vec<Cut>) -> Vec<Cut> {
    let mut keep: Vec<Cut> = Vec::with_capacity(cuts.len());
    for c in &cuts {
        let dominated = cuts.iter().any(|d| d != c && d.subset_of(c));
        if !dominated && !keep.contains(c) {
            keep.push(*c);
        }
    }
    keep
}

/// Computes the usable common cuts of a candidate pair: Eq. (1) applied to
/// the pair's priority-cut sets, *without* the trivial cuts, bounded by
/// `k_l`, deduplicated.
pub fn common_cuts(pa: &[Cut], pb: &[Cut], params: CutParams) -> Vec<Cut> {
    let mut out = Vec::new();
    for u in pa {
        for v in pb {
            if let Some(m) = u.merge(v, params.k_l) {
                if !out.contains(&m) {
                    out.push(m);
                }
            }
        }
    }
    out
}

/// Computes the enumeration level of every node (paper Eq. 2): like the
/// topological level, but a non-representative additionally depends on its
/// class representative, so that `P(repr)` exists before similarity-driven
/// selection runs for the class members.
///
/// `repr[v]` is `Some(r)` iff node `v` is a non-representative whose class
/// representative is `r`.
pub fn enumeration_levels(aig: &parsweep_aig::Aig, repr: &[Option<Var>]) -> Vec<u32> {
    let mut el = vec![0u32; aig.num_nodes()];
    for (i, node) in aig.nodes().iter().enumerate() {
        if let parsweep_aig::Node::And(a, b) = node {
            let mut l = 1 + el[a.var().index()].max(el[b.var().index()]);
            if let Some(r) = repr[i] {
                // Representatives have smaller ids, hence el[r] is final.
                l = l.max(1 + el[r.index()]);
            }
            el[i] = l;
        }
    }
    el
}

/// Groups the AND nodes to enumerate by enumeration level, optionally
/// restricted to a *live cone* (a TFI-closed, ascending node set — e.g.
/// `Aig::tfi_cone` of the undecided class members).
///
/// Cut sets are only ever read for a candidate pair's window cone, so
/// nodes outside the live cone need no cuts at all; a TFI-closed set
/// guarantees every grouped node's fanins are grouped at a lower level
/// (or are PIs), preserving the bottom-up enumeration contract.
pub fn enumeration_groups(
    aig: &parsweep_aig::Aig,
    el: &[u32],
    live_cone: Option<&[Var]>,
) -> Vec<Vec<Var>> {
    let max_el = el.iter().copied().max().unwrap_or(0) as usize;
    let mut groups: Vec<Vec<Var>> = vec![Vec::new(); max_el + 1];
    match live_cone {
        Some(cone) => {
            for &v in cone {
                if aig.node(v).is_and() {
                    groups[el[v.index()] as usize].push(v);
                }
            }
        }
        None => {
            for v in aig.and_vars() {
                groups[el[v.index()] as usize].push(v);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::Aig;

    fn cut(ids: &[u32]) -> Cut {
        Cut::new(&ids.iter().map(|&i| Var::new(i)).collect::<Vec<_>>())
    }

    #[test]
    fn enumerate_includes_trivial_combination() {
        let f0 = Lit::new(4, false);
        let f1 = Lit::new(5, true);
        let cuts = enumerate_cuts(f0, f1, &[], &[], CutParams::default());
        assert_eq!(cuts, vec![cut(&[4, 5])]);
    }

    #[test]
    fn enumerate_bounds_size() {
        let f0 = Lit::new(10, false);
        let f1 = Lit::new(11, false);
        let p0 = vec![cut(&[1, 2, 3])];
        let p1 = vec![cut(&[4, 5, 6])];
        let small = enumerate_cuts(f0, f1, &p0, &p1, CutParams { k_l: 4, c: 8 });
        // {1,2,3}∪{4,5,6} (6 leaves) is dropped; {1,2,3}∪{11}, {10}∪{4,5,6}
        // and {10,11} survive.
        assert_eq!(small.len(), 3);
        assert!(small.contains(&cut(&[1, 2, 3, 11])));
        assert!(small.contains(&cut(&[4, 5, 6, 10])));
        assert!(small.contains(&cut(&[10, 11])));
    }

    #[test]
    fn enumerate_dedups() {
        let f0 = Lit::new(10, false);
        let f1 = Lit::new(11, false);
        let shared = cut(&[1, 2]);
        let p0 = vec![shared];
        let p1 = vec![shared];
        let cuts = enumerate_cuts(f0, f1, &p0, &p1, CutParams::default());
        let n = cuts.iter().filter(|c| **c == shared).count();
        assert_eq!(n, 1);
    }

    #[test]
    fn selection_truncates_to_c() {
        let fanouts = vec![1u32; 20];
        let levels = vec![1u32; 20];
        let scorer = CutScorer::new(&fanouts, &levels);
        let candidates: Vec<Cut> = (1..10u32).map(|i| cut(&[i, i + 1])).collect();
        let picked = select_priority_cuts(
            candidates,
            &scorer,
            Pass::Fanout,
            CutParams { k_l: 8, c: 3 },
            None,
        );
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn selection_with_similarity_prefers_overlap() {
        let fanouts = vec![1u32; 20];
        let levels = vec![1u32; 20];
        let scorer = CutScorer::new(&fanouts, &levels);
        let repr_cuts = vec![cut(&[7, 8])];
        let picked = select_priority_cuts(
            vec![cut(&[1, 2]), cut(&[7, 8]), cut(&[8, 9])],
            &scorer,
            Pass::Fanout,
            CutParams { k_l: 8, c: 2 },
            Some(&repr_cuts),
        );
        assert_eq!(picked[0], cut(&[7, 8]));
        assert_eq!(picked[1], cut(&[8, 9]));
    }

    #[test]
    fn common_cuts_exclude_oversize() {
        let pa = vec![cut(&[1, 2, 3, 4])];
        let pb = vec![cut(&[5, 6, 7, 8])];
        assert!(common_cuts(&pa, &pb, CutParams { k_l: 6, c: 8 }).is_empty());
        let both = common_cuts(&pa, &pa, CutParams { k_l: 6, c: 8 });
        assert_eq!(both, vec![cut(&[1, 2, 3, 4])]);
    }

    #[test]
    fn filter_dominated_removes_supersets() {
        let cuts = vec![cut(&[1, 2]), cut(&[1, 2, 3]), cut(&[4, 5]), cut(&[4, 5])];
        let kept = filter_dominated(cuts);
        assert_eq!(kept, vec![cut(&[1, 2]), cut(&[4, 5])]);
    }

    #[test]
    fn filter_dominated_keeps_incomparable_cuts() {
        let cuts = vec![cut(&[1, 2]), cut(&[2, 3]), cut(&[3, 4])];
        assert_eq!(filter_dominated(cuts.clone()), cuts);
    }

    #[test]
    fn enumeration_levels_account_for_representatives() {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let f = aig.and(xs[0], xs[1]); // plain level 1
        let g = aig.and(f, xs[0]); // level 2
        let mut repr = vec![None; aig.num_nodes()];
        // Pretend g's representative is f.
        repr[g.var().index()] = Some(f.var());
        let el = enumeration_levels(&aig, &repr);
        assert_eq!(el[f.var().index()], 1);
        // Without repr, el(g) = 2; repr dependency 1 + el(f) = 2; max = 2.
        assert_eq!(el[g.var().index()], 2);
        // Now pretend f's representative is a PI (el 0): unchanged.
        let mut repr2 = vec![None; aig.num_nodes()];
        repr2[f.var().index()] = Some(xs[0].var());
        let el2 = enumeration_levels(&aig, &repr2);
        assert_eq!(el2[f.var().index()], 1);
    }
}

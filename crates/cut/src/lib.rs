//! # parsweep-cut — cut enumeration substrate
//!
//! Local function checking (paper §III-C) needs, for every candidate pair
//! of nodes, *multiple common cuts* of bounded size. This crate provides
//! the cut machinery: a fixed-capacity [`Cut`] type, priority-cut
//! enumeration per the paper's Eq. (1), the three-pass selection criteria
//! of Table I (plus the similarity metric that aligns the cuts of a
//! non-representative with its class representative), common-cut
//! generation for pairs, and the enumeration levels of Eq. (2) that order
//! the level-parallel cut generation. The [`CutKernel`] runs that
//! generation level-parallel on the device runtime.
//!
//! ```
//! use parsweep_cut::{Cut, CutParams, enumerate_cuts};
//! use parsweep_aig::{Lit, Var};
//! // A node with fanins v4 and v5 whose fanins have no priority cuts yet
//! // gets exactly the cut {v4, v5}.
//! let cuts = enumerate_cuts(Lit::new(4, false), Lit::new(5, true), &[], &[],
//!                           CutParams::default());
//! assert_eq!(cuts, vec![Cut::new(&[Var::new(4), Var::new(5)])]);
//! ```

#![warn(missing_docs)]

mod criteria;
mod cut;
mod enumerate;
mod kernel;

pub use criteria::{compare_with_similarity, similarity, CutMetrics, CutScorer, Pass};
pub use cut::{Cut, MAX_CUT_SIZE};
pub use enumerate::{
    common_cuts, enumerate_cuts, enumeration_groups, enumeration_levels, filter_dominated,
    select_priority_cuts, CutParams,
};
pub use kernel::CutKernel;

//! Level-parallel priority-cut computation on the device runtime.
//!
//! The paper computes `P(n)` for all nodes of one enumeration level as a
//! single GPU kernel (Algorithm 2 line 7). [`CutKernel`] packages the
//! read-only kernel state (network, representative map, scorer, selection
//! parameters) once per pass; [`CutKernel::compute_level`] then queues one
//! launch per enumeration level on a [`parsweep_par::Stream`], writing the
//! selected priority cuts into the caller's cut-set table.

use parsweep_aig::{Aig, Node, Var};
use parsweep_par::{Effect, EffectTable, Executor, Pattern};

use crate::{enumerate_cuts, select_priority_cuts, Cut, CutParams, CutScorer, Pass};

/// Read-only state of the priority-cut kernel for one selection pass.
pub struct CutKernel<'a> {
    aig: &'a Aig,
    repr_map: &'a [Option<Var>],
    similarity: bool,
    scorer: CutScorer<'a>,
    params: CutParams,
    pass: Pass,
}

impl<'a> CutKernel<'a> {
    /// Builds the kernel state.
    ///
    /// `repr_map[v]` names the class representative of a non-representative
    /// node `v`; when `similarity` is set, a member's cut selection aligns
    /// with its representative's priority cuts (paper §III-C1).
    pub fn new(
        aig: &'a Aig,
        repr_map: &'a [Option<Var>],
        similarity: bool,
        scorer: CutScorer<'a>,
        params: CutParams,
        pass: Pass,
    ) -> Self {
        CutKernel {
            aig,
            repr_map,
            similarity,
            scorer,
            params,
            pass,
        }
    }

    /// Computes the priority-cut sets of every AND node in `group` (one
    /// enumeration level) in parallel, writing into `cut_sets`.
    ///
    /// All fanins and representatives of `group` members must already have
    /// their slots written (they sit at strictly smaller enumeration
    /// levels, so level-order calls guarantee this).
    ///
    /// # Panics
    ///
    /// Panics if a member of `group` is not an AND node.
    pub fn compute_level(&self, exec: &Executor, group: &[Var], cut_sets: &mut [Vec<Cut>]) {
        // Declared effects: task t reads fanin / representative slots
        // (strictly lower enumeration levels, written before this call)
        // and writes only its own node's slot — data-dependent disjoint
        // chunks over the whole table. Statically verified, so the
        // launch runs the parallel fast path even when sanitizing.
        let table = EffectTable::new();
        let sets_buf = table.buffer("cut.kernel.sets", cut_sets.len());
        let all = Pattern::Indexed {
            lo: 0,
            hi: cut_sets.len(),
        };
        let effects = [Effect::read(sets_buf, all), Effect::write(sets_buf, all)];
        let cells = exec.bind_table(&table, sets_buf, cut_sets);
        let cells = &cells;
        let mut stream = exec.stream();
        stream.launch_declared(
            &table,
            "cut.kernel.level",
            group.len(),
            &effects,
            move |t| {
                let v = group[t];
                let Node::And(a, b) = self.aig.node(v) else {
                    unreachable!("groups contain AND nodes only");
                };
                // SAFETY: fanins and representatives have strictly smaller
                // enumeration levels, so their slots were written by earlier
                // launches; this task writes only slot v.
                let p0: &Vec<Cut> = unsafe { cells.get_ref(t, a.var().index()) };
                // SAFETY: as above.
                let p1: &Vec<Cut> = unsafe { cells.get_ref(t, b.var().index()) };
                let candidates = enumerate_cuts(a, b, p0, p1, self.params);
                let repr_cuts: Option<&Vec<Cut>> = self.repr_map[v.index()].and_then(|r| {
                    if self.similarity && !r.is_const() {
                        // SAFETY: representatives sit at strictly smaller
                        // enumeration levels, written by earlier launches.
                        Some(unsafe { cells.get_ref(t, r.index()) })
                    } else {
                        None
                    }
                });
                let selected = select_priority_cuts(
                    candidates,
                    &self.scorer,
                    self.pass,
                    self.params,
                    repr_cuts.map(|c| c.as_slice()),
                );
                // SAFETY: this task writes only slot v; no other task in this
                // launch touches v.
                unsafe { cells.write(t, v.index(), selected) };
            },
        );
        stream.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: sequential cut computation for one node.
    fn sequential_cuts(
        aig: &Aig,
        scorer: &CutScorer<'_>,
        pass: Pass,
        params: CutParams,
        cut_sets: &[Vec<Cut>],
        v: Var,
    ) -> Vec<Cut> {
        let Node::And(a, b) = aig.node(v) else {
            panic!("not an AND");
        };
        let candidates = enumerate_cuts(
            a,
            b,
            &cut_sets[a.var().index()],
            &cut_sets[b.var().index()],
            params,
        );
        select_priority_cuts(candidates, scorer, pass, params, None)
    }

    #[test]
    fn kernel_matches_sequential_reference() {
        let aig = parsweep_aig::random::random_aig(5, 40, 3, 21);
        let exec = Executor::with_threads(2);
        let fanouts = aig.fanout_counts();
        let levels = aig.levels();
        let params = CutParams::default();
        let repr_map: Vec<Option<Var>> = vec![None; aig.num_nodes()];
        let groups = {
            let max = levels.iter().copied().max().unwrap_or(0) as usize;
            let mut g: Vec<Vec<Var>> = vec![Vec::new(); max + 1];
            for v in aig.and_vars() {
                g[levels[v.index()] as usize].push(v);
            }
            g
        };

        let seed = |sets: &mut [Vec<Cut>]| {
            for &pi in aig.pis() {
                sets[pi.index()] = vec![Cut::trivial(pi)];
            }
        };

        // Kernel path.
        let mut kernel_sets: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
        seed(&mut kernel_sets);
        let scorer = CutScorer::new(&fanouts, &levels);
        let kernel = CutKernel::new(&aig, &repr_map, false, scorer, params, Pass::Fanout);
        for group in groups.iter().skip(1) {
            kernel.compute_level(&exec, group, &mut kernel_sets);
        }

        // Sequential reference path.
        let mut ref_sets: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
        seed(&mut ref_sets);
        let scorer = CutScorer::new(&fanouts, &levels);
        for group in groups.iter().skip(1) {
            for &v in group {
                ref_sets[v.index()] =
                    sequential_cuts(&aig, &scorer, Pass::Fanout, params, &ref_sets, v);
            }
        }

        assert_eq!(kernel_sets, ref_sets);
        assert!(exec.stats().total_launches() > 0);
    }

    #[test]
    fn kernel_is_statically_verified_on_sanitizing_executor() {
        let aig = parsweep_aig::random::random_aig(4, 30, 3, 5);
        let exec = Executor::with_sanitizer(2);
        let fanouts = aig.fanout_counts();
        let levels = aig.levels();
        let params = CutParams::default();
        let repr_map: Vec<Option<Var>> = vec![None; aig.num_nodes()];
        let mut sets: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
        for &pi in aig.pis() {
            sets[pi.index()] = vec![Cut::trivial(pi)];
        }
        let scorer = CutScorer::new(&fanouts, &levels);
        let kernel = CutKernel::new(&aig, &repr_map, false, scorer, params, Pass::Fanout);
        let max = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut groups: Vec<Vec<Var>> = vec![Vec::new(); max + 1];
        for v in aig.and_vars() {
            groups[levels[v.index()] as usize].push(v);
        }
        for group in groups.iter().skip(1) {
            kernel.compute_level(&exec, group, &mut sets);
        }
        assert!(exec.take_reports().is_empty());
        // Ambient PARSWEEP_SANITIZE=all forces cross-check mode, where
        // declared launches deliberately run sanitized instead.
        if !exec.cross_checking() {
            assert!(
                exec.stats().static_verified_launches > 0,
                "declared cut launches must take the verified fast path"
            );
        }
    }
}

//! Cut selection criteria (paper Table I) and the cut similarity metric.
//!
//! Three metrics are traded off: average fanout of the cut nodes (large is
//! good — classic cutpoint heuristic), cut size (small is good) and average
//! level of cut nodes (small includes more logic / fewer SDCs, but large
//! can capture local restructurings). Three passes prioritize them
//! differently to diversify the generated cuts.

use std::cmp::Ordering;

use crate::Cut;

/// Which cut generation and checking pass is running (Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Pass 1: fanout (max), then cut size (min), then level (min).
    Fanout,
    /// Pass 2: level (min), then cut size (min), then fanout (max).
    SmallLevel,
    /// Pass 3: level (max), then cut size (min), then fanout (max).
    LargeLevel,
}

impl Pass {
    /// All passes in paper order.
    pub const ALL: [Pass; 3] = [Pass::Fanout, Pass::SmallLevel, Pass::LargeLevel];
}

/// Precomputed per-node data needed to score cuts.
#[derive(Clone, Debug)]
pub struct CutScorer<'a> {
    fanouts: &'a [u32],
    levels: &'a [u32],
}

/// The metrics of one cut, used for selection ordering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutMetrics {
    /// Average fanout count over the cut leaves.
    pub avg_fanout: f64,
    /// Number of leaves.
    pub size: usize,
    /// Average level over the cut leaves.
    pub avg_level: f64,
}

impl<'a> CutScorer<'a> {
    /// Creates a scorer from the network's fanout counts and levels
    /// (indexed by variable).
    pub fn new(fanouts: &'a [u32], levels: &'a [u32]) -> Self {
        CutScorer { fanouts, levels }
    }

    /// Computes the metrics of a cut.
    pub fn metrics(&self, cut: &Cut) -> CutMetrics {
        let n = cut.len().max(1) as f64;
        let mut fanout = 0.0;
        let mut level = 0.0;
        for v in cut.iter() {
            fanout += self.fanouts[v.index()] as f64;
            level += self.levels[v.index()] as f64;
        }
        CutMetrics {
            avg_fanout: fanout / n,
            size: cut.len(),
            avg_level: level / n,
        }
    }

    /// Compares two cuts under a pass's criteria; `Ordering::Less` means
    /// `a` is *better* than `b` (sort ascending, best first).
    pub fn compare(&self, a: &Cut, b: &Cut, pass: Pass) -> Ordering {
        let (ma, mb) = (self.metrics(a), self.metrics(b));
        match pass {
            Pass::Fanout => cmp_desc(ma.avg_fanout, mb.avg_fanout)
                .then(ma.size.cmp(&mb.size))
                .then(cmp_asc(ma.avg_level, mb.avg_level)),
            Pass::SmallLevel => cmp_asc(ma.avg_level, mb.avg_level)
                .then(ma.size.cmp(&mb.size))
                .then(cmp_desc(ma.avg_fanout, mb.avg_fanout)),
            Pass::LargeLevel => cmp_desc(ma.avg_level, mb.avg_level)
                .then(ma.size.cmp(&mb.size))
                .then(cmp_desc(ma.avg_fanout, mb.avg_fanout)),
        }
        // Final deterministic tie-breaker: leaf lists.
        .then_with(|| a.leaves().cmp(b.leaves()))
    }
}

fn cmp_asc(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

fn cmp_desc(a: f64, b: f64) -> Ordering {
    b.partial_cmp(&a).unwrap_or(Ordering::Equal)
}

/// The similarity of a cut to a set of priority cuts (paper §III-C1):
/// `s(c, P) = Σ_{c' ∈ P} |c ∩ c'| / |c ∪ c'|`.
pub fn similarity(cut: &Cut, priority: &[Cut]) -> f64 {
    priority.iter().map(|p| cut.jaccard(p)).sum()
}

/// Compares two cuts for a *non-representative* node: higher similarity to
/// the representative's priority cuts wins; ties fall back to the pass
/// criteria.
pub fn compare_with_similarity(
    scorer: &CutScorer<'_>,
    a: &Cut,
    b: &Cut,
    pass: Pass,
    repr_cuts: &[Cut],
) -> Ordering {
    cmp_desc(similarity(a, repr_cuts), similarity(b, repr_cuts))
        .then_with(|| scorer.compare(a, b, pass))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::Var;

    fn cut(ids: &[u32]) -> Cut {
        Cut::new(&ids.iter().map(|&i| Var::new(i)).collect::<Vec<_>>())
    }

    #[test]
    fn pass1_prefers_high_fanout() {
        let fanouts = [0, 10, 1, 1];
        let levels = [0, 1, 1, 1];
        let s = CutScorer::new(&fanouts, &levels);
        let hi = cut(&[1]);
        let lo = cut(&[2]);
        assert_eq!(s.compare(&hi, &lo, Pass::Fanout), Ordering::Less);
    }

    #[test]
    fn pass1_ties_break_on_size_then_level() {
        let fanouts = [0, 2, 2, 2, 2];
        let levels = [0, 1, 1, 5, 5];
        let s = CutScorer::new(&fanouts, &levels);
        // Same avg fanout; smaller cut wins.
        let small = cut(&[1]);
        let big = cut(&[1, 2]);
        assert_eq!(s.compare(&small, &big, Pass::Fanout), Ordering::Less);
        // Same fanout and size; smaller level wins in pass 1.
        let low = cut(&[1, 2]);
        let high = cut(&[3, 4]);
        assert_eq!(s.compare(&low, &high, Pass::Fanout), Ordering::Less);
    }

    #[test]
    fn pass2_and_pass3_are_level_opposites() {
        let fanouts = [0, 1, 1];
        let levels = [0, 1, 9];
        let s = CutScorer::new(&fanouts, &levels);
        let low = cut(&[1]);
        let high = cut(&[2]);
        assert_eq!(s.compare(&low, &high, Pass::SmallLevel), Ordering::Less);
        assert_eq!(s.compare(&high, &low, Pass::LargeLevel), Ordering::Less);
    }

    #[test]
    fn similarity_sums_jaccard() {
        let p = vec![cut(&[1, 2]), cut(&[2, 3])];
        let c = cut(&[2, 3]);
        // j({2,3},{1,2}) = 1/3, j({2,3},{2,3}) = 1.
        assert!((similarity(&c, &p) - (1.0 / 3.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn similarity_dominates_pass_criteria() {
        let fanouts = [0, 100, 1, 1, 1];
        let levels = [0, 0, 0, 0, 0];
        let s = CutScorer::new(&fanouts, &levels);
        let repr = vec![cut(&[3, 4])];
        let similar = cut(&[3, 4]);
        let good_metrics = cut(&[1]);
        assert_eq!(
            compare_with_similarity(&s, &similar, &good_metrics, Pass::Fanout, &repr),
            Ordering::Less
        );
    }

    #[test]
    fn ordering_is_deterministic_total() {
        let fanouts = [0, 1, 1, 1];
        let levels = [0, 2, 2, 2];
        let s = CutScorer::new(&fanouts, &levels);
        let a = cut(&[1, 2]);
        let b = cut(&[1, 3]);
        // Identical metrics: leaf order decides.
        assert_eq!(s.compare(&a, &b, Pass::Fanout), Ordering::Less);
        assert_eq!(s.compare(&b, &a, Pass::Fanout), Ordering::Greater);
        assert_eq!(s.compare(&a, &a, Pass::Fanout), Ordering::Equal);
    }
}

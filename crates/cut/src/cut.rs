//! Cuts: bounded sets of nodes through which every root-to-PI path passes.

use std::fmt;

use parsweep_aig::Var;

/// Hard upper bound on cut size supported by the fixed-capacity [`Cut`]
/// representation. The paper uses `k_l = 8`; 12 leaves leave headroom for
/// experiments.
pub const MAX_CUT_SIZE: usize = 12;

/// A cut: a sorted set of at most [`MAX_CUT_SIZE`] leaf variables, plus a
/// 64-bit signature for fast overlap pre-checks.
///
/// ```
/// use parsweep_cut::Cut;
/// use parsweep_aig::Var;
/// let a = Cut::new(&[Var::new(1), Var::new(3)]);
/// let b = Cut::new(&[Var::new(3), Var::new(5)]);
/// let merged = a.merge(&b, 4).unwrap();
/// assert_eq!(merged.len(), 3);
/// assert!(a.merge(&b, 2).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: [u32; MAX_CUT_SIZE],
    len: u8,
    sig: u64,
}

impl Cut {
    /// Creates a cut from leaves (sorted and deduplicated internally).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CUT_SIZE`] distinct leaves are given.
    pub fn new(leaves: &[Var]) -> Self {
        let mut sorted: Vec<u32> = leaves.iter().map(|v| v.index() as u32).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() <= MAX_CUT_SIZE, "cut exceeds MAX_CUT_SIZE");
        let mut arr = [0u32; MAX_CUT_SIZE];
        arr[..sorted.len()].copy_from_slice(&sorted);
        let mut cut = Cut {
            leaves: arr,
            len: sorted.len() as u8,
            sig: 0,
        };
        cut.sig = cut.compute_sig();
        cut
    }

    /// The trivial cut `{n}`.
    pub fn trivial(n: Var) -> Self {
        Cut::new(&[n])
    }

    fn compute_sig(&self) -> u64 {
        self.iter().fold(0u64, |s, v| s | 1u64 << (v.index() % 64))
    }

    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the (impossible in practice) empty cut.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The leaves in increasing variable order.
    #[inline]
    pub fn leaves(&self) -> &[u32] {
        &self.leaves[..self.len as usize]
    }

    /// Iterates over the leaves as variables.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.leaves().iter().map(|&v| Var::new(v))
    }

    /// The leaves as a vector of variables.
    ///
    /// **Sorted invariant:** strictly ascending and deduplicated (cuts
    /// store their leaves sorted), so callers can hand the list to
    /// sorted-input consumers — e.g. simulation windows — without
    /// re-sorting.
    pub fn to_vars(&self) -> Vec<Var> {
        self.iter().collect()
    }

    /// True if `v` is a leaf of this cut.
    pub fn contains(&self, v: Var) -> bool {
        self.leaves().binary_search(&(v.index() as u32)).is_ok()
    }

    /// Merges two cuts; `None` if the union exceeds `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > MAX_CUT_SIZE`.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        assert!(k <= MAX_CUT_SIZE, "k exceeds MAX_CUT_SIZE");
        // Signature pre-check: union popcount is a lower bound.
        if (self.sig | other.sig).count_ones() as usize > k {
            return None;
        }
        let (a, b) = (self.leaves(), other.leaves());
        let mut out = [0u32; MAX_CUT_SIZE];
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < a.len() || j < b.len() {
            let v = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
                if j < b.len() && a[i] == b[j] {
                    j += 1;
                }
                let v = a[i];
                i += 1;
                v
            } else {
                let v = b[j];
                j += 1;
                v
            };
            if n == k {
                return None;
            }
            out[n] = v;
            n += 1;
        }
        let mut cut = Cut {
            leaves: out,
            len: n as u8,
            sig: self.sig | other.sig,
        };
        cut.sig = cut.compute_sig();
        Some(cut)
    }

    /// True if every leaf of `self` is a leaf of `other` (i.e. `self`
    /// dominates `other`).
    pub fn subset_of(&self, other: &Cut) -> bool {
        if self.sig & !other.sig != 0 || self.len > other.len {
            return false;
        }
        self.leaves()
            .iter()
            .all(|&v| other.leaves().binary_search(&v).is_ok())
    }

    /// Size of the intersection with `other`.
    pub fn intersection_len(&self, other: &Cut) -> usize {
        let (a, b) = (self.leaves(), other.leaves());
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Jaccard similarity `|a ∩ b| / |a ∪ b|` with another cut.
    pub fn jaccard(&self, other: &Cut) -> f64 {
        let inter = self.intersection_len(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

impl fmt::Debug for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cut{{")?;
        for (i, v) in self.leaves().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "v{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(ids: &[u32]) -> Vec<Var> {
        ids.iter().map(|&i| Var::new(i)).collect()
    }

    #[test]
    fn new_sorts_and_dedups() {
        let c = Cut::new(&vs(&[5, 1, 3, 1]));
        assert_eq!(c.leaves(), &[1, 3, 5]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn merge_unions_leaves() {
        let a = Cut::new(&vs(&[1, 2, 3]));
        let b = Cut::new(&vs(&[3, 4]));
        let m = a.merge(&b, 4).unwrap();
        assert_eq!(m.leaves(), &[1, 2, 3, 4]);
        assert!(a.merge(&b, 3).is_none());
    }

    #[test]
    fn merge_identical_is_identity() {
        let a = Cut::new(&vs(&[2, 7]));
        assert_eq!(a.merge(&a, 2).unwrap(), a);
    }

    #[test]
    fn subset_detection() {
        let a = Cut::new(&vs(&[1, 3]));
        let b = Cut::new(&vs(&[1, 2, 3]));
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(a.subset_of(&a));
    }

    #[test]
    fn jaccard_similarity() {
        let a = Cut::new(&vs(&[1, 2]));
        let b = Cut::new(&vs(&[2, 3]));
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-9);
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-9);
        let c = Cut::new(&vs(&[8, 9]));
        assert_eq!(a.jaccard(&c), 0.0);
    }

    #[test]
    fn contains_checks_membership() {
        let a = Cut::new(&vs(&[1, 64, 65]));
        assert!(a.contains(Var::new(64)));
        assert!(!a.contains(Var::new(2)));
        // 1 and 65 collide in the signature; membership must still be exact.
        assert!(!a.contains(Var::new(129)));
    }

    #[test]
    fn trivial_cut() {
        let t = Cut::trivial(Var::new(9));
        assert_eq!(t.len(), 1);
        assert!(t.contains(Var::new(9)));
    }
}

//! Behavioural tests of the engine's phase thresholds: the two-level PO
//! budget (k_P / k_p), the global support bound (k_g) and the repeated
//! local phases.

use parsweep_aig::{Aig, Lit};
use parsweep_core::{sim_sweep, EngineConfig, Verdict};
use parsweep_par::Executor;

fn exec() -> Executor {
    Executor::with_threads(1)
}

/// Builds a miter-shaped AIG with two constant-zero POs: one over `w1`
/// PIs, one over `w2` PIs (each PO XORs two different builds of the same
/// AND tree).
fn two_po_miter(w1: usize, w2: usize) -> Aig {
    let mut aig = Aig::new();
    let xs = aig.add_inputs(w1 + w2);
    let build_pair = |aig: &mut Aig, lits: &[Lit]| {
        let balanced = aig.and_all(lits.to_vec());
        let mut chain = lits[lits.len() - 1];
        for &l in lits[..lits.len() - 1].iter().rev() {
            chain = aig.and(l, chain);
        }
        aig.xor(balanced, chain)
    };
    let po1 = build_pair(&mut aig, &xs[..w1]);
    let po2 = build_pair(&mut aig, &xs[w1..]);
    aig.add_po(po1);
    aig.add_po(po2);
    aig
}

#[test]
fn one_shot_po_checking_when_everything_fits() {
    let m = two_po_miter(6, 10);
    let cfg = EngineConfig {
        k_po_all: 12,
        k_po: 8,
        ..EngineConfig::default()
    };
    let r = sim_sweep(&m, &exec(), &cfg);
    assert_eq!(r.verdict, Verdict::Equivalent);
    // Both POs fit k_P: one-shot PO checking proves both.
    assert_eq!(r.stats.pos_proved, 2, "stats: {:?}", r.stats);
}

#[test]
fn two_threshold_fallback_when_one_po_is_too_wide() {
    let m = two_po_miter(6, 10);
    // k_P = 9 excludes the 10-input PO, so only POs within k_p = 8 are
    // simulatable in the P phase; the wide PO falls to later phases.
    let cfg = EngineConfig {
        k_po_all: 9,
        k_po: 8,
        ..EngineConfig::default()
    };
    let r = sim_sweep(&m, &exec(), &cfg);
    assert_eq!(r.stats.pos_proved, 1, "stats: {:?}", r.stats);
    // The engine still finishes the job via G/L phases.
    assert_eq!(r.verdict, Verdict::Equivalent);
}

#[test]
fn po_phase_disabled_entirely() {
    let m = two_po_miter(6, 6);
    let cfg = EngineConfig {
        k_po_all: 0,
        k_po: 0,
        ..EngineConfig::default()
    };
    let r = sim_sweep(&m, &exec(), &cfg);
    assert_eq!(r.stats.pos_proved, 0);
    assert_eq!(r.verdict, Verdict::Equivalent, "G/L phases must cover");
}

#[test]
fn global_bound_steers_pairs_to_local_checking() {
    // With k_g = 0 nothing is globally checkable; local checking and the
    // PO phase must carry the proof.
    let m = two_po_miter(5, 7);
    let cfg = EngineConfig {
        k_g: 0,
        ..EngineConfig::default()
    };
    let r = sim_sweep(&m, &exec(), &cfg);
    assert_eq!(r.verdict, Verdict::Equivalent);
}

#[test]
fn repeated_local_phases_walk_a_carry_chain() {
    // Deep ripple vs majority adder: each local phase merges roughly one
    // more carry level, so few phases leave the miter unproved while the
    // full budget proves it.
    let adder = |majority: bool| {
        let w = 16;
        let mut aig = Aig::new();
        let a = aig.add_inputs(w);
        let b = aig.add_inputs(w);
        let mut carry = Lit::FALSE;
        for i in 0..w {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            carry = if majority {
                aig.maj3(a[i], b[i], carry)
            } else {
                let g = aig.and(a[i], b[i]);
                let p = aig.and(axb, carry);
                aig.or(g, p)
            };
            aig.add_po(sum);
        }
        aig.add_po(carry);
        aig
    };
    let m = parsweep_aig::miter(&adder(false), &adder(true)).unwrap();
    // Disable P and G so only local phases can make progress.
    let starved = EngineConfig {
        k_po_all: 4,
        k_po: 4,
        k_g: 4,
        max_local_phases: 2,
        ..EngineConfig::default()
    };
    let r2 = sim_sweep(&m, &exec(), &starved);
    let full = EngineConfig {
        k_po_all: 4,
        k_po: 4,
        k_g: 4,
        max_local_phases: 64,
        ..EngineConfig::default()
    };
    let r64 = sim_sweep(&m, &exec(), &full);
    assert_eq!(r64.verdict, Verdict::Equivalent, "stats: {:?}", r64.stats);
    assert!(
        r64.stats.local_phases > r2.stats.local_phases,
        "chain proving needs repeated phases: {:?} vs {:?}",
        r64.stats.local_phases,
        r2.stats.local_phases
    );
}

//! Property-based tests: cancelling the engine can cost completeness,
//! never soundness.
//!
//! Whatever the token does — already tripped at entry, tripping on a
//! deadline mid-run, or never tripping — a verdict the engine *does*
//! return must be correct against brute-force evaluation, and the
//! submitted miter must come back structurally untouched.

use std::time::Duration;

use proptest::prelude::*;

use parsweep_aig::{miter, random::random_aig, Aig};
use parsweep_core::{
    combined_check_cancellable, sim_sweep_cancellable, CombinedConfig, EngineConfig, ProverMode,
};
use parsweep_par::{CancelToken, Executor};
use parsweep_sat::Verdict;

/// Brute-force miter check: constant-zero on every input assignment.
fn brute_equivalent(m: &Aig) -> bool {
    let pis = m.num_pis();
    assert!(pis <= 12, "brute force only for small miters");
    (0..1u32 << pis).all(|mask| {
        let inputs: Vec<bool> = (0..pis).map(|i| mask >> i & 1 == 1).collect();
        m.eval(&inputs).iter().all(|&po| !po)
    })
}

/// Soundness of a (possibly partial) verdict, plus miter preservation.
fn assert_sound(m: &Aig, before: &Aig, verdict: &Verdict) {
    match verdict {
        Verdict::Equivalent => {
            prop_assert!(brute_equivalent(m), "cancelled run claimed a wrong proof");
        }
        Verdict::NotEquivalent(cex) => {
            prop_assert!(cex.fires(m), "cancelled run fabricated a counter-example");
        }
        Verdict::Undecided => {}
    }
    prop_assert!(m.same_structure(before), "engine modified the miter");
    prop_assert_eq!(m.pos(), before.pos(), "engine rewired the outputs");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A token that is already tripped at entry: the engine must return
    /// promptly with `Undecided` for anything it did not get to prove —
    /// and must never guess.
    #[test]
    fn pre_cancelled_run_is_sound(seed in any::<u64>(), pis in 2usize..7, ands in 2usize..40) {
        let a = random_aig(pis, ands, 2, seed);
        let b = random_aig(pis, ands, 2, seed.wrapping_add(1));
        let m = miter(&a, &b).unwrap();
        let before = m.clone();
        let exec = Executor::new();
        let token = CancelToken::new();
        token.cancel();
        let result = sim_sweep_cancellable(&m, &exec, &EngineConfig::default(), &token);
        prop_assert!(result.stats.cancelled);
        assert_sound(&m, &before, &result.verdict);
    }

    /// A deadline that may trip anywhere inside the run (including not at
    /// all): every outcome must still be sound.
    #[test]
    fn deadline_run_is_sound(
        seed in any::<u64>(),
        pis in 2usize..7,
        ands in 2usize..40,
        deadline_us in 0u64..2000,
    ) {
        let a = random_aig(pis, ands, 2, seed);
        let b = random_aig(pis, ands, 2, seed.wrapping_add(1));
        let m = miter(&a, &b).unwrap();
        let before = m.clone();
        let exec = Executor::new();
        let token = CancelToken::with_deadline(Duration::from_micros(deadline_us));
        let result = sim_sweep_cancellable(&m, &exec, &EngineConfig::default(), &token);
        assert_sound(&m, &before, &result.verdict);
        // An uncancelled run on these tiny miters always decides; an
        // Undecided verdict is only ever the price of the deadline.
        if matches!(result.verdict, Verdict::Undecided) {
            prop_assert!(result.stats.cancelled, "Undecided without a tripped token");
        }
    }

    /// The same miter with a never-tripping token decides exactly like the
    /// deadline-free entry point — cancellation support costs nothing when
    /// unused.
    #[test]
    fn never_cancelled_run_decides(seed in any::<u64>(), pis in 2usize..7, ands in 2usize..40) {
        let a = random_aig(pis, ands, 2, seed);
        let b = random_aig(pis, ands, 2, seed.wrapping_add(1));
        let m = miter(&a, &b).unwrap();
        let before = m.clone();
        let exec = Executor::new();
        let token = CancelToken::never();
        let result = sim_sweep_cancellable(&m, &exec, &EngineConfig::default(), &token);
        prop_assert!(!result.stats.cancelled);
        prop_assert!(
            !matches!(result.verdict, Verdict::Undecided),
            "engine left a tiny miter undecided without cancellation"
        );
        assert_sound(&m, &before, &result.verdict);
    }

    /// The adaptive combined flow under a deadline that may trip anywhere
    /// — during simulation, mid-dispatch, or inside a concurrent engine
    /// race. Per-cone dispatch with early-cancel must uphold the same
    /// contract as the plain engine: partial, never wrong.
    #[test]
    fn adaptive_deadline_run_is_sound(
        seed in any::<u64>(),
        pis in 2usize..7,
        ands in 2usize..40,
        deadline_us in 0u64..2000,
    ) {
        let a = random_aig(pis, ands, 2, seed);
        let b = random_aig(pis, ands, 2, seed.wrapping_add(1));
        let m = miter(&a, &b).unwrap();
        let before = m.clone();
        let exec = Executor::new();
        let cfg = CombinedConfig {
            prover: ProverMode::Adaptive,
            ..CombinedConfig::default()
        };
        let token = CancelToken::with_deadline(Duration::from_micros(deadline_us));
        let result = combined_check_cancellable(&m, &exec, &cfg, &token);
        assert_sound(&m, &before, &result.verdict);
    }

    /// With a never-tripping token, the adaptive combined flow reaches
    /// the same verdict as the sequential (compatibility) one on every
    /// random miter — the dispatcher changes routing, not answers.
    #[test]
    fn adaptive_combined_agrees_with_sequential(
        seed in any::<u64>(),
        pis in 2usize..7,
        ands in 2usize..40,
    ) {
        let a = random_aig(pis, ands, 2, seed);
        let b = random_aig(pis, ands, 2, seed.wrapping_add(1));
        let m = miter(&a, &b).unwrap();
        let before = m.clone();
        let exec = Executor::new();
        let sequential = combined_check_cancellable(
            &m,
            &exec,
            &CombinedConfig::default(),
            &CancelToken::never(),
        );
        let adaptive = combined_check_cancellable(
            &m,
            &exec,
            &CombinedConfig {
                prover: ProverMode::Adaptive,
                ..CombinedConfig::default()
            },
            &CancelToken::never(),
        );
        prop_assert_eq!(
            sequential.verdict.is_equivalent(),
            adaptive.verdict.is_equivalent(),
            "sequential {:?} vs adaptive {:?}",
            sequential.verdict,
            adaptive.verdict
        );
        prop_assert!(
            !matches!(adaptive.verdict, Verdict::Undecided),
            "adaptive flow left a tiny miter undecided without cancellation"
        );
        assert_sound(&m, &before, &adaptive.verdict);
    }
}

//! Regression tests for buffer-arena recycling inside the engine: across
//! G-phase rounds and local phases, simulation tables and cut-set tables
//! must come out of the executor's pool instead of fresh allocations.

use parsweep_aig::{miter, Aig, Lit};
use parsweep_core::{sim_sweep, EngineConfig, Verdict};
use parsweep_par::Executor;

fn adder(width: usize, ripple: bool) -> Aig {
    let mut aig = Aig::new();
    let a = aig.add_inputs(width);
    let b = aig.add_inputs(width);
    let mut carry = Lit::FALSE;
    for i in 0..width {
        let axb = aig.xor(a[i], b[i]);
        let sum = aig.xor(axb, carry);
        let new_carry = if ripple {
            let t = aig.and(a[i], b[i]);
            let u = aig.and(axb, carry);
            aig.or(t, u)
        } else {
            aig.maj3(a[i], b[i], carry)
        };
        aig.add_po(sum);
        carry = new_carry;
    }
    aig.add_po(carry);
    aig
}

#[test]
fn engine_run_recycles_arena_buffers() {
    // 20-bit adders force the engine past the P phase into repeated
    // global rounds and local phases: every round re-leases a simulation
    // table (and every pass a cut-set table), so from the second lease on
    // the arena must serve hits.
    let m = miter(&adder(20, true), &adder(20, false)).unwrap();
    let exec = Executor::with_threads(2);
    let r = sim_sweep(&m, &exec, &EngineConfig::default());
    assert_eq!(r.verdict, Verdict::Equivalent, "stats: {:?}", r.stats);

    let s = exec.stats();
    assert!(
        s.arena_hits > 0,
        "multi-round engine run must recycle pooled buffers: {s:?}"
    );
    assert!(s.arena_misses > 0, "first leases are misses: {s:?}");
    assert!(
        s.arena_peak_bytes > 0,
        "peak footprint must be tracked: {s:?}"
    );
}

#[test]
fn arena_counters_reset_with_stats() {
    let m = miter(&adder(6, true), &adder(6, false)).unwrap();
    let exec = Executor::with_threads(1);
    let _ = sim_sweep(&m, &exec, &EngineConfig::default());
    assert!(exec.stats().arena_misses > 0);
    exec.reset_stats();
    let s = exec.stats();
    assert_eq!(s.arena_hits, 0);
    assert_eq!(s.arena_misses, 0);
}

//! Property-based tests for the engine-level residency and ODC knobs:
//! turning on level-windowed signature streaming (any window size, any
//! spill tier) or the ODC refinement layer must never change a verdict,
//! and every verdict must stay sound against brute-force evaluation.

use proptest::prelude::*;

use parsweep_aig::{miter, random::random_aig, Aig};
use parsweep_core::{sim_sweep, EngineConfig, SigWindowConfig};
use parsweep_par::Executor;
use parsweep_sat::Verdict;
use parsweep_synth::resyn2;

/// Brute-force miter check: constant-zero on every input assignment.
fn brute_equivalent(m: &Aig) -> bool {
    let pis = m.num_pis();
    assert!(pis <= 12, "brute force only for small miters");
    (0..1u32 << pis).all(|mask| {
        let inputs: Vec<bool> = (0..pis).map(|i| mask >> i & 1 == 1).collect();
        m.eval(&inputs).iter().all(|&po| !po)
    })
}

fn assert_sound(m: &Aig, verdict: &Verdict) {
    match verdict {
        Verdict::Equivalent => assert!(brute_equivalent(m), "false equivalence"),
        Verdict::NotEquivalent(_) => assert!(!brute_equivalent(m), "false inequivalence"),
        Verdict::Undecided => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn windowed_and_odc_runs_agree_with_the_default_engine(
        pis in 2usize..6,
        ands in 5usize..40,
        seed in any::<u64>(),
    ) {
        let a = random_aig(pis, ands, 2, seed);
        let b = resyn2(&a);
        let m = miter(&a, &b).expect("same interface");
        let exec = Executor::with_threads(2);
        let base = sim_sweep(&m, &exec, &EngineConfig::scaled());
        assert_sound(&m, &base.verdict);
        let windows = [
            SigWindowConfig::with_levels(1),
            SigWindowConfig::with_levels(3),
            SigWindowConfig::with_levels(usize::MAX),
            SigWindowConfig::with_levels(1).on_disk(),
        ];
        for w in windows {
            let cfg = EngineConfig::scaled().with_sig_window(w);
            let r = sim_sweep(&m, &exec, &cfg);
            prop_assert_eq!(
                std::mem::discriminant(&r.verdict),
                std::mem::discriminant(&base.verdict),
                "window {:?} changed the verdict", w
            );
            assert_sound(&m, &r.verdict);
        }
        let odc = sim_sweep(&m, &exec, &EngineConfig::scaled().with_odc());
        prop_assert_eq!(
            std::mem::discriminant(&odc.verdict),
            std::mem::discriminant(&base.verdict),
            "the ODC layer changed the verdict"
        );
        assert_sound(&m, &odc.verdict);
    }
}

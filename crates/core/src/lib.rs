//! # parsweep-core — the simulation-based parallel sweeping CEC engine
//!
//! The primary contribution of *"Simulation-based Parallel Sweeping: A New
//! Perspective on Combinational Equivalence Checking"* (DAC 2025): a
//! combinational equivalence checker whose prover is **exhaustive
//! simulation** rather than SAT.
//!
//! The engine (paper Fig. 1/Fig. 5) combines five modules:
//!
//! * an **exhaustive simulator** (in [`parsweep_sim`]) that compares the
//!   complete truth tables of candidate node pairs in bounded memory;
//! * a **cut generator** (in [`parsweep_cut`]) producing multiple common
//!   cuts per pair for *local function checking* of wide-support pairs;
//! * a **miter manager** that merges proved pairs and reduces the miter
//!   (in [`parsweep_aig`]);
//! * an **EC manager** ([`EcManager`]) maintaining equivalence classes;
//! * a **partial simulator** (in [`parsweep_sim`]) initializing and
//!   refining the classes with random and counter-example patterns.
//!
//! The flow runs a PO checking phase (P), a global function checking
//! phase (G), then repeated local function checking phases (L); an
//! undecided reduced miter can be handed to the SAT sweeping fallback via
//! [`combined_check`] — the paper's "GPU+ABC" configuration.
//!
//! ```
//! use parsweep_aig::{Aig, miter};
//! use parsweep_core::{sim_sweep, EngineConfig};
//! use parsweep_par::Executor;
//! use parsweep_sat::Verdict;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 2-bit ripple adder vs its majority-gate variant.
//! let mut a = Aig::new();
//! let xs = a.add_inputs(4);
//! let s0 = a.xor(xs[0], xs[2]);
//! let c0 = a.and(xs[0], xs[2]);
//! let s1a = a.xor(xs[1], xs[3]);
//! let s1 = a.xor(s1a, c0);
//! a.add_po(s0);
//! a.add_po(s1);
//! let mut b = Aig::new();
//! let ys = b.add_inputs(4);
//! let t0 = b.xor(ys[0], ys[2]);
//! let d0 = b.maj3(ys[0], ys[2], parsweep_aig::Lit::FALSE);
//! let t1a = b.xor(ys[1], ys[3]);
//! let t1 = b.xor(t1a, d0);
//! b.add_po(t0);
//! b.add_po(t1);
//! let m = miter(&a, &b)?;
//! let exec = Executor::with_threads(1);
//! let result = sim_sweep(&m, &exec, &EngineConfig::default());
//! assert_eq!(result.verdict, Verdict::Equivalent);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod combined;
mod config;
mod diagnose;
mod ec;
mod engine;
mod fraig;
mod local;
mod prove;
mod report;
mod stats;

pub use combined::{
    combined_check, combined_check_cancellable, combined_check_with_prover, CombinedConfig,
    CombinedResult,
};
pub use config::{EngineConfig, MergeStrategy};
pub use diagnose::{diagnose, Diagnosis};
pub use ec::EcManager;
pub use engine::{sim_sweep, sim_sweep_cancellable, sim_sweep_traced, EngineResult, PhaseSnapshot};
pub use fraig::{fraig, FraigResult};
pub use prove::{build_prover, refine_velocity, SimSweepEngine};
pub use report::Report;
pub use stats::{EngineStats, PhaseTimes};

// Re-export the shared verdict type and the dispatch layer's vocabulary
// for convenience.
pub use parsweep_sat::{EngineKind, Prover, ProverConfig, ProverMode, Verdict};
// Re-export the residency/ODC knob types so callers can configure
// [`EngineConfig::sig_window`]/[`EngineConfig::odc`] without a direct
// parsweep-sim dependency.
pub use parsweep_sim::{OdcConfig, SigWindowConfig, SpillTier};

//! Equivalence-class management for the engine.

use parsweep_aig::{Aig, Var};
use parsweep_par::Executor;
use parsweep_sim::{signature_classes, simulate, PairCheck, Patterns, Signatures};

/// The engine's EC manager: wraps partial-simulation signatures and the
/// derived equivalence classes, and produces candidate pairs.
#[derive(Debug)]
pub struct EcManager {
    classes: Vec<Vec<Var>>,
    sigs: Signatures,
}

impl EcManager {
    /// Builds classes by simulating `patterns` on the miter.
    pub fn from_patterns(aig: &Aig, exec: &Executor, patterns: &Patterns) -> Self {
        let sigs = simulate(aig, exec, patterns);
        let classes = signature_classes(aig, &sigs);
        EcManager { classes, sigs }
    }

    /// The underlying signatures.
    pub fn signatures(&self) -> &Signatures {
        &self.sigs
    }

    /// The equivalence classes (each sorted, representative first).
    pub fn classes(&self) -> &[Vec<Var>] {
        &self.classes
    }

    /// Total number of candidate pairs implied by the classes.
    pub fn num_pairs(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Candidate pairs `(representative, member)` with their relative
    /// complement, skipping members that cannot be merged (non-AND nodes).
    pub fn pairs(&self, aig: &Aig) -> Vec<PairCheck> {
        let mut out = Vec::with_capacity(self.num_pairs());
        for class in &self.classes {
            let repr = class[0];
            for &member in &class[1..] {
                if !aig.node(member).is_and() {
                    continue;
                }
                out.push(PairCheck {
                    a: repr,
                    b: member,
                    complement: self.sigs.phase(repr) != self.sigs.phase(member),
                });
            }
        }
        out
    }

    /// The representative of each non-representative node, for the
    /// enumeration levels of Eq. (2).
    pub fn repr_map(&self, num_nodes: usize) -> Vec<Option<Var>> {
        let mut map = vec![None; num_nodes];
        for class in &self.classes {
            let repr = class[0];
            for &member in &class[1..] {
                map[member.index()] = Some(repr);
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::Aig;

    fn setup() -> (Aig, EcManager) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let f = aig.and(xs[0], xs[1]);
        let t = aig.or(xs[0], xs[1]);
        let g = aig.and(t, f); // == f
        aig.add_po(g);
        aig.add_po(f);
        let exec = Executor::with_threads(1);
        let patterns = Patterns::random(3, 4, 7);
        let ec = EcManager::from_patterns(&aig, &exec, &patterns);
        (aig, ec)
    }

    #[test]
    fn pairs_have_min_id_representative() {
        let (aig, ec) = setup();
        for p in ec.pairs(&aig) {
            assert!(p.a < p.b);
        }
    }

    #[test]
    fn repr_map_marks_non_representatives() {
        let (aig, ec) = setup();
        let map = ec.repr_map(aig.num_nodes());
        let marked = map.iter().filter(|m| m.is_some()).count();
        assert_eq!(marked, ec.num_pairs());
    }

    #[test]
    fn equal_nodes_form_a_pair() {
        let (aig, ec) = setup();
        let pairs = ec.pairs(&aig);
        assert!(!pairs.is_empty());
        // All pairs relate semantically equal (or complementary) nodes
        // under exhaustive evaluation.
        for p in pairs {
            for v in 0..8u32 {
                let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
                let values = aig.eval_nodes(&bits);
                let va = values[p.a.index()];
                let vb = values[p.b.index()];
                assert_eq!(va, vb != p.complement, "pair {p:?}");
            }
        }
    }
}

//! Equivalence-class management for the engine.

use parsweep_aig::{Aig, Lit, Var};
use parsweep_par::Executor;
use parsweep_sim::{
    refine_classes, refine_classes_odc, signature_classes, signature_classes_among,
    simulate_pruned_counted_with, simulate_with, OdcCandidate, OdcMasks, PairCheck, Patterns,
    ResimPlan, SigWindowConfig, Signatures,
};

/// The engine's EC manager: wraps partial-simulation signatures and the
/// derived equivalence classes, and produces candidate pairs.
///
/// The signature table it holds is the *base* table the classes were
/// derived from. Incremental rounds never rebuild it from scratch: fresh
/// patterns refine the classes in place ([`EcManager::refine_with`]) and
/// miter rewrites carry the table over by dirty-cone resimulation
/// ([`EcManager::rebuild`]).
#[derive(Debug)]
pub struct EcManager {
    classes: Vec<Vec<Var>>,
    sigs: Signatures,
    /// Nodes the construction actually simulated: `Some(cone size)` for
    /// the pruned constructor, `None` for a full build.
    simulated_nodes: Option<usize>,
    /// Residency policy every simulation this manager runs goes through:
    /// `Some` streams tables level-windowed, `None` keeps them resident.
    window: Option<SigWindowConfig>,
}

impl EcManager {
    /// Builds classes by simulating `patterns` on the miter.
    pub fn from_patterns(aig: &Aig, exec: &Executor, patterns: &Patterns) -> Self {
        Self::from_patterns_with(aig, exec, patterns, None)
    }

    /// [`EcManager::from_patterns`] under a residency policy: the initial
    /// table and every later refinement/resimulation round stream through
    /// the level window when `window` is `Some`.
    pub fn from_patterns_with(
        aig: &Aig,
        exec: &Executor,
        patterns: &Patterns,
        window: Option<SigWindowConfig>,
    ) -> Self {
        let sigs = simulate_with(aig, exec, patterns, window.as_ref());
        let classes = signature_classes(aig, &sigs);
        EcManager {
            classes,
            sigs,
            simulated_nodes: None,
            window,
        }
    }

    /// Builds classes among `candidates` only, simulating just their TFI
    /// cone (plus `extra_live` nodes kept simulated but never clustered —
    /// the miter POs, whose counter-example scan must read real words).
    ///
    /// The constant node always participates, so candidates whose fresh
    /// signature is constant still bucket against it.
    pub fn from_patterns_pruned(
        aig: &Aig,
        exec: &Executor,
        patterns: &Patterns,
        candidates: &[Var],
        extra_live: &[Var],
    ) -> Self {
        Self::from_patterns_pruned_with(aig, exec, patterns, candidates, extra_live, None)
    }

    /// [`EcManager::from_patterns_pruned`] under a residency policy (see
    /// [`EcManager::from_patterns_with`]).
    pub fn from_patterns_pruned_with(
        aig: &Aig,
        exec: &Executor,
        patterns: &Patterns,
        candidates: &[Var],
        extra_live: &[Var],
        window: Option<SigWindowConfig>,
    ) -> Self {
        let mut live: Vec<Var> = candidates.iter().chain(extra_live).copied().collect();
        live.sort_unstable();
        live.dedup();
        let (sigs, covered) =
            simulate_pruned_counted_with(aig, exec, patterns, &live, window.as_ref());
        let mut among: Vec<Var> = std::iter::once(Var::FALSE)
            .chain(candidates.iter().copied())
            .collect();
        among.sort_unstable();
        among.dedup();
        let classes = signature_classes_among(&sigs, &among);
        EcManager {
            classes,
            sigs,
            simulated_nodes: Some(covered),
            window,
        }
    }

    /// How many nodes the pruned constructor simulated (`None` after a
    /// full build).
    pub fn simulated_nodes(&self) -> Option<usize> {
        self.simulated_nodes
    }

    /// All undecided class members, sorted — the live set a pruned
    /// simulation round needs to cover.
    pub fn live_vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = self.classes.iter().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Refines the classes in place from one fresh round of patterns,
    /// simulating only the live cone (class members plus `extra_live`).
    ///
    /// Returns the fresh pruned table (valid for the live set — e.g. for
    /// a PO counter-example scan when `extra_live` holds the PO vars),
    /// the number of classes that split or shrank, and the cone size the
    /// round actually simulated.
    pub fn refine_with(
        &mut self,
        aig: &Aig,
        exec: &Executor,
        patterns: &Patterns,
        extra_live: &[Var],
    ) -> (Signatures, usize, usize) {
        let mut live = self.live_vars();
        live.extend_from_slice(extra_live);
        live.sort_unstable();
        live.dedup();
        let (fresh, covered) =
            simulate_pruned_counted_with(aig, exec, patterns, &live, self.window.as_ref());
        let refined = refine_classes(&mut self.classes, &self.sigs, &fresh);
        (fresh, refined, covered)
    }

    /// [`EcManager::refine_with`] with observability don't-cares: care
    /// masks are computed over the fresh table before refinement, and
    /// pairs whose split was entirely unobservable come back as
    /// [`OdcCandidate`]s (at most `odc_limit`) for the engine's exact
    /// replaceability check. Splitting itself is unchanged.
    #[allow(clippy::too_many_arguments)]
    pub fn refine_with_odc(
        &mut self,
        aig: &Aig,
        exec: &Executor,
        patterns: &Patterns,
        extra_live: &[Var],
        fanouts: &parsweep_sim::Fanouts,
        odc_limit: usize,
    ) -> (Signatures, usize, usize, Vec<OdcCandidate>) {
        let mut live = self.live_vars();
        live.extend_from_slice(extra_live);
        live.sort_unstable();
        live.dedup();
        let (fresh, covered) =
            simulate_pruned_counted_with(aig, exec, patterns, &live, self.window.as_ref());
        let masks = OdcMasks::compute(aig, exec, &fresh, fanouts);
        let (refined, candidates) =
            refine_classes_odc(&mut self.classes, &self.sigs, &fresh, &masks, odc_limit);
        (fresh, refined, covered, candidates)
    }

    /// Carries the EC state across a miter rewrite
    /// (`new = old.rebuild_with_substitution(subst)`, with `map` the
    /// old→new literal map rebuild returned): the base table is
    /// resimulated dirty-cone-only under the original `patterns`, and
    /// class members are renamed through `map` (merged members collapse
    /// onto their representative's image; members dropped or folded to a
    /// constant leave their class).
    ///
    /// Returns the resim plan's `(clean, dirty)` node counts.
    pub fn rebuild(
        &mut self,
        old: &Aig,
        new: &Aig,
        map: &[Lit],
        subst: &[Lit],
        exec: &Executor,
        patterns: &Patterns,
    ) -> (usize, usize) {
        self.rebuild_exempt(old, new, map, subst, &[], exec, patterns)
    }

    /// [`EcManager::rebuild`] with resim-taint exemptions: substitutions
    /// of the listed old variables (ODC merges proven PO-preserving by
    /// [`parsweep_sim::check_replaceable`]) do not dirty their TFO — the
    /// memoized words stay, stale only in unobservable bits.
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild_exempt(
        &mut self,
        old: &Aig,
        new: &Aig,
        map: &[Lit],
        subst: &[Lit],
        exempt: &[Var],
        exec: &Executor,
        patterns: &Patterns,
    ) -> (usize, usize) {
        let plan = ResimPlan::new_with_exempt(old, new, map, subst, exempt);
        self.sigs = plan.resimulate_with(new, exec, patterns, &self.sigs, self.window.as_ref());
        let mut classes: Vec<Vec<Var>> = Vec::with_capacity(self.classes.len());
        for class in self.classes.drain(..) {
            let mut members: Vec<Var> = class
                .into_iter()
                .filter_map(|m| {
                    let lit = map[m.index()];
                    if lit.is_const() {
                        // Only the constant class's own representative
                        // legitimately maps to a constant; anything else
                        // was merged away or dropped by the rewrite.
                        m.is_const().then_some(Var::FALSE)
                    } else {
                        Some(lit.var())
                    }
                })
                .collect();
            members.sort_unstable();
            members.dedup();
            if members.len() >= 2 {
                classes.push(members);
            }
        }
        classes.sort_by_key(|c| c[0]);
        self.classes = classes;
        (plan.num_clean(), plan.num_dirty())
    }

    /// The underlying signatures.
    pub fn signatures(&self) -> &Signatures {
        &self.sigs
    }

    /// The equivalence classes (each sorted, representative first).
    pub fn classes(&self) -> &[Vec<Var>] {
        &self.classes
    }

    /// Total number of candidate pairs implied by the classes.
    pub fn num_pairs(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Candidate pairs `(representative, member)` with their relative
    /// complement, skipping members that cannot be merged (non-AND nodes).
    pub fn pairs(&self, aig: &Aig) -> Vec<PairCheck> {
        let mut out = Vec::with_capacity(self.num_pairs());
        for class in &self.classes {
            let repr = class[0];
            for &member in &class[1..] {
                if !aig.node(member).is_and() {
                    continue;
                }
                out.push(PairCheck {
                    a: repr,
                    b: member,
                    complement: self.sigs.phase(repr) != self.sigs.phase(member),
                });
            }
        }
        out
    }

    /// The representative of each non-representative node, for the
    /// enumeration levels of Eq. (2).
    pub fn repr_map(&self, num_nodes: usize) -> Vec<Option<Var>> {
        let mut map = vec![None; num_nodes];
        for class in &self.classes {
            let repr = class[0];
            for &member in &class[1..] {
                map[member.index()] = Some(repr);
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::Aig;

    fn setup() -> (Aig, EcManager) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let f = aig.and(xs[0], xs[1]);
        let t = aig.or(xs[0], xs[1]);
        let g = aig.and(t, f); // == f
        aig.add_po(g);
        aig.add_po(f);
        let exec = Executor::with_threads(1);
        let patterns = Patterns::random(3, 4, 7);
        let ec = EcManager::from_patterns(&aig, &exec, &patterns);
        (aig, ec)
    }

    #[test]
    fn pairs_have_min_id_representative() {
        let (aig, ec) = setup();
        for p in ec.pairs(&aig) {
            assert!(p.a < p.b);
        }
    }

    #[test]
    fn repr_map_marks_non_representatives() {
        let (aig, ec) = setup();
        let map = ec.repr_map(aig.num_nodes());
        let marked = map.iter().filter(|m| m.is_some()).count();
        assert_eq!(marked, ec.num_pairs());
    }

    #[test]
    fn pruned_build_matches_full_for_the_candidates() {
        let (aig, full) = setup();
        let exec = Executor::with_threads(1);
        let patterns = Patterns::random(3, 4, 7);
        let candidates = full.live_vars();
        let pruned = EcManager::from_patterns_pruned(&aig, &exec, &patterns, &candidates, &[]);
        assert_eq!(pruned.classes(), full.classes());
        assert!(pruned.simulated_nodes().unwrap() <= aig.num_nodes());
    }

    #[test]
    fn rebuild_carries_classes_across_a_rewrite() {
        // Three copies of a & b plus an unrelated node: merge one copy
        // away and check the class follows the rewrite.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let f = aig.and(xs[0], xs[1]);
        let t = aig.or(xs[0], xs[1]);
        let g = aig.and(t, f);
        let h = aig.and(g, f);
        aig.add_po(g);
        aig.add_po(h);
        aig.add_po(!f);
        let exec = Executor::with_threads(1);
        let patterns = Patterns::random(3, 4, 7);
        let mut ec = EcManager::from_patterns(&aig, &exec, &patterns);
        let class: Vec<Var> = ec
            .classes()
            .iter()
            .find(|c| c.contains(&f.var()))
            .expect("f, g, h share a class")
            .clone();
        assert!(class.len() >= 3, "class: {class:?}");
        // Merge the largest member into the representative.
        let (&member, repr) = (class.last().unwrap(), class[0]);
        let mut subst: Vec<parsweep_aig::Lit> = (0..aig.num_nodes())
            .map(|i| Var::new(i as u32).lit())
            .collect();
        subst[member.index()] = repr.lit();
        let (reduced, map) = aig.rebuild_with_substitution(&subst);
        let (clean, dirty) = ec.rebuild(&aig, &reduced, &map, &subst, &exec, &patterns);
        assert!(clean > 0);
        assert_eq!(clean + dirty + 1, reduced.num_nodes());
        // The surviving class relates the images of the unmerged members,
        // with signatures valid over the rewritten network.
        let fresh = parsweep_sim::simulate(&reduced, &exec, &patterns);
        for class in ec.classes() {
            for &m in class {
                assert_eq!(
                    ec.signatures().sig(m),
                    fresh.sig(m),
                    "carried words of {m:?} must match a from-scratch resim"
                );
            }
        }
        let f_img = map[f.var().index()].var();
        assert!(
            ec.classes().iter().any(|c| c.contains(&f_img)),
            "classes: {:?}",
            ec.classes()
        );
    }

    #[test]
    fn equal_nodes_form_a_pair() {
        let (aig, ec) = setup();
        let pairs = ec.pairs(&aig);
        assert!(!pairs.is_empty());
        // All pairs relate semantically equal (or complementary) nodes
        // under exhaustive evaluation.
        for p in pairs {
            for v in 0..8u32 {
                let bits = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
                let values = aig.eval_nodes(&bits);
                let va = values[p.a.index()];
                let vb = values[p.b.index()];
                assert_eq!(va, vb != p.complement, "pair {p:?}");
            }
        }
    }
}

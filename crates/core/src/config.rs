//! Engine configuration (the paper's §IV parameter set).

use parsweep_cut::{CutParams, Pass};
use parsweep_sim::{OdcConfig, SigWindowConfig};

/// Window merging strategy for PO and global function checking (§III-B3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeStrategy {
    /// No merging: one window per candidate pair.
    None,
    /// Lexicographic sort + consecutive merging (the paper's heuristic).
    #[default]
    Lexicographic,
    /// Greedy similarity clustering (the paper's "more dedicated
    /// approach"; quadratic overhead).
    Clustered,
}

/// Configuration of the simulation-based CEC engine.
///
/// Field names follow the paper: `k_po_all` is `k_P` (one-shot PO
/// checking bound), `k_po` is `k_p`, `k_g` bounds global function
/// checking, `cut.k_l`/`cut.c` bound local function checking and `k_s`
/// (window merging) equals the active phase's support threshold.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// `k_P`: if every PO's support fits, all POs are checked one-shot.
    pub k_po_all: usize,
    /// `k_p`: otherwise only POs with support up to this are simulatable.
    pub k_po: usize,
    /// `k_g`: support bound for global function checking of node pairs.
    pub k_g: usize,
    /// Cut enumeration parameters (`k_l`, `C`).
    pub cut: CutParams,
    /// Simulation-table memory budget in 64-bit words (the paper's `M`).
    pub memory_words: usize,
    /// Random-pattern words for partial simulation (64 patterns each).
    pub sim_words: usize,
    /// Maximum check/refine rounds inside the global checking phase.
    pub max_global_rounds: usize,
    /// Maximum repeated local function checking phases.
    pub max_local_phases: usize,
    /// Cut generation passes (Table I), in order.
    pub passes: Vec<Pass>,
    /// Similarity-driven cut selection for non-representatives (§III-C1).
    pub similarity_selection: bool,
    /// Window merging strategy in global/PO checking (§III-B3).
    pub window_merging: MergeStrategy,
    /// Common-cut buffer capacity of Algorithm 2.
    pub cut_buffer_capacity: usize,
    /// Maximum simulation-table entries per exhaustive-simulation batch;
    /// larger batches are split so the table fits in `memory_words`.
    pub batch_entries: usize,
    /// Seed for random pattern generation.
    pub seed: u64,
    /// Distance-1 amplification of counter-example patterns (§V, third
    /// tweak): every CEX is resimulated together with 63 single-bit-flip
    /// neighbours.
    pub distance1_cex: bool,
    /// Adaptive pass disabling (§V, second tweak): a Table-I pass that
    /// proves nothing during a local phase is dropped from later phases.
    pub adaptive_passes: bool,
    /// Reverse simulation (§V, citing Zhang et al. DAC'21): backward
    /// value justification generates directed patterns that knock
    /// wide-support candidates out of the constant class.
    pub reverse_sim: bool,
    /// Level-windowed signature streaming: `Some` bounds the device
    /// residency of every partial-simulation table to a sliding window
    /// of topological levels, spilling retired columns to a host (or
    /// disk) tier. `None` (the default) keeps whole tables resident —
    /// bit-identical to the pre-streaming pipeline.
    pub sig_window: Option<SigWindowConfig>,
    /// Observability don't-care-aware refinement: `Some` computes
    /// per-node care masks each G round and diverts candidate pairs
    /// whose disagreement is entirely unobservable to an exact bounded
    /// replaceability check instead of discarding them. `None` (the
    /// default) disables the layer.
    pub odc: Option<OdcConfig>,
}

impl EngineConfig {
    /// The paper's experimental parameters (`k_P = 32`, `k_p = k_g = 16`,
    /// `k_l = 8`, `C = 8`), sized for a 48 GB GPU. Use [`EngineConfig::scaled`]
    /// on laptop-class hardware.
    pub fn paper() -> Self {
        EngineConfig {
            k_po_all: 32,
            k_po: 16,
            k_g: 16,
            cut: CutParams { k_l: 8, c: 8 },
            memory_words: 1 << 28, // 2 GiB of 64-bit words
            sim_words: 16,
            max_global_rounds: 4,
            max_local_phases: 256,
            passes: Pass::ALL.to_vec(),
            similarity_selection: true,
            window_merging: MergeStrategy::Lexicographic,
            cut_buffer_capacity: 1 << 14,
            batch_entries: 1 << 20,
            seed: 0x70_5eed,
            distance1_cex: false,
            adaptive_passes: false,
            reverse_sim: false,
            sig_window: None,
            odc: None,
        }
    }

    /// Laptop-scale parameters: the same structure with smaller support
    /// bounds so truth tables stay tractable on a CPU.
    pub fn scaled() -> Self {
        EngineConfig {
            k_po_all: 18,
            k_po: 14,
            k_g: 16,
            cut: CutParams { k_l: 8, c: 8 },
            memory_words: 1 << 22, // 32 MiB
            sim_words: 8,
            max_global_rounds: 4,
            max_local_phases: 64,
            passes: Pass::ALL.to_vec(),
            similarity_selection: true,
            window_merging: MergeStrategy::Lexicographic,
            cut_buffer_capacity: 1 << 12,
            batch_entries: 1 << 16,
            seed: 0x70_5eed,
            distance1_cex: false,
            adaptive_passes: false,
            reverse_sim: false,
            sig_window: None,
            odc: None,
        }
    }
}

impl EngineConfig {
    /// Returns this configuration with new support bounds (`k_P`, `k_p`,
    /// `k_g`), clamped pairwise so `k_p <= k_P`.
    pub fn with_support_bounds(mut self, k_po_all: usize, k_po: usize, k_g: usize) -> Self {
        self.k_po_all = k_po_all;
        self.k_po = k_po.min(k_po_all);
        self.k_g = k_g;
        self
    }

    /// Returns this configuration with new cut parameters (`k_l`, `C`).
    pub fn with_cut_params(mut self, k_l: usize, c: usize) -> Self {
        self.cut = CutParams { k_l, c };
        self
    }

    /// Returns this configuration with all §V extension features enabled
    /// (EC transfer is on [`CombinedConfig`](crate::CombinedConfig)).
    pub fn with_extensions(mut self) -> Self {
        self.distance1_cex = true;
        self.adaptive_passes = true;
        self.reverse_sim = true;
        self
    }

    /// Returns this configuration with level-windowed signature streaming
    /// enabled (see [`SigWindowConfig`]).
    pub fn with_sig_window(mut self, window: SigWindowConfig) -> Self {
        self.sig_window = Some(window);
        self
    }

    /// Returns this configuration with ODC-aware refinement enabled under
    /// the default [`OdcConfig`] bounds.
    pub fn with_odc(mut self) -> Self {
        self.odc = Some(OdcConfig::default());
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_section_iv() {
        let c = EngineConfig::paper();
        assert_eq!(c.k_po_all, 32);
        assert_eq!(c.k_po, 16);
        assert_eq!(c.k_g, 16);
        assert_eq!(c.cut.k_l, 8);
        assert_eq!(c.cut.c, 8);
        assert_eq!(c.passes.len(), 3);
    }

    #[test]
    fn builders_compose() {
        let c = EngineConfig::scaled()
            .with_support_bounds(20, 22, 10)
            .with_cut_params(6, 4)
            .with_extensions();
        assert_eq!(c.k_po_all, 20);
        assert_eq!(c.k_po, 20, "k_p is clamped to k_P");
        assert_eq!(c.k_g, 10);
        assert_eq!(c.cut.k_l, 6);
        assert!(c.distance1_cex && c.adaptive_passes && c.reverse_sim);
    }

    #[test]
    fn default_is_scaled() {
        let d = EngineConfig::default();
        assert!(d.k_po_all <= 20, "default must be laptop-safe");
        assert_eq!(d.window_merging, MergeStrategy::Lexicographic);
        assert!(d.similarity_selection);
    }

    #[test]
    fn streaming_and_odc_default_off() {
        assert!(EngineConfig::paper().sig_window.is_none());
        assert!(EngineConfig::paper().odc.is_none());
        assert!(EngineConfig::scaled().sig_window.is_none());
        assert!(EngineConfig::scaled().odc.is_none());
        let c = EngineConfig::scaled()
            .with_sig_window(SigWindowConfig::with_levels(2))
            .with_odc();
        assert_eq!(c.sig_window.unwrap().window_levels, 2);
        assert_eq!(c.odc.unwrap().check_limit, 8);
    }
}

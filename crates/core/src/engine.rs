//! The simulation-based CEC engine flow (paper Fig. 5): PO checking (P),
//! global function checking (G), then repeated local function checking
//! phases (L), each reducing the miter by merging proved pairs.

use std::borrow::Cow;
use std::time::Instant;

use parsweep_aig::{is_proved, Aig, Lit, Support, Var};
use parsweep_cut::Pass;
use parsweep_par::{CancelToken, Executor};
use parsweep_sat::Verdict;
use parsweep_sim::{
    find_po_counterexample, merge_windows, Cex, PairCheck, PairOutcome, Patterns, Window,
};
use parsweep_trace as trace;

use crate::config::{EngineConfig, MergeStrategy};
use crate::ec::EcManager;
use crate::local::run_cut_pass;
use crate::stats::EngineStats;

/// The result of running the simulation-based engine on a miter.
#[derive(Clone, Debug)]
pub struct EngineResult {
    /// Final verdict: `Equivalent` if the miter was fully proved,
    /// `NotEquivalent` with a counter-example, or `Undecided` with a
    /// reduced miter for a downstream checker.
    pub verdict: Verdict,
    /// The reduced miter (empty of logic when fully proved).
    pub reduced: Aig,
    /// Statistics including the Fig. 6 phase breakdown.
    pub stats: EngineStats,
    /// Counter-examples that disproved candidate pairs during global
    /// checking; a downstream SAT sweeper can be seeded with these (the
    /// Discussion section's *EC transfer*, see
    /// [`parsweep_sat::sat_sweep_seeded`]).
    pub disproof_cexs: Vec<Cex>,
}

/// A labelled snapshot of the miter after each phase boundary
/// ("P", "PG", "PGL"), used by the Fig. 7 experiment.
pub type PhaseSnapshot = (String, Aig);

/// Runs the simulation-based CEC engine on a miter.
pub fn sim_sweep(miter: &Aig, exec: &Executor, cfg: &EngineConfig) -> EngineResult {
    run(miter, exec, cfg, false, &CancelToken::never()).0
}

/// Like [`sim_sweep`], polling `token` at every phase boundary — between
/// the P, G and L phases, between G rounds, between L phases, and between
/// exhaustive-simulation batches inside a phase.
///
/// This is the job-service entry point: the caller hands in a
/// pre-extracted miter (a whole miter, or one output-cone shard from
/// [`parsweep_aig::Aig::extract_cone`]) plus a deadline- or
/// service-controlled token. When the token trips, in-flight checks are
/// abandoned *before* their results are recorded, so every proof and
/// counter-example in the result is complete and sound; the verdict
/// degrades to [`Verdict::Undecided`] (with the partially reduced miter)
/// rather than ever reporting a wrong `Equivalent`/`NotEquivalent`, and
/// `stats.cancelled` is set.
pub fn sim_sweep_cancellable(
    miter: &Aig,
    exec: &Executor,
    cfg: &EngineConfig,
    token: &CancelToken,
) -> EngineResult {
    run(miter, exec, cfg, false, token).0
}

/// Like [`sim_sweep`], additionally returning miter snapshots after the
/// P, P+G and P+G+L phase boundaries.
pub fn sim_sweep_traced(
    miter: &Aig,
    exec: &Executor,
    cfg: &EngineConfig,
) -> (EngineResult, Vec<PhaseSnapshot>) {
    run(miter, exec, cfg, true, &CancelToken::never())
}

/// The modeled serialized time of everything the executor has run so far,
/// sampled only while tracing is live — phase spans report the *delta*
/// across the phase as their deterministic `modeled_time` argument (the
/// serialized profile is additive; the critical-path model is not).
pub(crate) fn modeled_mark(exec: &Executor) -> u64 {
    if trace::active() {
        exec.stats().serialized_time(trace::MODEL_CORES)
    } else {
        0
    }
}

fn run(
    miter: &Aig,
    exec: &Executor,
    cfg: &EngineConfig,
    traced: bool,
    token: &CancelToken,
) -> (EngineResult, Vec<PhaseSnapshot>) {
    let start = Instant::now();
    let mut run_span = trace::span("engine", "engine.run");
    run_span.arg_u64("ands", miter.num_ands() as u64);
    let mut stats = EngineStats {
        initial_ands: miter.num_ands(),
        ..Default::default()
    };
    // The miter is borrowed until a phase actually reduces it: an untraced
    // run that proves or disproves nothing never clones the input.
    let mut current: Cow<'_, Aig> = Cow::Borrowed(miter);
    let mut snapshots: Vec<PhaseSnapshot> = Vec::new();
    let mut disproofs: Vec<Cex> = Vec::new();

    let finish = |verdict: Verdict,
                  current: Cow<'_, Aig>,
                  mut stats: EngineStats,
                  snapshots: Vec<PhaseSnapshot>,
                  disproofs: Vec<Cex>| {
        stats.cancelled = token.is_cancelled();
        stats.final_ands = current.num_ands();
        stats.seconds = start.elapsed().as_secs_f64();
        let accounted = stats.phase_times.po + stats.phase_times.global + stats.phase_times.local;
        // Signed residual: a slightly negative value exposes measurement
        // skew between the phase timers and the total instead of hiding it.
        stats.phase_times.other = stats.seconds - accounted;
        (
            EngineResult {
                verdict,
                reduced: current.into_owned(),
                stats,
                disproof_cexs: disproofs,
            },
            snapshots,
        )
    };

    // ---- P: PO checking phase ----
    let t = Instant::now();
    let mark = modeled_mark(exec);
    let mut span = trace::span("engine", "engine.phase.P");
    let po_outcome = po_phase(&mut current, exec, cfg, &mut stats, token);
    span.arg_u64("modeled_time", modeled_mark(exec).saturating_sub(mark));
    drop(span);
    stats.phase_times.po = t.elapsed().as_secs_f64();
    if let Err(cex) = po_outcome {
        return finish(
            Verdict::NotEquivalent(cex),
            current,
            stats,
            snapshots,
            disproofs,
        );
    }
    if traced {
        snapshots.push(("P".into(), current.as_ref().clone()));
    }
    if is_proved(&current) {
        return finish(Verdict::Equivalent, current, stats, snapshots, disproofs);
    }
    // Cancellation checks sit *after* the proved/disproved checks: a
    // verdict reached from completed work stays valid even if the token
    // tripped while it was being recorded.
    if token.is_cancelled() {
        return finish(Verdict::Undecided, current, stats, snapshots, disproofs);
    }

    // ---- G: global function checking phase ----
    let t = Instant::now();
    let mark = modeled_mark(exec);
    let mut span = trace::span("engine", "engine.phase.G");
    let g_outcome = global_phase(&mut current, exec, cfg, &mut stats, &mut disproofs, token);
    span.arg_u64("modeled_time", modeled_mark(exec).saturating_sub(mark));
    drop(span);
    stats.phase_times.global = t.elapsed().as_secs_f64();
    let mut live = match g_outcome {
        Err(cex) => {
            return finish(
                Verdict::NotEquivalent(cex),
                current,
                stats,
                snapshots,
                disproofs,
            );
        }
        Ok(live) => live,
    };
    if traced {
        snapshots.push(("PG".into(), current.as_ref().clone()));
    }
    if is_proved(&current) {
        return finish(Verdict::Equivalent, current, stats, snapshots, disproofs);
    }
    if token.is_cancelled() {
        return finish(Verdict::Undecided, current, stats, snapshots, disproofs);
    }

    // ---- L: repeated local function checking phases ----
    let t = Instant::now();
    let mark = modeled_mark(exec);
    let mut l_span = trace::span("engine", "engine.phase.L");
    let mut active_passes = cfg.passes.clone();
    for phase in 0..cfg.max_local_phases {
        if token.is_cancelled() {
            break;
        }
        stats.local_phases += 1;
        match local_phase(
            &mut current,
            exec,
            cfg,
            &active_passes,
            &mut stats,
            phase as u64,
            live.as_deref(),
            token,
        ) {
            Err(cex) => {
                stats.phase_times.local = t.elapsed().as_secs_f64();
                return finish(
                    Verdict::NotEquivalent(cex),
                    current,
                    stats,
                    snapshots,
                    disproofs,
                );
            }
            Ok((reduced, per_pass, next_live)) => {
                live = next_live;
                if is_proved(&current) || !reduced {
                    break;
                }
                // Adaptive pass disabling (§V): drop passes that proved
                // nothing this phase, as long as at least one remains.
                if cfg.adaptive_passes {
                    let keep: Vec<_> = active_passes
                        .iter()
                        .copied()
                        .zip(&per_pass)
                        .filter(|(_, &n)| n > 0)
                        .map(|(p, _)| p)
                        .collect();
                    if !keep.is_empty() {
                        active_passes = keep;
                    }
                }
            }
        }
    }
    l_span.arg_u64("modeled_time", modeled_mark(exec).saturating_sub(mark));
    drop(l_span);
    stats.phase_times.local = t.elapsed().as_secs_f64();
    if traced {
        snapshots.push(("PGL".into(), current.as_ref().clone()));
    }

    let verdict = if is_proved(&current) {
        Verdict::Equivalent
    } else {
        Verdict::Undecided
    };
    finish(verdict, current, stats, snapshots, disproofs)
}

/// Runs a batch of windows through the exhaustive simulator, splitting the
/// batch so each sub-batch's simulation table fits the memory budget.
///
/// Polls `token` between sub-batches; on cancellation the remaining
/// windows get *empty* outcome vectors, so callers that iterate a
/// window's outcomes simply record nothing for unprocessed work (no
/// proof, no counter-example) — the sound degradation.
pub(crate) fn check_in_batches(
    aig: &Aig,
    exec: &Executor,
    windows: &[Window],
    cfg: &EngineConfig,
    stats: &mut EngineStats,
    token: &CancelToken,
) -> Vec<Vec<PairOutcome>> {
    let mut outcomes = Vec::with_capacity(windows.len());
    let mut batch_start = 0;
    while batch_start < windows.len() {
        if token.is_cancelled() {
            break;
        }
        let mut entries = 0usize;
        let mut end = batch_start;
        while end < windows.len() {
            let e = windows[end].num_entries();
            if end > batch_start && entries + e > cfg.batch_entries {
                break;
            }
            entries += e;
            end += 1;
        }
        let (res, effort) = parsweep_sim::check_windows_cancellable(
            aig,
            exec,
            &windows[batch_start..end],
            cfg.memory_words,
            token,
        );
        stats.sim_words += effort.words;
        outcomes.extend(res);
        batch_start = end;
    }
    // Pad cancelled-away windows with empty outcomes so indexing by
    // window position stays valid.
    outcomes.resize_with(windows.len(), Vec::new);
    outcomes
}

/// Applies the configured window-merging strategy.
fn apply_merging(windows: Vec<Window>, k_s: usize, strategy: MergeStrategy) -> Vec<Window> {
    match strategy {
        MergeStrategy::None => windows,
        MergeStrategy::Lexicographic => merge_windows(windows, k_s),
        MergeStrategy::Clustered => parsweep_sim::merge_windows_clustered(windows, k_s),
    }
}

/// Merges two bounded supports, giving up beyond `cap`.
fn union_support(a: &Support, b: &Support, cap: usize) -> Option<Vec<Var>> {
    let (sa, sb) = (a.vars()?, b.vars()?);
    let mut out = Vec::with_capacity((sa.len() + sb.len()).min(cap + 1));
    let (mut i, mut j) = (0, 0);
    while i < sa.len() || j < sb.len() {
        let v = if j >= sb.len() || (i < sa.len() && sa[i] <= sb[j]) {
            if j < sb.len() && sa[i] == sb[j] {
                j += 1;
            }
            let v = sa[i];
            i += 1;
            v
        } else {
            let v = sb[j];
            j += 1;
            v
        };
        if out.len() == cap {
            return None;
        }
        out.push(v);
    }
    Some(out)
}

/// The P phase: prove simulatable POs constant zero by exhaustive
/// simulation of their global functions (§III-D).
///
/// Returns `Err(cex)` if a PO is proved nonzero (real disproof).
fn po_phase(
    current: &mut Cow<'_, Aig>,
    exec: &Executor,
    cfg: &EngineConfig,
    stats: &mut EngineStats,
    token: &CancelToken,
) -> Result<(), Cex> {
    // Unique (var, complement) targets among the POs.
    let mut targets: Vec<(Var, bool)> = Vec::new();
    for &po in current.pos() {
        if po == Lit::FALSE {
            continue;
        }
        if po == Lit::TRUE {
            return Err(Cex::new(vec![false; current.num_pis()]));
        }
        let t = (po.var(), po.is_complemented());
        if !targets.contains(&t) {
            targets.push(t);
        }
    }
    if targets.is_empty() {
        return Ok(());
    }
    let supports = current.bounded_supports(cfg.k_po_all);
    let all_fit = targets
        .iter()
        .all(|(v, _)| supports[v.index()].size().is_some());
    // Two-threshold budget: one-shot checking with k_P when every PO
    // fits, otherwise only POs within k_p.
    let limit = if all_fit { cfg.k_po_all } else { cfg.k_po };
    let k_s = limit;

    let mut windows: Vec<Window> = Vec::new();
    for &(v, complement) in &targets {
        let Some(sup) = supports[v.index()].vars() else {
            continue;
        };
        if sup.len() > limit {
            continue;
        }
        let pair = PairCheck {
            a: Var::FALSE,
            b: v,
            complement,
        };
        // Bounded supports are ascending by construction (sorted merges).
        if let Some(w) = Window::for_sorted_inputs(current, pair, sup.to_vec()) {
            windows.push(w);
        }
    }
    if windows.is_empty() {
        return Ok(());
    }
    windows = apply_merging(windows, k_s, cfg.window_merging);
    let outcomes = check_in_batches(current, exec, &windows, cfg, stats, token);

    let mut proved: Vec<(Var, bool)> = Vec::new();
    for (w, win) in windows.iter().enumerate() {
        for (k, outcome) in outcomes[w].iter().enumerate() {
            let pair = win.pairs[k];
            match outcome {
                PairOutcome::Equal => proved.push((pair.b, pair.complement)),
                PairOutcome::Mismatch { assignment, .. } => {
                    let sparse: Vec<(Var, bool)> = win
                        .inputs
                        .iter()
                        .copied()
                        .zip(assignment.iter().copied())
                        .collect();
                    return Err(Cex::from_sparse(current, &sparse));
                }
            }
        }
    }
    if !proved.is_empty() {
        let cur = current.to_mut();
        for i in 0..cur.num_pos() {
            let po = cur.po(i);
            if proved.contains(&(po.var(), po.is_complemented())) {
                cur.set_po(i, Lit::FALSE);
                stats.pos_proved += 1;
            }
        }
        *cur = cur.clean();
    }
    Ok(())
}

/// The non-constant PO variables, sorted and deduplicated — kept live in
/// pruned simulation rounds so the counter-example scan reads real words,
/// never a dead node's zeroed buffer (which would false-fire on a
/// complemented PO).
fn po_vars(aig: &Aig) -> Vec<Var> {
    let mut out: Vec<Var> = aig
        .pos()
        .iter()
        .filter(|po| !po.is_const())
        .map(|po| po.var())
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The G phase: initialize ECs by random simulation, then prove/disprove
/// candidate pairs whose support union fits `k_g`, refining classes with
/// counter-examples and reducing the miter (§III-D).
///
/// Returns the surviving live set (undecided class members, in the final
/// miter's coordinates) for the L phases to prune against, or `None` if
/// the phase never built EC state.
fn global_phase(
    current: &mut Cow<'_, Aig>,
    exec: &Executor,
    cfg: &EngineConfig,
    stats: &mut EngineStats,
    disproofs: &mut Vec<Cex>,
    token: &CancelToken,
) -> Result<Option<Vec<Var>>, Cex> {
    global_phase_inner(current, exec, cfg, stats, disproofs, true, token)
}

/// The G phase body; with `miter_mode` off (FRAIG construction), firing
/// POs are not treated as disproofs.
///
/// Round 0 simulates every node once and keeps both the patterns and the
/// signature table. Later rounds are incremental: fresh patterns simulate
/// only the live cone ([`parsweep_sim::simulate_pruned`]) and refine the
/// classes in place; when proved pairs rewrite the miter, the base table
/// is carried over by dirty-cone resimulation instead of a full rerun.
#[allow(clippy::too_many_arguments)]
pub(crate) fn global_phase_inner(
    current: &mut Cow<'_, Aig>,
    exec: &Executor,
    cfg: &EngineConfig,
    stats: &mut EngineStats,
    disproofs: &mut Vec<Cex>,
    miter_mode: bool,
    token: &CancelToken,
) -> Result<Option<Vec<Var>>, Cex> {
    let counters = trace::metrics::sim_counters();
    let mut cex_pool: Vec<Cex> = Vec::new();
    let mut base_patterns: Option<Patterns> = None;
    let mut ec: Option<EcManager> = None;
    for round in 0..cfg.max_global_rounds {
        if is_proved(current) || token.is_cancelled() {
            break;
        }
        let mut round_span = trace::span("engine", "engine.round.G");
        round_span.arg_u64("round", round as u64);
        round_span.arg_u64("ands", current.num_ands() as u64);
        let mut patterns = Patterns::random(
            current.num_pis(),
            cfg.sim_words,
            cfg.seed ^ (round as u64 + 1),
        );
        let cex_patterns = if cfg.distance1_cex {
            Patterns::from_cexs_distance1(current, &cex_pool, cfg.seed ^ 0xd1)
        } else {
            Patterns::from_cexs(current, &cex_pool)
        };
        if let Some(cex_patterns) = cex_patterns {
            patterns.extend(&cex_patterns);
        }
        cex_pool.clear();
        // An ODC candidate this round's refinement split on unobservable
        // bits only, proven replaceable by the exact bounded check; it is
        // merged after the round's exact merges, through a second rewrite.
        let mut odc_merge: Option<parsweep_sim::OdcCandidate> = None;
        match ec.as_mut() {
            None => {
                let m = EcManager::from_patterns_with(current, exec, &patterns, cfg.sig_window);
                if miter_mode {
                    if let Some(cex) = find_po_counterexample(current, m.signatures(), &patterns) {
                        return Err(cex);
                    }
                }
                ec = Some(m);
                base_patterns = Some(patterns);
            }
            Some(m) => {
                let extra = if miter_mode {
                    po_vars(current)
                } else {
                    Vec::new()
                };
                let (fresh, refined, covered) = match &cfg.odc {
                    Some(odc_cfg) => {
                        let fanouts = parsweep_sim::Fanouts::build(current);
                        let (fresh, refined, covered, candidates) = m.refine_with_odc(
                            current,
                            exec,
                            &patterns,
                            &extra,
                            &fanouts,
                            odc_cfg.check_limit,
                        );
                        odc_merge = candidates.into_iter().find(|c| {
                            current.node(c.member).is_and()
                                && parsweep_sim::check_replaceable(
                                    current,
                                    c.repr,
                                    c.member,
                                    c.complement,
                                    &fanouts,
                                    odc_cfg,
                                )
                        });
                        (fresh, refined, covered)
                    }
                    None => m.refine_with(current, exec, &patterns, &extra),
                };
                stats.pruned_sim_rounds += 1;
                stats.classes_refined += refined as u64;
                trace::metrics::SimCounters::add(&counters.pruned_rounds, 1);
                trace::metrics::SimCounters::add(&counters.classes_refined, refined as u64);
                trace::metrics::SimCounters::add(
                    &counters.pruned_nodes_skipped,
                    current.num_nodes().saturating_sub(covered) as u64,
                );
                if miter_mode {
                    if let Some(cex) = find_po_counterexample(current, &fresh, &patterns) {
                        return Err(cex);
                    }
                }
            }
        }
        let supports = current.bounded_supports(cfg.k_g);
        let mut windows: Vec<Window> = Vec::new();
        let mut skipped_const: Vec<PairCheck> = Vec::new();
        let candidate_pairs = ec
            .as_ref()
            .expect("EC state initialized above")
            .pairs(current);
        for pair in candidate_pairs {
            let Some(union) = union_support(
                &supports[pair.a.index()],
                &supports[pair.b.index()],
                cfg.k_g,
            ) else {
                if pair.a.is_const() {
                    skipped_const.push(pair);
                }
                continue;
            };
            // `union_support` merges two sorted supports, so the union is
            // already ascending and deduplicated.
            if let Some(w) = Window::for_sorted_inputs(current, pair, union) {
                windows.push(w);
            }
        }
        // Reverse simulation (§V): try to justify a non-constant value on
        // wide-support constant candidates; verified patterns become
        // class-splitting counter-examples for the next round.
        if cfg.reverse_sim && !skipped_const.is_empty() {
            let mut rng = parsweep_aig::random::SplitMix64::new(cfg.seed ^ 0xbac2);
            for pair in skipped_const.iter().take(32) {
                // The member's constant value is `complement` (its sig is
                // all-`complement`); justify the opposite.
                let target = pair.b.lit_with(pair.complement);
                if let Some(pattern) =
                    parsweep_sim::reverse::justify_with_retries(current, target, true, 4, &mut rng)
                {
                    cex_pool.push(Cex::new(pattern));
                    stats.disproved_pairs += 1;
                }
            }
        }
        if windows.is_empty() {
            break;
        }
        windows = apply_merging(windows, cfg.k_g, cfg.window_merging);
        let outcomes = check_in_batches(current, exec, &windows, cfg, stats, token);

        let mut subst: Vec<Lit> = (0..current.num_nodes())
            .map(|i| Var::new(i as u32).lit())
            .collect();
        let mut proved_any = false;
        for (w, win) in windows.iter().enumerate() {
            for (k, outcome) in outcomes[w].iter().enumerate() {
                let pair = win.pairs[k];
                match outcome {
                    PairOutcome::Equal => {
                        subst[pair.b.index()] = pair.a.lit_with(pair.complement);
                        stats.proved_pairs += 1;
                        proved_any = true;
                    }
                    PairOutcome::Mismatch { assignment, .. } => {
                        let sparse: Vec<(Var, bool)> = win
                            .inputs
                            .iter()
                            .copied()
                            .zip(assignment.iter().copied())
                            .collect();
                        let cex = Cex::from_sparse(current, &sparse);
                        if disproofs.len() < 4096 {
                            disproofs.push(cex.clone());
                        }
                        cex_pool.push(cex);
                        stats.disproved_pairs += 1;
                    }
                }
            }
        }
        if proved_any {
            let (reduced, map) = current.rebuild_with_substitution(&subst);
            // Carry the EC state across the rewrite: dirty-cone resim of
            // the base table instead of a full round-0 rerun.
            let (clean, dirty) = ec.as_mut().expect("EC state initialized above").rebuild(
                current,
                &reduced,
                &map,
                &subst,
                exec,
                base_patterns
                    .as_ref()
                    .expect("base patterns kept with EC state"),
            );
            stats.resim_clean_nodes += clean as u64;
            stats.resim_dirty_nodes += dirty as u64;
            trace::metrics::SimCounters::add(&counters.resim_clean_nodes, clean as u64);
            trace::metrics::SimCounters::add(&counters.resim_dirty_nodes, dirty as u64);
            *current = Cow::Owned(reduced);
            // Rename the pending ODC merge into the rewritten
            // coordinates (drop it if the exact prover already merged
            // the member, or the rewrite collapsed the pair).
            odc_merge = odc_merge.and_then(|c| {
                if subst[c.member.index()] != c.member.lit() {
                    return None;
                }
                let rl = map[c.repr.index()];
                let ml = map[c.member.index()];
                if rl.is_const() || ml.is_const() || rl.var() == ml.var() {
                    return None;
                }
                Some(parsweep_sim::OdcCandidate {
                    repr: rl.var(),
                    member: ml.var(),
                    complement: c.complement ^ rl.is_complemented() ^ ml.is_complemented(),
                })
            });
        }
        // Apply at most one ODC merge per round, through its own rewrite
        // (the proof is PO-function-preserving, which the exact rewrite
        // above does not disturb). With `resim_skip`, the substituted
        // node is exempt from resim taint: its TFO keeps memoized words,
        // stale in unobservable bits only.
        let mut odc_merged = false;
        if let Some(c) = odc_merge {
            if c.repr < c.member && current.node(c.member).is_and() {
                let odc_cfg = cfg.odc.as_ref().expect("ODC merges require cfg.odc");
                let mut subst2: Vec<Lit> = (0..current.num_nodes())
                    .map(|i| Var::new(i as u32).lit())
                    .collect();
                subst2[c.member.index()] = c.repr.lit_with(c.complement);
                let (reduced, map2) = current.rebuild_with_substitution(&subst2);
                let exempt: &[Var] = if odc_cfg.resim_skip { &[c.member] } else { &[] };
                let (clean, dirty) = ec
                    .as_mut()
                    .expect("EC state initialized above")
                    .rebuild_exempt(
                        current,
                        &reduced,
                        &map2,
                        &subst2,
                        exempt,
                        exec,
                        base_patterns
                            .as_ref()
                            .expect("base patterns kept with EC state"),
                    );
                stats.resim_clean_nodes += clean as u64;
                stats.resim_dirty_nodes += dirty as u64;
                stats.odc_masked_merges += 1;
                trace::metrics::SimCounters::add(&counters.resim_clean_nodes, clean as u64);
                trace::metrics::SimCounters::add(&counters.resim_dirty_nodes, dirty as u64);
                trace::metrics::SimCounters::add(&counters.odc_masked_merges, 1);
                *current = Cow::Owned(reduced);
                odc_merged = true;
            }
        }
        if !proved_any && !odc_merged && cex_pool.is_empty() {
            break;
        }
    }
    Ok(ec.map(|m| m.live_vars()))
}

/// What an L phase reports back: whether the miter shrank, the per-pass
/// proof counts, and the next phase's live set.
type LocalPhaseOutcome = (bool, Vec<u64>, Option<Vec<Var>>);

/// One L phase: three cut generation and checking passes (Algorithm 2)
/// followed by miter reduction. Returns whether the miter shrank, the
/// per-pass proof counts, and the next phase's live set.
#[allow(clippy::too_many_arguments)]
fn local_phase(
    current: &mut Cow<'_, Aig>,
    exec: &Executor,
    cfg: &EngineConfig,
    passes: &[Pass],
    stats: &mut EngineStats,
    phase: u64,
    live: Option<&[Var]>,
    token: &CancelToken,
) -> Result<LocalPhaseOutcome, Cex> {
    local_phase_inner(current, exec, cfg, passes, stats, phase, true, live, token)
}

/// The L phase body; with `miter_mode` off (FRAIG construction), firing
/// POs are not treated as disproofs.
///
/// With `live` set (the previous phase's undecided class members),
/// simulation is support-pruned to their TFI cone and cut enumeration is
/// restricted to it; without it (cold entry, e.g. after a cancelled G
/// phase) the phase falls back to full simulation. Returns the next
/// phase's live set — the surviving class members mapped through this
/// phase's rewrite.
#[allow(clippy::too_many_arguments)]
pub(crate) fn local_phase_inner(
    current: &mut Cow<'_, Aig>,
    exec: &Executor,
    cfg: &EngineConfig,
    passes: &[Pass],
    stats: &mut EngineStats,
    phase: u64,
    miter_mode: bool,
    live: Option<&[Var]>,
    token: &CancelToken,
) -> Result<LocalPhaseOutcome, Cex> {
    let counters = trace::metrics::sim_counters();
    let mut round_span = trace::span("engine", "engine.round.L");
    round_span.arg_u64("phase", phase);
    let before = current.num_ands();
    round_span.arg_u64("ands", before as u64);
    let patterns = Patterns::random(
        current.num_pis(),
        cfg.sim_words,
        cfg.seed ^ 0x10ca1 ^ (phase.wrapping_mul(0x9e37_79b9)),
    );
    let ec = match live {
        Some(candidates) => {
            let extra = if miter_mode {
                po_vars(current)
            } else {
                Vec::new()
            };
            let m = EcManager::from_patterns_pruned_with(
                current,
                exec,
                &patterns,
                candidates,
                &extra,
                cfg.sig_window,
            );
            stats.pruned_sim_rounds += 1;
            trace::metrics::SimCounters::add(&counters.pruned_rounds, 1);
            if let Some(covered) = m.simulated_nodes() {
                trace::metrics::SimCounters::add(
                    &counters.pruned_nodes_skipped,
                    current.num_nodes().saturating_sub(covered) as u64,
                );
            }
            m
        }
        None => EcManager::from_patterns_with(current, exec, &patterns, cfg.sig_window),
    };
    if miter_mode {
        if let Some(cex) = find_po_counterexample(current, ec.signatures(), &patterns) {
            return Err(cex);
        }
    }
    // Cut enumeration only needs nodes inside the candidates' cones.
    let live_cone = live.map(|_| current.tfi_cone(&ec.live_vars()));
    let repr_map = ec.repr_map(current.num_nodes());
    let mut subst: Vec<Lit> = (0..current.num_nodes())
        .map(|i| Var::new(i as u32).lit())
        .collect();
    let mut proved = vec![false; current.num_nodes()];
    let mut per_pass = Vec::with_capacity(passes.len());
    for &pass in passes {
        if token.is_cancelled() {
            // Keep `per_pass` aligned with `passes` for adaptive disabling.
            per_pass.push(0);
            continue;
        }
        let before_pairs = stats.proved_pairs;
        run_cut_pass(
            current,
            exec,
            cfg,
            pass,
            &ec,
            &repr_map,
            live_cone.as_deref(),
            &mut subst,
            &mut proved,
            stats,
            token,
        );
        per_pass.push(stats.proved_pairs - before_pairs);
    }
    let rewrite_map = if proved.iter().any(|&p| p) {
        let (reduced, map) = current.rebuild_with_substitution(&subst);
        *current = Cow::Owned(reduced);
        Some(map)
    } else {
        None
    };
    // The next phase's live set: this phase's undecided members, renamed
    // through the rewrite (merged members collapse onto their
    // representative's image; members folded to a constant drop out).
    let mut next_live: Vec<Var> = ec
        .classes()
        .iter()
        .flatten()
        .filter_map(|&m| match &rewrite_map {
            Some(map) => {
                let lit = map[m.index()];
                if lit.is_const() {
                    m.is_const().then_some(Var::FALSE)
                } else {
                    Some(lit.var())
                }
            }
            None => Some(m),
        })
        .collect();
    next_live.sort_unstable();
    next_live.dedup();
    Ok((current.num_ands() < before, per_pass, Some(next_live)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::miter;

    fn exec() -> Executor {
        Executor::with_threads(1)
    }

    fn adder(width: usize, ripple: bool) -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_inputs(width);
        let b = aig.add_inputs(width);
        let mut carry = Lit::FALSE;
        for i in 0..width {
            let axb = aig.xor(a[i], b[i]);
            let sum = aig.xor(axb, carry);
            let new_carry = if ripple {
                let t = aig.and(a[i], b[i]);
                let u = aig.and(axb, carry);
                aig.or(t, u)
            } else {
                aig.maj3(a[i], b[i], carry)
            };
            aig.add_po(sum);
            carry = new_carry;
        }
        aig.add_po(carry);
        aig
    }

    #[test]
    fn proves_adder_miter_in_po_phase() {
        // 4-bit adders: every PO support <= 8 <= k_P, so the P phase
        // should prove the whole miter one-shot.
        let m = miter(&adder(4, true), &adder(4, false)).unwrap();
        let r = sim_sweep(&m, &exec(), &EngineConfig::default());
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert!(r.stats.pos_proved > 0);
        assert_eq!(r.stats.reduction_pct(), 100.0);
    }

    #[test]
    fn disproves_with_valid_cex() {
        let a = adder(4, true);
        let mut b = adder(4, true);
        let po0 = b.po(0);
        b.set_po(0, !po0);
        let m = miter(&a, &b).unwrap();
        let r = sim_sweep(&m, &exec(), &EngineConfig::default());
        match r.verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&m)),
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn global_phase_handles_wide_pos() {
        // 20-bit adders: the top carry's support (40) exceeds the scaled
        // k_P = 18, so per-PO one-shot checking is partial; internal
        // global/local phases must still finish the job.
        let m = miter(&adder(20, true), &adder(20, false)).unwrap();
        let r = sim_sweep(&m, &exec(), &EngineConfig::default());
        assert_eq!(r.verdict, Verdict::Equivalent, "stats: {:?}", r.stats);
    }

    #[test]
    fn incremental_rounds_prune_and_refine() {
        // 20-bit adders run G rounds plus L phases; everything after the
        // first EC build must go through the pruned/refined path.
        let m = miter(&adder(20, true), &adder(20, false)).unwrap();
        let r = sim_sweep(&m, &exec(), &EngineConfig::default());
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert!(r.stats.pruned_sim_rounds > 0, "stats: {:?}", r.stats);
        // Merges happened, so the dirty-cone resimulator carried words.
        assert!(
            r.stats.resim_clean_nodes + r.stats.resim_dirty_nodes > 0,
            "stats: {:?}",
            r.stats
        );
    }

    #[test]
    fn traced_snapshots_cover_phases() {
        let m = miter(&adder(20, true), &adder(20, false)).unwrap();
        let (_, snaps) = sim_sweep_traced(&m, &exec(), &EngineConfig::default());
        let labels: Vec<&str> = snaps.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"P"));
    }

    #[test]
    fn undecided_returns_reduced_miter() {
        // Random equivalent pair with supports too big for the scaled
        // engine and a tiny local-phase budget: expect partial reduction.
        let m = miter(&adder(24, true), &adder(24, false)).unwrap();
        let cfg = EngineConfig {
            k_po_all: 6,
            k_po: 6,
            k_g: 6,
            max_local_phases: 1,
            cut: parsweep_cut::CutParams { k_l: 4, c: 4 },
            ..EngineConfig::default()
        };
        let r = sim_sweep(&m, &exec(), &cfg);
        // Whatever the verdict, the reduced miter must stay equivalent to
        // the original (spot-check by simulation).
        let mut rng = parsweep_aig::random::SplitMix64::new(9);
        for _ in 0..64 {
            let bits: Vec<bool> = (0..m.num_pis()).map(|_| rng.bool()).collect();
            let orig_fired = m.eval(&bits).iter().any(|&x| x);
            let red_fired = r.reduced.eval(&bits).iter().any(|&x| x);
            assert_eq!(orig_fired, red_fired);
        }
    }

    #[test]
    fn phase_breakdown_sums_to_wall_time() {
        // `other` is the signed residual, so the four phase times must
        // reconstruct the measured total exactly (up to float rounding)
        // instead of drifting when timers over-cover.
        let m = miter(&adder(8, true), &adder(8, false)).unwrap();
        let r = sim_sweep(&m, &exec(), &EngineConfig::default());
        let pt = r.stats.phase_times;
        assert!(
            (pt.total() - r.stats.seconds).abs() < 1e-9,
            "{pt:?} vs {}",
            r.stats.seconds
        );
    }

    #[test]
    fn union_support_bounds() {
        let a = Support::Exact(vec![Var::new(1), Var::new(2)]);
        let b = Support::Exact(vec![Var::new(2), Var::new(3)]);
        assert_eq!(
            union_support(&a, &b, 3),
            Some(vec![Var::new(1), Var::new(2), Var::new(3)])
        );
        assert_eq!(union_support(&a, &b, 2), None);
        assert_eq!(union_support(&a, &Support::Over, 8), None);
    }

    #[test]
    fn merge_strategies_agree_on_verdict() {
        let m = miter(&adder(8, true), &adder(8, false)).unwrap();
        for strategy in [
            crate::MergeStrategy::None,
            crate::MergeStrategy::Lexicographic,
            crate::MergeStrategy::Clustered,
        ] {
            let cfg = EngineConfig {
                window_merging: strategy,
                ..EngineConfig::default()
            };
            let r = sim_sweep(&m, &exec(), &cfg);
            assert_eq!(r.verdict, Verdict::Equivalent, "strategy {strategy:?}");
        }
    }

    #[test]
    fn extension_flags_preserve_verdicts() {
        let m = miter(&adder(10, true), &adder(10, false)).unwrap();
        let cfg = EngineConfig {
            distance1_cex: true,
            adaptive_passes: true,
            reverse_sim: true,
            ..EngineConfig::default()
        };
        let r = sim_sweep(&m, &exec(), &cfg);
        assert_eq!(r.verdict, Verdict::Equivalent);
    }

    #[test]
    fn windowed_streaming_preserves_verdicts() {
        // The miter exercises G rounds, refinement, rewrites and resim;
        // every residency policy must land on the same verdict as the
        // whole-table default, including the degenerate window sizes.
        let m = miter(&adder(20, true), &adder(20, false)).unwrap();
        let base = sim_sweep(&m, &exec(), &EngineConfig::default());
        assert_eq!(base.verdict, Verdict::Equivalent);
        for window in [
            parsweep_sim::SigWindowConfig::with_levels(1),
            parsweep_sim::SigWindowConfig::with_levels(4),
            parsweep_sim::SigWindowConfig::with_levels(usize::MAX),
            parsweep_sim::SigWindowConfig::with_levels(2).on_disk(),
        ] {
            let cfg = EngineConfig::default().with_sig_window(window);
            let r = sim_sweep(&m, &exec(), &cfg);
            assert_eq!(r.verdict, base.verdict, "window {window:?}");
            assert_eq!(
                r.stats.final_ands, base.stats.final_ands,
                "window {window:?}"
            );
        }
    }

    #[test]
    fn windowed_streaming_preserves_disproofs() {
        let a = adder(6, true);
        let mut b = adder(6, true);
        let po0 = b.po(0);
        b.set_po(0, !po0);
        let m = miter(&a, &b).unwrap();
        let cfg =
            EngineConfig::default().with_sig_window(parsweep_sim::SigWindowConfig::with_levels(1));
        let r = sim_sweep(&m, &exec(), &cfg);
        match r.verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&m)),
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn odc_layer_preserves_verdicts() {
        let m = miter(&adder(20, true), &adder(20, false)).unwrap();
        let cfg = EngineConfig::default()
            .with_odc()
            .with_sig_window(parsweep_sim::SigWindowConfig::with_levels(4));
        let r = sim_sweep(&m, &exec(), &cfg);
        assert_eq!(r.verdict, Verdict::Equivalent, "stats: {:?}", r.stats);
        let a = adder(6, true);
        let mut b = adder(6, true);
        let po0 = b.po(0);
        b.set_po(0, !po0);
        let ne = miter(&a, &b).unwrap();
        let r = sim_sweep(&ne, &exec(), &EngineConfig::default().with_odc());
        match r.verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&ne)),
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn reverse_sim_splits_wide_constant_candidates() {
        // Two deep AND cones over 24 inputs: random simulation leaves
        // both in the constant class, their support exceeds k_g, and with
        // k_P shrunk below 24 the P phase cannot separate them either.
        // Reverse simulation justifies a 1 and splits the class.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(24);
        let f = aig.and_all(xs.iter().copied());
        let mut g = xs[23];
        for &x in xs[..23].iter().rev() {
            g = aig.and(x, g);
        }
        let mi = aig.xor(f, g);
        aig.add_po(mi);
        let cfg = EngineConfig {
            k_po_all: 8,
            k_po: 8,
            k_g: 8,
            reverse_sim: true,
            ..EngineConfig::default()
        };
        let r = sim_sweep(&aig, &exec(), &cfg);
        // f and g are equivalent; with reverse simulation the engine must
        // not *disprove*, and the directed patterns let later phases see
        // the pair as non-constant (disproved_pairs counts the splits).
        assert!(!matches!(r.verdict, Verdict::NotEquivalent(_)));
        assert!(r.stats.disproved_pairs > 0, "stats: {:?}", r.stats);
    }
}

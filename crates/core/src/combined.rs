//! The combined flow: simulation-based engine + SAT sweeping fallback
//! (the paper's "Ours (GPU+ABC)" column).

use parsweep_aig::Aig;
use parsweep_par::{CancelToken, Executor};
use parsweep_sat::{
    sat_sweep_seeded_cancellable, PortfolioConfig, ProveOutcome, Prover, ProverConfig, ProverMode,
    SweepConfig, SweepResult, SweepStats, Verdict,
};
use parsweep_trace as trace;
use parsweep_trace::WallClock;

use crate::config::EngineConfig;
use crate::engine::{sim_sweep_cancellable, EngineResult};
use crate::prove::{build_prover, refine_velocity};

/// Configuration of the combined flow.
#[derive(Clone, Debug, Default)]
pub struct CombinedConfig {
    /// Simulation-based engine parameters.
    pub engine: EngineConfig,
    /// SAT sweeping parameters for the fallback checker.
    pub sat: SweepConfig,
    /// Seed the SAT fallback with the engine's disproof counter-examples,
    /// so pairs already disproved by exhaustive simulation are never
    /// re-checked by SAT — the paper's proposed *EC transfer* (§V). Off by
    /// default to match the paper's evaluated configuration.
    pub ec_transfer: bool,
    /// How residual undecided logic is finished.
    /// [`ProverMode::Sequential`] (the compatibility default) hands the
    /// whole reduced miter to the SAT sweeper, as before the adaptive
    /// refactor; [`ProverMode::Adaptive`] extracts each undecided PO cone
    /// and dispatches it through the adaptive [`Prover`], racing engines
    /// on hard cones with first-verdict-wins early cancellation.
    pub prover: ProverMode,
}

/// The outcome of the combined flow.
#[derive(Clone, Debug)]
pub struct CombinedResult {
    /// Final verdict.
    pub verdict: Verdict,
    /// The simulation-based engine's result (always runs first).
    pub engine: EngineResult,
    /// The SAT fallback's result, if the engine left the miter undecided.
    /// In adaptive mode this is synthesized from the dispatch outcomes
    /// (verdict, total seconds, aggregated SAT statistics).
    pub sat: Option<SweepResult>,
    /// Per-cone dispatch outcomes (adaptive mode only; empty otherwise).
    pub dispatch: Vec<ProveOutcome>,
    /// Engine wall-clock seconds (the paper's "GPU (s)").
    pub engine_seconds: f64,
    /// Fallback wall-clock seconds (the paper's "ABC (s)").
    pub sat_seconds: f64,
}

impl CombinedResult {
    /// Total wall-clock seconds of the combined flow.
    pub fn total_seconds(&self) -> f64 {
        self.engine_seconds + self.sat_seconds
    }
}

/// Runs the simulation-based engine and, if the miter remains undecided,
/// hands the reduced miter to the SAT sweeping checker.
pub fn combined_check(miter: &Aig, exec: &Executor, cfg: &CombinedConfig) -> CombinedResult {
    combined_check_cancellable(miter, exec, cfg, &CancelToken::never())
}

/// Like [`combined_check`], polling `token` at the engine's phase
/// boundaries and at the SAT fallback's budget checks (between conflict
/// budgets). On cancellation the flow stops where it is — possibly
/// between the two checkers — with an `Undecided` verdict and whatever
/// reduction completed; it never reports a wrong proof or disproof.
pub fn combined_check_cancellable(
    miter: &Aig,
    exec: &Executor,
    cfg: &CombinedConfig,
    token: &CancelToken,
) -> CombinedResult {
    match cfg.prover {
        ProverMode::Sequential => combined_check_sequential(miter, exec, cfg, token),
        ProverMode::Adaptive => {
            let prover = build_prover(
                ProverConfig {
                    mode: ProverMode::Adaptive,
                    ..ProverConfig::default()
                },
                &PortfolioConfig {
                    sweep: cfg.sat.clone(),
                    ..PortfolioConfig::default()
                },
                &cfg.engine,
            );
            combined_check_with_prover(miter, exec, cfg, &prover, token)
        }
    }
}

fn combined_check_sequential(
    miter: &Aig,
    exec: &Executor,
    cfg: &CombinedConfig,
    token: &CancelToken,
) -> CombinedResult {
    let engine = sim_sweep_cancellable(miter, exec, &cfg.engine, token);
    let engine_seconds = engine.stats.seconds;
    match engine.verdict {
        Verdict::Undecided => {
            let seeds: &[parsweep_sim::Cex] = if cfg.ec_transfer {
                &engine.disproof_cexs
            } else {
                &[]
            };
            let sat = {
                let mut span = trace::span("engine", "engine.sat_fallback");
                span.arg_u64("seeds", seeds.len() as u64);
                span.arg_u64("ands", engine.reduced.num_ands() as u64);
                sat_sweep_seeded_cancellable(&engine.reduced, exec, &cfg.sat, seeds, token)
            };
            let verdict = sat.verdict.clone();
            let sat_seconds = sat.stats.seconds;
            CombinedResult {
                verdict,
                engine,
                sat: Some(sat),
                dispatch: Vec::new(),
                engine_seconds,
                sat_seconds,
            }
        }
        ref v => {
            let verdict = v.clone();
            CombinedResult {
                verdict,
                engine,
                sat: None,
                dispatch: Vec::new(),
                engine_seconds,
                sat_seconds: 0.0,
            }
        }
    }
}

/// [`combined_check_cancellable`] with a caller-supplied adaptive
/// [`Prover`] — the service shares one prover (and its difficulty model)
/// across workers so routing keeps learning across jobs.
///
/// The sim engine runs first as always; each PO cone it leaves undecided
/// is extracted ([`Aig::extract_cone`]) and dispatched as its own class,
/// with the pass's sim-refinement velocity folded into the difficulty
/// features. Cones sharing a structure are proved once. Verdicts compose
/// soundly: all cones proved ⇒ `Equivalent`; any cone disproved ⇒
/// `NotEquivalent` with the counter-example lifted through the cone's PI
/// map; otherwise `Undecided` — cancellation anywhere stays partial,
/// never wrong.
pub fn combined_check_with_prover(
    miter: &Aig,
    exec: &Executor,
    cfg: &CombinedConfig,
    prover: &Prover,
    token: &CancelToken,
) -> CombinedResult {
    let engine = sim_sweep_cancellable(miter, exec, &cfg.engine, token);
    let engine_seconds = engine.stats.seconds;
    match engine.verdict {
        Verdict::Undecided => {
            let mut span = trace::span("engine", "engine.adaptive_dispatch");
            span.arg_u64("ands", engine.reduced.num_ands() as u64);
            let velocity = refine_velocity(&engine.stats);
            let (verdict, dispatch, sat_seconds, stats) =
                dispatch_residual_cones(&engine.reduced, exec, prover, velocity, token);
            span.arg_u64("cones", dispatch.len() as u64);
            let sat = SweepResult {
                verdict: verdict.clone(),
                reduced: engine.reduced.clone(),
                stats,
            };
            CombinedResult {
                verdict,
                engine,
                sat: Some(sat),
                dispatch,
                engine_seconds,
                sat_seconds,
            }
        }
        ref v => {
            let verdict = v.clone();
            CombinedResult {
                verdict,
                engine,
                sat: None,
                dispatch: Vec::new(),
                engine_seconds,
                sat_seconds: 0.0,
            }
        }
    }
}

/// Dispatches every undecided PO cone of the reduced miter through the
/// prover and composes the verdicts.
fn dispatch_residual_cones(
    reduced: &Aig,
    exec: &Executor,
    prover: &Prover,
    velocity: f64,
    token: &CancelToken,
) -> (Verdict, Vec<ProveOutcome>, f64, SweepStats) {
    let clock = WallClock::new();
    let mut outcomes: Vec<ProveOutcome> = Vec::new();
    let mut stats = SweepStats::default();
    // Structure-identical cones (hash then full comparison) are proved
    // once; disproof counter-examples are re-lifted per duplicate through
    // its own PI map.
    let mut seen: Vec<(u64, Aig, Verdict)> = Vec::new();
    let mut verdict = Verdict::Equivalent;
    let mut seconds = 0.0f64;
    for (i, po) in reduced.pos().iter().enumerate() {
        if po.var().is_const() {
            if *po != parsweep_aig::Lit::FALSE {
                // A constant-true PO: any assignment is a counter-example.
                verdict =
                    Verdict::NotEquivalent(parsweep_sim::Cex::new(vec![false; reduced.num_pis()]));
                break;
            }
            continue;
        }
        if token.is_cancelled() {
            verdict = Verdict::Undecided;
            break;
        }
        let ext = reduced.extract_cone(&[i]);
        let hash = ext.cone.structural_hash();
        let cone_verdict = match seen
            .iter()
            .find(|(h, c, _)| *h == hash && c.same_structure(&ext.cone))
        {
            Some((_, _, v)) => v.clone(),
            None => {
                let mut difficulty = prover.difficulty(&ext.cone);
                difficulty.refine_velocity = Some(velocity);
                let out = prover.prove_with_difficulty(&ext.cone, &difficulty, exec, token, &clock);
                seconds += out.seconds;
                stats.sat_calls += out.stats.sat_calls;
                stats.conflicts += out.stats.conflicts;
                stats.proved_pairs += out.stats.proved_pairs;
                stats.disproved_pairs += out.stats.disproved_pairs;
                let v = out.verdict.clone();
                seen.push((hash, ext.cone.clone(), v.clone()));
                outcomes.push(out);
                v
            }
        };
        match cone_verdict {
            Verdict::Equivalent => {}
            Verdict::NotEquivalent(cone_cex) => {
                // Lift positionally through the cone's PI map; original
                // PIs outside the cone's support are don't-cares.
                let dense = cone_cex.to_dense(&ext.cone);
                let sparse: Vec<_> = ext.pi_map.iter().copied().zip(dense).collect();
                verdict = Verdict::NotEquivalent(parsweep_sim::Cex::from_sparse(reduced, &sparse));
                break;
            }
            Verdict::Undecided => {
                // Keep probing the remaining cones: a later disproof still
                // settles the job, but a proof can no longer be claimed.
                verdict = Verdict::Undecided;
            }
        }
    }
    stats.seconds = seconds;
    (verdict, outcomes, seconds, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::{miter, Lit};

    fn exec() -> Executor {
        Executor::with_threads(1)
    }

    fn wide_multiplier_ish(width: usize, variant: bool) -> Aig {
        // A deep arithmetic-flavoured network: sum of partial products
        // folded with carries; two structural variants.
        let mut aig = Aig::new();
        let a = aig.add_inputs(width);
        let b = aig.add_inputs(width);
        let mut acc: Vec<Lit> = vec![Lit::FALSE; width];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = Lit::FALSE;
            for j in 0..width - i {
                let pp = aig.and(ai, b[j]);
                let s1 = aig.xor(acc[i + j], pp);
                let sum = aig.xor(s1, carry);
                let c = if variant {
                    let t0 = aig.and(acc[i + j], pp);
                    let t1 = aig.and(s1, carry);
                    aig.or(t0, t1)
                } else {
                    aig.maj3(acc[i + j], pp, carry)
                };
                acc[i + j] = sum;
                carry = c;
            }
        }
        for s in acc {
            aig.add_po(s);
        }
        aig
    }

    #[test]
    fn combined_flow_finishes_what_engine_starts() {
        let m = miter(
            &wide_multiplier_ish(5, false),
            &wide_multiplier_ish(5, true),
        )
        .unwrap();
        // Cripple the engine so SAT must finish the job.
        let mut cfg = CombinedConfig::default();
        cfg.engine.k_po_all = 4;
        cfg.engine.k_po = 4;
        cfg.engine.k_g = 4;
        cfg.engine.max_local_phases = 1;
        cfg.engine.cut = parsweep_cut::CutParams { k_l: 3, c: 2 };
        let r = combined_check(&m, &exec(), &cfg);
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert!(r.total_seconds() >= r.engine_seconds);
    }

    #[test]
    fn combined_flow_skips_sat_when_engine_proves() {
        let m = miter(
            &wide_multiplier_ish(4, false),
            &wide_multiplier_ish(4, true),
        )
        .unwrap();
        let r = combined_check(&m, &exec(), &CombinedConfig::default());
        assert_eq!(r.verdict, Verdict::Equivalent);
        if r.engine.verdict.is_equivalent() {
            assert!(r.sat.is_none());
            assert_eq!(r.sat_seconds, 0.0);
        }
    }

    #[test]
    fn ec_transfer_still_sound() {
        let m = miter(
            &wide_multiplier_ish(5, false),
            &wide_multiplier_ish(5, true),
        )
        .unwrap();
        let mut cfg = CombinedConfig {
            ec_transfer: true,
            ..CombinedConfig::default()
        };
        cfg.engine.k_po_all = 4;
        cfg.engine.k_po = 4;
        cfg.engine.k_g = 6;
        cfg.engine.max_local_phases = 1;
        let r = combined_check(&m, &exec(), &cfg);
        assert_eq!(r.verdict, Verdict::Equivalent);
    }

    #[test]
    fn adaptive_mode_matches_sequential_verdict() {
        let m = miter(
            &wide_multiplier_ish(5, false),
            &wide_multiplier_ish(5, true),
        )
        .unwrap();
        // Cripple the engine so the residual dispatch must finish the job.
        let mut cfg = CombinedConfig::default();
        cfg.engine.k_po_all = 4;
        cfg.engine.k_po = 4;
        cfg.engine.k_g = 4;
        cfg.engine.max_local_phases = 1;
        cfg.engine.cut = parsweep_cut::CutParams { k_l: 3, c: 2 };
        let seq = combined_check(&m, &exec(), &cfg);
        cfg.prover = ProverMode::Adaptive;
        let ada = combined_check(&m, &exec(), &cfg);
        assert_eq!(seq.verdict, Verdict::Equivalent);
        assert_eq!(ada.verdict, Verdict::Equivalent);
        assert!(
            !ada.dispatch.is_empty(),
            "adaptive mode must have dispatched residual cones"
        );
    }

    #[test]
    fn adaptive_mode_lifts_disproof_cexs() {
        let a = wide_multiplier_ish(5, false);
        let mut b = wide_multiplier_ish(5, true);
        let po = b.po(3);
        b.set_po(3, !po);
        let m = miter(&a, &b).unwrap();
        let mut cfg = CombinedConfig {
            prover: ProverMode::Adaptive,
            ..CombinedConfig::default()
        };
        // Cripple the engine so the corruption survives to the dispatcher.
        cfg.engine.k_po_all = 4;
        cfg.engine.k_po = 4;
        cfg.engine.k_g = 4;
        cfg.engine.max_local_phases = 1;
        cfg.engine.cut = parsweep_cut::CutParams { k_l: 3, c: 2 };
        let r = combined_check(&m, &exec(), &cfg);
        match r.verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&m), "lifted cex must fire the miter"),
            other => panic!("expected disproof, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_mode_cancellation_stays_partial_never_wrong() {
        let m = miter(
            &wide_multiplier_ish(6, false),
            &wide_multiplier_ish(6, true),
        )
        .unwrap();
        let mut cfg = CombinedConfig {
            prover: ProverMode::Adaptive,
            ..CombinedConfig::default()
        };
        cfg.engine.k_po_all = 4;
        cfg.engine.k_po = 4;
        cfg.engine.k_g = 4;
        cfg.engine.max_local_phases = 1;
        let token = CancelToken::new();
        token.cancel();
        let r = combined_check_cancellable(&m, &exec(), &cfg, &token);
        assert_eq!(
            r.verdict,
            Verdict::Undecided,
            "pre-cancelled adaptive run must stay undecided"
        );
    }

    #[test]
    fn combined_flow_propagates_disproof() {
        let a = wide_multiplier_ish(4, false);
        let mut b = wide_multiplier_ish(4, false);
        let po = b.po(1);
        b.set_po(1, !po);
        let m = miter(&a, &b).unwrap();
        let r = combined_check(&m, &exec(), &CombinedConfig::default());
        match r.verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&m)),
            other => panic!("expected disproof, got {other:?}"),
        }
    }
}

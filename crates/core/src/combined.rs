//! The combined flow: simulation-based engine + SAT sweeping fallback
//! (the paper's "Ours (GPU+ABC)" column).

use parsweep_aig::Aig;
use parsweep_par::{CancelToken, Executor};
use parsweep_sat::{sat_sweep_seeded_cancellable, SweepConfig, SweepResult, Verdict};
use parsweep_trace as trace;

use crate::config::EngineConfig;
use crate::engine::{sim_sweep_cancellable, EngineResult};

/// Configuration of the combined flow.
#[derive(Clone, Debug, Default)]
pub struct CombinedConfig {
    /// Simulation-based engine parameters.
    pub engine: EngineConfig,
    /// SAT sweeping parameters for the fallback checker.
    pub sat: SweepConfig,
    /// Seed the SAT fallback with the engine's disproof counter-examples,
    /// so pairs already disproved by exhaustive simulation are never
    /// re-checked by SAT — the paper's proposed *EC transfer* (§V). Off by
    /// default to match the paper's evaluated configuration.
    pub ec_transfer: bool,
}

/// The outcome of the combined flow.
#[derive(Clone, Debug)]
pub struct CombinedResult {
    /// Final verdict.
    pub verdict: Verdict,
    /// The simulation-based engine's result (always runs first).
    pub engine: EngineResult,
    /// The SAT fallback's result, if the engine left the miter undecided.
    pub sat: Option<SweepResult>,
    /// Engine wall-clock seconds (the paper's "GPU (s)").
    pub engine_seconds: f64,
    /// Fallback wall-clock seconds (the paper's "ABC (s)").
    pub sat_seconds: f64,
}

impl CombinedResult {
    /// Total wall-clock seconds of the combined flow.
    pub fn total_seconds(&self) -> f64 {
        self.engine_seconds + self.sat_seconds
    }
}

/// Runs the simulation-based engine and, if the miter remains undecided,
/// hands the reduced miter to the SAT sweeping checker.
pub fn combined_check(miter: &Aig, exec: &Executor, cfg: &CombinedConfig) -> CombinedResult {
    combined_check_cancellable(miter, exec, cfg, &CancelToken::never())
}

/// Like [`combined_check`], polling `token` at the engine's phase
/// boundaries and at the SAT fallback's budget checks (between conflict
/// budgets). On cancellation the flow stops where it is — possibly
/// between the two checkers — with an `Undecided` verdict and whatever
/// reduction completed; it never reports a wrong proof or disproof.
pub fn combined_check_cancellable(
    miter: &Aig,
    exec: &Executor,
    cfg: &CombinedConfig,
    token: &CancelToken,
) -> CombinedResult {
    let engine = sim_sweep_cancellable(miter, exec, &cfg.engine, token);
    let engine_seconds = engine.stats.seconds;
    match engine.verdict {
        Verdict::Undecided => {
            let seeds: &[parsweep_sim::Cex] = if cfg.ec_transfer {
                &engine.disproof_cexs
            } else {
                &[]
            };
            let sat = {
                let mut span = trace::span("engine", "engine.sat_fallback");
                span.arg_u64("seeds", seeds.len() as u64);
                span.arg_u64("ands", engine.reduced.num_ands() as u64);
                sat_sweep_seeded_cancellable(&engine.reduced, exec, &cfg.sat, seeds, token)
            };
            let verdict = sat.verdict.clone();
            let sat_seconds = sat.stats.seconds;
            CombinedResult {
                verdict,
                engine,
                sat: Some(sat),
                engine_seconds,
                sat_seconds,
            }
        }
        ref v => {
            let verdict = v.clone();
            CombinedResult {
                verdict,
                engine,
                sat: None,
                engine_seconds,
                sat_seconds: 0.0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::{miter, Lit};

    fn exec() -> Executor {
        Executor::with_threads(1)
    }

    fn wide_multiplier_ish(width: usize, variant: bool) -> Aig {
        // A deep arithmetic-flavoured network: sum of partial products
        // folded with carries; two structural variants.
        let mut aig = Aig::new();
        let a = aig.add_inputs(width);
        let b = aig.add_inputs(width);
        let mut acc: Vec<Lit> = vec![Lit::FALSE; width];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = Lit::FALSE;
            for j in 0..width - i {
                let pp = aig.and(ai, b[j]);
                let s1 = aig.xor(acc[i + j], pp);
                let sum = aig.xor(s1, carry);
                let c = if variant {
                    let t0 = aig.and(acc[i + j], pp);
                    let t1 = aig.and(s1, carry);
                    aig.or(t0, t1)
                } else {
                    aig.maj3(acc[i + j], pp, carry)
                };
                acc[i + j] = sum;
                carry = c;
            }
        }
        for s in acc {
            aig.add_po(s);
        }
        aig
    }

    #[test]
    fn combined_flow_finishes_what_engine_starts() {
        let m = miter(
            &wide_multiplier_ish(5, false),
            &wide_multiplier_ish(5, true),
        )
        .unwrap();
        // Cripple the engine so SAT must finish the job.
        let mut cfg = CombinedConfig::default();
        cfg.engine.k_po_all = 4;
        cfg.engine.k_po = 4;
        cfg.engine.k_g = 4;
        cfg.engine.max_local_phases = 1;
        cfg.engine.cut = parsweep_cut::CutParams { k_l: 3, c: 2 };
        let r = combined_check(&m, &exec(), &cfg);
        assert_eq!(r.verdict, Verdict::Equivalent);
        assert!(r.total_seconds() >= r.engine_seconds);
    }

    #[test]
    fn combined_flow_skips_sat_when_engine_proves() {
        let m = miter(
            &wide_multiplier_ish(4, false),
            &wide_multiplier_ish(4, true),
        )
        .unwrap();
        let r = combined_check(&m, &exec(), &CombinedConfig::default());
        assert_eq!(r.verdict, Verdict::Equivalent);
        if r.engine.verdict.is_equivalent() {
            assert!(r.sat.is_none());
            assert_eq!(r.sat_seconds, 0.0);
        }
    }

    #[test]
    fn ec_transfer_still_sound() {
        let m = miter(
            &wide_multiplier_ish(5, false),
            &wide_multiplier_ish(5, true),
        )
        .unwrap();
        let mut cfg = CombinedConfig {
            ec_transfer: true,
            ..CombinedConfig::default()
        };
        cfg.engine.k_po_all = 4;
        cfg.engine.k_po = 4;
        cfg.engine.k_g = 6;
        cfg.engine.max_local_phases = 1;
        let r = combined_check(&m, &exec(), &cfg);
        assert_eq!(r.verdict, Verdict::Equivalent);
    }

    #[test]
    fn combined_flow_propagates_disproof() {
        let a = wide_multiplier_ish(4, false);
        let mut b = wide_multiplier_ish(4, false);
        let po = b.po(1);
        b.set_po(1, !po);
        let m = miter(&a, &b).unwrap();
        let r = combined_check(&m, &exec(), &CombinedConfig::default());
        match r.verdict {
            Verdict::NotEquivalent(cex) => assert!(cex.fires(&m)),
            other => panic!("expected disproof, got {other:?}"),
        }
    }
}

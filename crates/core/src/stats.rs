//! Engine statistics and phase timing (feeds the Fig. 6 breakdown).

use std::fmt;

/// Wall-clock seconds spent in each phase type of the engine flow.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// PO checking phase (P).
    pub po: f64,
    /// Global function checking phase (G), including EC initialization.
    pub global: f64,
    /// Local function checking phases (L): cut generation + checking.
    pub local: f64,
    /// Everything else (simulation for refinement, reduction, bookkeeping),
    /// recorded as the *signed* residual `seconds - (po + global + local)`.
    /// A small negative value means the per-phase timers over-covered the
    /// total (timer skew) — it is reported rather than clamped to zero so
    /// the breakdown always sums to the measured wall time.
    pub other: f64,
}

impl PhaseTimes {
    /// Total time across phases.
    pub fn total(&self) -> f64 {
        self.po + self.global + self.local + self.other
    }

    /// Percentages `(po, global, local, other)` of the total.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            100.0 * self.po / t,
            100.0 * self.global / t,
            100.0 * self.local / t,
            100.0 * self.other / t,
        )
    }
}

/// Renders seconds as signed milliseconds (`12.3ms`, `-0.4ms`).
///
/// `other` is a *signed* residual: formatting must go through the float
/// formatter (which carries the sign), never through an unsigned integer
/// conversion — `(x * 1000.0) as u64` silently saturates a negative
/// residual to `0` and `as i64`-then-`u64` round trips wrap it into
/// astronomical garbage in the breakdown table.
fn fmt_ms(seconds: f64) -> String {
    format!("{:.1}ms", seconds * 1000.0)
}

impl fmt::Display for PhaseTimes {
    /// The phase breakdown as a one-line table in milliseconds. A
    /// negative `other` residual (phase timers over-covering the total)
    /// renders with an explicit minus sign, e.g. `other -0.3ms`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P {} | G {} | L {} | other {}",
            fmt_ms(self.po),
            fmt_ms(self.global),
            fmt_ms(self.local),
            fmt_ms(self.other)
        )
    }
}

/// Counters and timings of one engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// AND gates in the input miter.
    pub initial_ands: usize,
    /// AND gates in the reduced miter.
    pub final_ands: usize,
    /// POs proved constant zero by the P phase.
    pub pos_proved: usize,
    /// Candidate pairs proved equivalent (global + local).
    pub proved_pairs: u64,
    /// Candidate pairs disproved with counter-examples (global checking).
    pub disproved_pairs: u64,
    /// (pair, cut) checks that were inconclusive in local checking.
    pub inconclusive_checks: u64,
    /// Local checking phases executed.
    pub local_phases: u32,
    /// Total node-words simulated by the exhaustive simulator.
    pub sim_words: u64,
    /// Support-pruned partial-simulation rounds: G refinement rounds and
    /// L phases that simulated only the live cones instead of every node.
    pub pruned_sim_rounds: u32,
    /// Equivalence classes split in place by fresh-pattern refinement
    /// (instead of rebucketing every node from scratch each round).
    pub classes_refined: u64,
    /// Nodes whose signature words were carried across a miter rewrite by
    /// the dirty-cone resimulator (memoized in one copy launch).
    pub resim_clean_nodes: u64,
    /// Nodes re-launched by the dirty-cone resimulator (the TFO of merged
    /// nodes).
    pub resim_dirty_nodes: u64,
    /// Candidate pairs merged through the observability don't-care layer:
    /// their signatures disagreed only in unobservable bits and the exact
    /// bounded replaceability check proved the substitution
    /// PO-preserving. Zero unless [`EngineConfig::odc`](crate::EngineConfig)
    /// is set.
    pub odc_masked_merges: u64,
    /// Common cuts generated for local checking.
    pub common_cuts: u64,
    /// Per-phase wall-clock breakdown.
    pub phase_times: PhaseTimes,
    /// Total wall-clock seconds.
    pub seconds: f64,
    /// True if the run was cut short by a
    /// [`CancelToken`](parsweep_par::CancelToken) (deadline or explicit
    /// cancellation); the verdict is then partial: `Undecided` unless the
    /// work finished before the trip was observed.
    pub cancelled: bool,
}

impl EngineStats {
    /// Percentage reduction in miter size (the paper's "Reduced (%)").
    pub fn reduction_pct(&self) -> f64 {
        if self.initial_ands == 0 {
            100.0
        } else {
            100.0 * (self.initial_ands - self.final_ands) as f64 / self.initial_ands as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_percentage() {
        let s = EngineStats {
            initial_ands: 200,
            final_ands: 50,
            ..Default::default()
        };
        assert!((s.reduction_pct() - 75.0).abs() < 1e-9);
        let full = EngineStats {
            initial_ands: 10,
            final_ands: 0,
            ..Default::default()
        };
        assert_eq!(full.reduction_pct(), 100.0);
    }

    #[test]
    fn negative_residual_renders_signed_ms() {
        let t = PhaseTimes {
            po: 0.0012,
            global: 0.0100,
            local: 0.0024,
            other: -0.0003,
        };
        let text = t.to_string();
        assert_eq!(text, "P 1.2ms | G 10.0ms | L 2.4ms | other -0.3ms");
        // The failure mode this guards against: unsigned conversion of a
        // negative residual wrapping into garbage.
        assert!(!text.contains("18446744"), "wrapped u64 leaked: {text}");
    }

    #[test]
    fn phase_percentages_sum_to_100() {
        let t = PhaseTimes {
            po: 1.0,
            global: 2.0,
            local: 5.0,
            other: 2.0,
        };
        let (a, b, c, d) = t.percentages();
        assert!((a + b + c + d - 100.0).abs() < 1e-9);
        assert_eq!(PhaseTimes::default().percentages(), (0.0, 0.0, 0.0, 0.0));
    }
}

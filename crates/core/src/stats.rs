//! Engine statistics and phase timing (feeds the Fig. 6 breakdown).

/// Wall-clock seconds spent in each phase type of the engine flow.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// PO checking phase (P).
    pub po: f64,
    /// Global function checking phase (G), including EC initialization.
    pub global: f64,
    /// Local function checking phases (L): cut generation + checking.
    pub local: f64,
    /// Everything else (simulation for refinement, reduction, bookkeeping),
    /// recorded as the *signed* residual `seconds - (po + global + local)`.
    /// A small negative value means the per-phase timers over-covered the
    /// total (timer skew) — it is reported rather than clamped to zero so
    /// the breakdown always sums to the measured wall time.
    pub other: f64,
}

impl PhaseTimes {
    /// Total time across phases.
    pub fn total(&self) -> f64 {
        self.po + self.global + self.local + self.other
    }

    /// Percentages `(po, global, local, other)` of the total.
    pub fn percentages(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            100.0 * self.po / t,
            100.0 * self.global / t,
            100.0 * self.local / t,
            100.0 * self.other / t,
        )
    }
}

/// Counters and timings of one engine run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// AND gates in the input miter.
    pub initial_ands: usize,
    /// AND gates in the reduced miter.
    pub final_ands: usize,
    /// POs proved constant zero by the P phase.
    pub pos_proved: usize,
    /// Candidate pairs proved equivalent (global + local).
    pub proved_pairs: u64,
    /// Candidate pairs disproved with counter-examples (global checking).
    pub disproved_pairs: u64,
    /// (pair, cut) checks that were inconclusive in local checking.
    pub inconclusive_checks: u64,
    /// Local checking phases executed.
    pub local_phases: u32,
    /// Total node-words simulated by the exhaustive simulator.
    pub sim_words: u64,
    /// Common cuts generated for local checking.
    pub common_cuts: u64,
    /// Per-phase wall-clock breakdown.
    pub phase_times: PhaseTimes,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

impl EngineStats {
    /// Percentage reduction in miter size (the paper's "Reduced (%)").
    pub fn reduction_pct(&self) -> f64 {
        if self.initial_ands == 0 {
            100.0
        } else {
            100.0 * (self.initial_ands - self.final_ands) as f64 / self.initial_ands as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_percentage() {
        let s = EngineStats {
            initial_ands: 200,
            final_ands: 50,
            ..Default::default()
        };
        assert!((s.reduction_pct() - 75.0).abs() < 1e-9);
        let full = EngineStats {
            initial_ands: 10,
            final_ands: 0,
            ..Default::default()
        };
        assert_eq!(full.reduction_pct(), 100.0);
    }

    #[test]
    fn phase_percentages_sum_to_100() {
        let t = PhaseTimes {
            po: 1.0,
            global: 2.0,
            local: 5.0,
            other: 2.0,
        };
        let (a, b, c, d) = t.percentages();
        assert!((a + b + c + d - 100.0).abs() < 1e-9);
        assert_eq!(PhaseTimes::default().percentages(), (0.0, 0.0, 0.0, 0.0));
    }
}

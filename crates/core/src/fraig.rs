//! FRAIG construction: functionally reduced AIGs.
//!
//! Applies the engine's equivalence-finding machinery to a *single*
//! network instead of a miter: internal nodes proved functionally
//! equivalent (up to complement) are merged, so the result contains at
//! most one node per logic function that random simulation can separate —
//! the classic FRAIG of Mishchenko et al. that the paper builds on, with
//! exhaustive simulation as the prover instead of SAT.

use parsweep_aig::Aig;
use parsweep_par::{CancelToken, Executor};

use parsweep_trace as trace;

use crate::config::EngineConfig;
use crate::engine::{global_phase_inner, local_phase_inner, modeled_mark};
use crate::stats::EngineStats;

/// The result of FRAIG construction.
#[derive(Clone, Debug)]
pub struct FraigResult {
    /// The functionally reduced network (equivalent to the input).
    pub reduced: Aig,
    /// Engine statistics (proved pairs = number of merges).
    pub stats: EngineStats,
}

/// Functionally reduces a network by proving and merging equivalent
/// internal nodes (global checking within `k_g`, then repeated local
/// function checking phases).
///
/// Unlike [`sim_sweep`](crate::sim_sweep), POs are ordinary outputs — a
/// nonzero PO is *not* a counter-example — and the result keeps the full
/// PI/PO interface with reduced internal logic.
pub fn fraig(aig: &Aig, exec: &Executor, cfg: &EngineConfig) -> FraigResult {
    let start = std::time::Instant::now();
    let mark = modeled_mark(exec);
    let mut span = trace::span("engine", "engine.fraig");
    span.arg_u64("ands", aig.num_ands() as u64);
    let mut stats = EngineStats {
        initial_ands: aig.num_ands(),
        ..Default::default()
    };
    // Borrowed until a phase actually merges something: a network with no
    // provable duplicates is returned without ever being cloned.
    let mut current: std::borrow::Cow<'_, Aig> = std::borrow::Cow::Borrowed(aig);
    let mut disproofs = Vec::new();

    let never = CancelToken::never();
    let t = std::time::Instant::now();
    // In non-miter mode the G phase cannot return a counter-example.
    let mut live = global_phase_inner(
        &mut current,
        exec,
        cfg,
        &mut stats,
        &mut disproofs,
        false,
        &never,
    )
    .unwrap_or_default();
    stats.phase_times.global = t.elapsed().as_secs_f64();

    let t = std::time::Instant::now();
    for phase in 0..cfg.max_local_phases {
        stats.local_phases += 1;
        match local_phase_inner(
            &mut current,
            exec,
            cfg,
            &cfg.passes,
            &mut stats,
            phase as u64,
            false,
            live.as_deref(),
            &never,
        ) {
            Ok((reduced, _, next_live)) => {
                live = next_live;
                if !reduced {
                    break;
                }
            }
            Err(_) => unreachable!("non-miter mode produces no counter-examples"),
        }
    }
    stats.phase_times.local = t.elapsed().as_secs_f64();

    stats.final_ands = current.num_ands();
    stats.seconds = start.elapsed().as_secs_f64();
    span.arg_u64("modeled_time", modeled_mark(exec).saturating_sub(mark));
    FraigResult {
        reduced: current.into_owned(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::{Aig, Lit};

    fn exec() -> Executor {
        Executor::with_threads(1)
    }

    fn equivalent(a: &Aig, b: &Aig, samples: usize) -> bool {
        let mut rng = parsweep_aig::random::SplitMix64::new(31);
        (0..samples).all(|_| {
            let bits: Vec<bool> = (0..a.num_pis()).map(|_| rng.bool()).collect();
            a.eval(&bits) == b.eval(&bits)
        })
    }

    #[test]
    fn fraig_merges_duplicate_logic() {
        // The same XOR built three structurally different ways, all kept
        // alive through separate POs.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(2);
        let x1 = aig.xor(xs[0], xs[1]);
        let o = aig.or(xs[0], xs[1]);
        let n = aig.and(xs[0], xs[1]);
        let x2 = aig.and(o, !n);
        let t0 = aig.and(xs[0], xs[1]);
        let t1 = aig.and(!xs[0], !xs[1]);
        let x3 = {
            let nx = aig.or(t0, t1);
            !nx
        };
        aig.add_po(x1);
        aig.add_po(x2);
        aig.add_po(x3);
        let before = aig.num_ands();
        let r = fraig(&aig, &exec(), &EngineConfig::default());
        assert!(r.reduced.num_ands() < before, "stats: {:?}", r.stats);
        assert!(equivalent(&aig, &r.reduced, 16));
        assert!(r.stats.proved_pairs >= 1);
    }

    #[test]
    fn fraig_keeps_interface_and_function() {
        let aig = parsweep_aig::random::random_aig(8, 150, 5, 77);
        let r = fraig(&aig, &exec(), &EngineConfig::default());
        assert_eq!(r.reduced.num_pis(), aig.num_pis());
        assert_eq!(r.reduced.num_pos(), aig.num_pos());
        assert!(r.reduced.num_ands() <= aig.num_ands());
        assert!(equivalent(&aig, &r.reduced, 256));
    }

    #[test]
    fn fraig_does_not_misread_pos_as_disproofs() {
        // A network whose POs are frequently 1 (an OR): miter semantics
        // would "disprove" it instantly; FRAIG must simply reduce.
        let mut aig = Aig::new();
        let xs = aig.add_inputs(3);
        let o1 = aig.or_all(xs.iter().copied());
        let o2 = {
            let t = aig.or(xs[0], xs[1]);
            aig.or(t, xs[2])
        };
        aig.add_po(o1);
        aig.add_po(o2);
        let r = fraig(&aig, &exec(), &EngineConfig::default());
        assert!(equivalent(&aig, &r.reduced, 8));
        // Both OR trees collapse onto one.
        assert!(r.reduced.num_ands() <= 2);
        let _ = Lit::FALSE;
    }
}

//! The paper's simulation engine as a [`ProofEngine`], plus the standard
//! prover wiring the combined flow and the service use for adaptive
//! per-class dispatch.
//!
//! The dispatch layer lives in `parsweep-sat` (below this crate), so the
//! simulation-based engine — the paper's own prover — registers itself
//! *into* that layer from above: [`SimSweepEngine`] wraps
//! [`sim_sweep_cancellable`] behind the trait, and [`build_prover`]
//! assembles a [`Prover`] over the four portfolio stages plus the sim
//! engine.

use parsweep_aig::Aig;
use parsweep_par::{CancelToken, Executor};
use parsweep_sat::{
    standard_engines, Budget, Difficulty, EngineKind, EngineReport, PortfolioConfig, ProofEngine,
    Prover, ProverConfig, SweepStats,
};

use crate::config::EngineConfig;
use crate::engine::sim_sweep_cancellable;

/// The simulation-based sweeping engine (paper Fig. 1) behind the
/// dispatch layer's [`ProofEngine`] trait.
#[derive(Clone, Debug)]
pub struct SimSweepEngine {
    /// Engine parameters for the per-class runs.
    pub cfg: EngineConfig,
    /// Smallest cone (AND gates) worth the engine's kernel-launch
    /// overhead; smaller classes are left to the lighter engines.
    pub min_ands: usize,
}

impl SimSweepEngine {
    /// The engine with per-class-sized defaults.
    pub fn new(cfg: EngineConfig) -> Self {
        SimSweepEngine { cfg, min_ands: 64 }
    }
}

impl ProofEngine for SimSweepEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::SimSweep
    }

    fn admits(&self, difficulty: &Difficulty) -> bool {
        // When an upstream sim-sweep pass already produced this residual
        // cone, rerunning the same engine only pays off if that pass was
        // still refining classes when it stopped.
        difficulty.ands >= self.min_ands && difficulty.refine_velocity.is_none_or(|v| v > 0.0)
    }

    fn prior_cost_micros(&self, difficulty: &Difficulty) -> u64 {
        200 + difficulty.ands as u64 * 120
    }

    fn prove(
        &self,
        cone: &Aig,
        exec: &Executor,
        _budget: &Budget,
        token: &CancelToken,
    ) -> EngineReport {
        let result = sim_sweep_cancellable(cone, exec, &self.cfg, token);
        EngineReport {
            verdict: result.verdict,
            stats: SweepStats::default(),
        }
    }
}

/// Builds the standard adaptive prover: the four portfolio stages plus
/// the simulation engine, with difficulty caps mirroring the exhaustive
/// engine's admission bounds.
pub fn build_prover(
    prover_cfg: ProverConfig,
    portfolio: &PortfolioConfig,
    engine_cfg: &EngineConfig,
) -> Prover {
    let mut engines = standard_engines(portfolio);
    engines.push(Box::new(SimSweepEngine::new(engine_cfg.clone())));
    Prover::with_engines(prover_cfg, engines)
        .with_caps(portfolio.po_support_cap, portfolio.po_cone_cap)
}

/// The sim-refinement velocity feature of [`Difficulty`]: classes refined
/// per pruned simulation round of the pass that produced a residual cone.
pub fn refine_velocity(stats: &crate::EngineStats) -> f64 {
    stats.classes_refined as f64 / (stats.pruned_sim_rounds.max(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::miter;
    use parsweep_sat::{ProverMode, Verdict};

    #[test]
    fn sim_engine_proves_a_cone() {
        let a = parsweep_aig::random::random_aig(6, 120, 3, 11);
        let b = a.clean();
        let m = miter(&a, &b).unwrap();
        let exec = Executor::with_threads(1);
        let engine = SimSweepEngine {
            cfg: EngineConfig::default(),
            min_ands: 0,
        };
        let report = engine.prove(&m, &exec, &Budget::default(), &CancelToken::never());
        assert_eq!(report.verdict, Verdict::Equivalent);
    }

    #[test]
    fn sim_engine_respects_cancellation() {
        // Balanced vs right-associated conjunction: equivalent but not
        // structurally collapsible, so a pre-cancelled run cannot fall
        // through to an instant structural proof.
        let n = 16;
        let mut a = Aig::new();
        let xs = a.add_inputs(n);
        let f = a.and_all(xs.iter().copied());
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(n);
        let mut g = ys[n - 1];
        for &y in ys[..n - 1].iter().rev() {
            g = b.and(y, g);
        }
        b.add_po(g);
        let m = miter(&a, &b).unwrap();
        let exec = Executor::with_threads(1);
        let engine = SimSweepEngine::new(EngineConfig::default());
        let token = CancelToken::new();
        token.cancel();
        let report = engine.prove(&m, &exec, &Budget::default(), &token);
        assert_eq!(report.verdict, Verdict::Undecided);
    }

    #[test]
    fn standard_prover_includes_the_sim_engine() {
        let p = build_prover(
            ProverConfig {
                mode: ProverMode::Adaptive,
                ..ProverConfig::default()
            },
            &PortfolioConfig::default(),
            &EngineConfig::default(),
        );
        assert!(p.engine_kinds().contains(&EngineKind::SimSweep));
    }

    #[test]
    fn zero_velocity_residuals_skip_the_sim_engine() {
        let engine = SimSweepEngine::new(EngineConfig::default());
        let stalled = Difficulty {
            ands: 1000,
            refine_velocity: Some(0.0),
            ..Difficulty::default()
        };
        assert!(!engine.admits(&stalled));
        let cold = Difficulty {
            ands: 1000,
            ..Difficulty::default()
        };
        assert!(engine.admits(&cold));
    }
}

//! Human-readable reports of engine runs.

use std::fmt;

use parsweep_sat::Verdict;

use crate::engine::EngineResult;

/// A formatted, line-oriented report of one engine run — what `fig6`-style
/// tools print, available to library users as a `Display` value.
///
/// ```
/// use parsweep_aig::{Aig, miter};
/// use parsweep_core::{sim_sweep, EngineConfig, Report};
/// use parsweep_par::Executor;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Aig::new();
/// let xs = a.add_inputs(2);
/// let f = a.xor(xs[0], xs[1]);
/// a.add_po(f);
/// let m = miter(&a, &a.clone())?;
/// let exec = Executor::with_threads(1);
/// let result = sim_sweep(&m, &exec, &EngineConfig::default());
/// let text = Report::new(&result).to_string();
/// assert!(text.contains("verdict"));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Report<'a> {
    result: &'a EngineResult,
}

impl<'a> Report<'a> {
    /// Wraps an engine result for display.
    pub fn new(result: &'a EngineResult) -> Self {
        Report { result }
    }

    /// One-word verdict tag.
    pub fn verdict_tag(&self) -> &'static str {
        match self.result.verdict {
            Verdict::Equivalent => "equivalent",
            Verdict::NotEquivalent(_) => "not-equivalent",
            Verdict::Undecided => "undecided",
        }
    }
}

impl fmt::Display for Report<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.result.stats;
        let (p, g, l, o) = s.phase_times.percentages();
        writeln!(f, "verdict: {}", self.verdict_tag())?;
        writeln!(
            f,
            "miter:   {} -> {} ANDs ({:.1}% reduced)",
            s.initial_ands,
            s.final_ands,
            s.reduction_pct()
        )?;
        writeln!(
            f,
            "phases:  P {:.1}% | G {:.1}% | L {:.1}% | other {:.1}%  ({} local phases)",
            p, g, l, o, s.local_phases
        )?;
        // Absolute breakdown; `other` is a signed residual and may render
        // with a minus sign (see `PhaseTimes`'s `Display`).
        writeln!(f, "times:   {}", s.phase_times)?;
        writeln!(
            f,
            "proofs:  {} POs, {} pairs; {} pairs disproved; {} local checks inconclusive",
            s.pos_proved, s.proved_pairs, s.disproved_pairs, s.inconclusive_checks
        )?;
        write!(
            f,
            "effort:  {} simulated node-words, {} common cuts, {:.3}s",
            s.sim_words, s.common_cuts, s.seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sim_sweep, EngineConfig};
    use parsweep_aig::{miter, Aig};
    use parsweep_par::Executor;

    #[test]
    fn report_mentions_key_numbers() {
        let mut a = Aig::new();
        let xs = a.add_inputs(3);
        let f = a.maj3(xs[0], xs[1], xs[2]);
        a.add_po(f);
        let mut b = Aig::new();
        let ys = b.add_inputs(3);
        let or = b.or(ys[1], ys[2]);
        let and = b.and(ys[1], ys[2]);
        let g = b.mux(ys[0], or, and);
        b.add_po(g);
        let m = miter(&a, &b).unwrap();
        let r = sim_sweep(&m, &Executor::with_threads(1), &EngineConfig::default());
        let report = Report::new(&r);
        let text = report.to_string();
        assert_eq!(report.verdict_tag(), "equivalent");
        assert!(text.contains("100.0% reduced"));
        assert!(text.contains("phases:"));
        assert!(text.contains("effort:"));
    }
}

//! Local function checking: one cut generation and checking pass
//! (paper Algorithm 2).
//!
//! Priority cuts are computed for every node in *enumeration-level*
//! parallel order (Eq. 2), so a class representative's cuts exist before
//! its members select similarity-aligned cuts. Common cuts of each
//! candidate pair are pushed into a bounded buffer; whenever the buffer
//! fills, the exhaustive simulator checks the buffered local functions and
//! proved pairs are recorded for the end-of-phase miter reduction.

use parsweep_aig::{Aig, Lit, Var};
use parsweep_cut::{
    common_cuts, enumeration_groups, enumeration_levels, Cut, CutKernel, CutScorer, Pass,
};
use parsweep_par::{CancelToken, Executor};
use parsweep_sim::{PairCheck, PairOutcome, Window};

use crate::config::EngineConfig;
use crate::ec::EcManager;
use crate::engine::check_in_batches;
use crate::stats::EngineStats;

/// Runs one cut generation and checking pass with the given Table-I
/// criteria, accumulating proved pairs into `subst`/`proved`.
///
/// With `live_cone` set (the TFI cone of the undecided class members),
/// cut enumeration skips every node outside it: cuts are only ever read
/// inside a candidate pair's window cone, so dead regions of the miter
/// cost nothing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cut_pass(
    aig: &Aig,
    exec: &Executor,
    cfg: &EngineConfig,
    pass: Pass,
    ec: &EcManager,
    repr_map: &[Option<Var>],
    live_cone: Option<&[Var]>,
    subst: &mut [Lit],
    proved: &mut [bool],
    stats: &mut EngineStats,
    token: &CancelToken,
) {
    let fanouts = aig.fanout_counts();
    let levels = aig.levels();
    let el = enumeration_levels(aig, repr_map);
    let groups = enumeration_groups(aig, &el, live_cone);

    // Priority cut sets, leased from the executor's arena so successive
    // passes recycle one table; PIs seed with their trivial cut
    // (Algorithm 2 lines 4-5).
    let mut cut_sets = exec.arena().take::<Vec<Cut>>(aig.num_nodes());
    for &pi in aig.pis() {
        cut_sets[pi.index()] = vec![Cut::trivial(pi)];
    }
    let scorer = CutScorer::new(&fanouts, &levels);
    let kernel = CutKernel::new(
        aig,
        repr_map,
        cfg.similarity_selection,
        scorer,
        cfg.cut,
        pass,
    );

    let mut buffer: Vec<(PairCheck, Cut)> = Vec::with_capacity(cfg.cut_buffer_capacity);
    let sigs = ec.signatures();

    for group in groups.iter().skip(1) {
        if group.is_empty() {
            continue;
        }
        // Enumeration-level boundary: the natural cancellation point —
        // cuts for lower levels are complete, higher levels untouched.
        if token.is_cancelled() {
            buffer.clear();
            break;
        }
        // Parallel priority-cut computation for this enumeration level.
        kernel.compute_level(exec, group, &mut cut_sets);

        // Generate the common cuts of pairs whose member sits at this
        // level, buffering for batched checking (Algorithm 2 lines 11-16).
        for &v in group {
            let Some(r) = repr_map[v.index()] else {
                continue;
            };
            if proved[v.index()] {
                continue;
            }
            let pair = PairCheck {
                a: r,
                b: v,
                complement: sigs.phase(r) != sigs.phase(v),
            };
            let cmn: Vec<Cut> = if r.is_const() {
                // Constant candidates: prove the member's local function
                // constant over its own priority cuts.
                cut_sets[v.index()].clone()
            } else {
                common_cuts(&cut_sets[r.index()], &cut_sets[v.index()], cfg.cut)
            };
            stats.common_cuts += cmn.len() as u64;
            for cut in cmn {
                buffer.push((pair, cut));
                if buffer.len() >= cfg.cut_buffer_capacity {
                    flush_buffer(aig, exec, cfg, &mut buffer, subst, proved, stats, token);
                }
            }
        }
    }
    flush_buffer(aig, exec, cfg, &mut buffer, subst, proved, stats, token);
}

/// Checks all buffered (pair, cut) local functions with the exhaustive
/// simulator and records proved pairs.
#[allow(clippy::too_many_arguments)]
fn flush_buffer(
    aig: &Aig,
    exec: &Executor,
    cfg: &EngineConfig,
    buffer: &mut Vec<(PairCheck, Cut)>,
    subst: &mut [Lit],
    proved: &mut [bool],
    stats: &mut EngineStats,
    token: &CancelToken,
) {
    if buffer.is_empty() {
        return;
    }
    let mut windows: Vec<Window> = Vec::new();
    for (pair, cut) in buffer.drain(..) {
        if proved[pair.b.index()] {
            continue;
        }
        // Cut leaves are sorted and deduplicated by construction, so the
        // window can skip its defensive re-sort.
        if let Some(w) = Window::for_sorted_inputs(aig, pair, cut.to_vars()) {
            windows.push(w);
        }
    }
    if windows.is_empty() {
        return;
    }
    let outcomes = check_in_batches(aig, exec, &windows, cfg, stats, token);
    for (w, win) in windows.iter().enumerate() {
        let pair = win.pairs[0];
        // A cancelled batch leaves this window's outcomes empty: record
        // nothing (no proof is the sound default).
        match outcomes[w].first() {
            None => continue,
            Some(PairOutcome::Equal) => {
                if !proved[pair.b.index()] {
                    proved[pair.b.index()] = true;
                    subst[pair.b.index()] = pair.a.lit_with(pair.complement);
                    stats.proved_pairs += 1;
                }
            }
            Some(PairOutcome::Mismatch { .. }) => {
                // Local mismatch may be a satisfiability don't-care: the
                // pair stays inconclusive (§III-C1).
                stats.inconclusive_checks += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_sim::Patterns;

    fn exec() -> Executor {
        Executor::with_threads(1)
    }

    /// A miter-shaped network with an internal pair that global checking
    /// would need 2^20 patterns for, but a 3-input cut proves locally.
    fn wide_support_pair() -> (Aig, Var, Var) {
        let mut aig = Aig::new();
        let xs = aig.add_inputs(20);
        // Deep shared base: three 6-7 input AND cones.
        let f = aig.and_all(xs[0..7].iter().copied());
        let g = aig.and_all(xs[7..14].iter().copied());
        let h = aig.and_all(xs[14..20].iter().copied());
        // Two structurally different but equal combinations of f, g, h.
        let fg = aig.and(f, g);
        let n1 = aig.and(fg, h);
        let gh = aig.and(g, h);
        let n2 = aig.and(f, gh);
        let mi = aig.xor(n1, n2);
        aig.add_po(mi);
        (aig, n1.var(), n2.var())
    }

    #[test]
    fn local_pass_proves_miter_nodes_constant() {
        // Random simulation puts the heavily-biased nodes into the
        // constant class; the local pass must then prove the miter's XOR
        // arms constant zero over SDC-revealing cuts (n1 and n2 agree on
        // every non-don't-care pattern), which empties the miter after
        // reduction.
        let (aig, _n1, n2) = wide_support_pair();
        let cfg = EngineConfig::default();
        let patterns = Patterns::random(aig.num_pis(), 8, 3);
        let ec = EcManager::from_patterns(&aig, &exec(), &patterns);
        let repr_map = ec.repr_map(aig.num_nodes());
        assert!(
            repr_map[n2.index()].is_some(),
            "classes: {:?}",
            ec.classes()
        );
        let mut subst: Vec<Lit> = (0..aig.num_nodes())
            .map(|i| Var::new(i as u32).lit())
            .collect();
        let mut proved = vec![false; aig.num_nodes()];
        let mut stats = EngineStats::default();
        for pass in parsweep_cut::Pass::ALL {
            run_cut_pass(
                &aig,
                &exec(),
                &cfg,
                pass,
                &ec,
                &repr_map,
                None,
                &mut subst,
                &mut proved,
                &mut stats,
                &CancelToken::never(),
            );
        }
        assert!(stats.proved_pairs >= 1, "stats: {stats:?}");
        let (reduced, _) = aig.rebuild_with_substitution(&subst);
        assert!(parsweep_aig::is_proved(&reduced), "stats: {stats:?}");
    }

    #[test]
    fn proved_pairs_reduce_the_miter() {
        let (aig, _, _) = wide_support_pair();
        let cfg = EngineConfig::default();
        let r = crate::engine::sim_sweep(&aig, &exec(), &cfg);
        assert!(r.verdict.is_equivalent(), "stats: {:?}", r.stats);
    }
}

//! Counter-example diagnosis: once a miter is disproved, localize *which*
//! output pairs disagree and which primary inputs actually matter — the
//! debugging step that follows a failed equivalence check in practice.

use parsweep_aig::Aig;
use parsweep_sim::Cex;

/// The result of diagnosing a counter-example against a miter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnosis {
    /// Indices of miter POs that evaluate to 1 under the counter-example.
    pub firing_pos: Vec<usize>,
    /// A minimized counter-example: PIs reset to 0 wherever doing so
    /// keeps at least one PO firing (greedy, deterministic).
    pub minimized: Cex,
    /// PIs (positions) whose value is essential: flipping them alone
    /// stops every firing PO of the minimized counter-example.
    pub essential_pis: Vec<usize>,
}

/// Diagnoses a counter-example against a miter.
///
/// # Panics
///
/// Panics if the counter-example does not fire any PO (it is not a
/// counter-example for this miter).
pub fn diagnose(miter: &Aig, cex: &Cex) -> Diagnosis {
    let dense = cex.to_dense(miter);
    let fires = |bits: &[bool]| -> Vec<usize> {
        miter
            .eval(bits)
            .iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(i, _)| i)
            .collect()
    };
    let firing_pos = fires(&dense);
    assert!(
        !firing_pos.is_empty(),
        "diagnose called with a non-firing pattern"
    );

    // Greedy minimization: try clearing each set PI; keep the clear if
    // some PO still fires.
    let mut min = dense.clone();
    for i in 0..min.len() {
        if !min[i] {
            continue;
        }
        min[i] = false;
        if fires(&min).is_empty() {
            min[i] = true;
        }
    }

    // Essential PIs: flipping the bit kills every firing PO.
    let mut essential = Vec::new();
    for i in 0..min.len() {
        let mut flipped = min.clone();
        flipped[i] = !flipped[i];
        if fires(&flipped).is_empty() {
            essential.push(i);
        }
    }

    Diagnosis {
        firing_pos,
        minimized: Cex::new(min),
        essential_pis: essential,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsweep_aig::{miter, Aig};

    #[test]
    fn diagnosis_localizes_the_broken_output() {
        // Two 3-output circuits differing only in output 1.
        let build = |bug: bool| {
            let mut aig = Aig::new();
            let xs = aig.add_inputs(4);
            let f0 = aig.and(xs[0], xs[1]);
            let f1 = aig.xor(xs[1], xs[2]);
            let f2 = aig.or(xs[2], xs[3]);
            aig.add_po(f0);
            aig.add_po(if bug { !f1 } else { f1 });
            aig.add_po(f2);
            aig
        };
        let m = miter(&build(false), &build(true)).unwrap();
        // The complemented XOR differs everywhere: all-zero works.
        let cex = Cex::new(vec![false; 4]);
        let d = diagnose(&m, &cex);
        assert_eq!(d.firing_pos, vec![1]);
        assert!(d.minimized.fires(&m));
        // The minimized pattern for a PO that differs everywhere is all
        // zeros, and no single flip can stop it (it differs everywhere).
        assert!(d.minimized.inputs().iter().all(|&b| !b));
        assert!(d.essential_pis.is_empty());
    }

    #[test]
    fn minimization_strips_irrelevant_ones() {
        // Miter fires iff x0 & x1 (left AND vs right const-0).
        let mut a = Aig::new();
        let xs = a.add_inputs(4);
        let f = a.and(xs[0], xs[1]);
        a.add_po(f);
        let mut b = Aig::new();
        b.add_inputs(4);
        b.add_po(parsweep_aig::Lit::FALSE);
        let m = miter(&a, &b).unwrap();
        let cex = Cex::new(vec![true, true, true, true]);
        let d = diagnose(&m, &cex);
        assert_eq!(d.minimized.inputs(), &[true, true, false, false]);
        // Both remaining ones are essential: clearing either stops the PO.
        assert_eq!(d.essential_pis, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "non-firing")]
    fn non_firing_pattern_panics() {
        let mut a = Aig::new();
        let xs = a.add_inputs(2);
        let f = a.and(xs[0], xs[1]);
        a.add_po(f);
        let m = miter(&a, &a.clone()).unwrap();
        diagnose(&m, &Cex::new(vec![false, false]));
    }
}

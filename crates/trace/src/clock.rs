//! One clock for every report: wall time behind a trait, so tests inject
//! a deterministic source.
//!
//! The stack reports three kinds of time — raw wall clock (service queue
//! wait, `PortfolioResult::seconds`), the executor's deterministic
//! *modeled* time, and phase breakdowns mixing both. Routing every wall
//! reading through [`Clock`] keeps the labels honest (a `Duration` from
//! here is always wall-since-epoch, never modeled units) and lets tests
//! pin time with [`ManualClock`] instead of sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotone time source measured as a [`Duration`] since the clock's
/// own epoch. Subtracting two readings gives elapsed wall time (or, for a
/// [`ManualClock`], exactly what the test advanced).
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;

    /// Elapsed time since an earlier reading (saturating at zero, so a
    /// reading from *after* `since` never underflows).
    fn since(&self, since: Duration) -> Duration {
        self.now().saturating_sub(since)
    }
}

/// The real wall clock: readings are `Instant`-based and monotone.
#[derive(Clone, Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A deterministic clock that only moves when told to. Clones share the
/// same underlying time, so a test can hold one handle while the system
/// under test holds another.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute reading since its epoch.
    pub fn set(&self, d: Duration) {
        self.nanos
            .store(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert_eq!(c.since(b + Duration::from_secs(100)), Duration::ZERO);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new();
        let handle = c.clone();
        assert_eq!(c.now(), Duration::ZERO);
        handle.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(250));
        assert_eq!(
            c.since(Duration::from_millis(100)),
            Duration::from_millis(150)
        );
        c.set(Duration::from_secs(1));
        assert_eq!(handle.now(), Duration::from_secs(1));
    }

    #[test]
    fn clock_trait_objects_are_shareable() {
        let c: Arc<dyn Clock> = Arc::new(ManualClock::new());
        let c2 = Arc::clone(&c);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _ = c2.now();
            });
        });
        assert_eq!(c.now(), Duration::ZERO);
    }
}

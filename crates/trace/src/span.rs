//! The span collector: enter/exit events with nesting, thread labels and
//! typed arguments.
//!
//! Compiled in only under the `enabled` feature; the other half of this
//! file is the zero-cost stub surface with identical signatures, so call
//! sites never mention the feature.

/// Chrome-trace event phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span begin.
    B,
    /// Span end.
    E,
    /// Instant event.
    I,
    /// Metadata (thread labels).
    M,
}

impl Phase {
    /// The single-letter Chrome-trace `ph` value.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::B => "B",
            Phase::E => "E",
            Phase::I => "I",
            Phase::M => "M",
        }
    }
}

/// A typed span/event argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counters, modeled time units, widths).
    U64(u64),
    /// Floating point (seconds, rates).
    F64(f64),
    /// Free-form text (labels, verdicts).
    Str(String),
}

/// One recorded trace event. `ts_us` is microseconds since the collector's
/// process-wide epoch; `tid` is a dense per-thread id assigned at first
/// use.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event (span) name.
    pub name: String,
    /// Category, e.g. `"engine"`, `"kernel"`, `"svc"`.
    pub cat: &'static str,
    /// Begin / end / instant / metadata.
    pub ph: Phase,
    /// Microseconds since the collector epoch (monotone per thread).
    pub ts_us: u64,
    /// Dense thread id.
    pub tid: u64,
    /// Typed arguments (attached to `E` events for spans, so begin stays
    /// cheap and arguments can be computed during the span).
    pub args: Vec<(&'static str, ArgValue)>,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{ArgValue, Phase, TraceEvent};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::Instant;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        static LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    fn now_us() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
    }

    fn tid() -> u64 {
        TID.with(|t| *t)
    }

    fn push(event: TraceEvent) {
        EVENTS
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// True when recording is switched on at runtime.
    #[inline]
    pub fn active() -> bool {
        ACTIVE.load(Ordering::Relaxed)
    }

    /// Switches recording on (the collector epoch starts at the first
    /// recorded event).
    pub fn enable() {
        ACTIVE.store(true, Ordering::Relaxed);
    }

    /// Switches recording off; already-open spans still record their end
    /// events so the stream stays balanced.
    pub fn disable() {
        ACTIVE.store(false, Ordering::Relaxed);
    }

    /// Labels the current thread in the exported trace (worker names,
    /// stream drivers). Repeat calls with the same label are free.
    pub fn set_thread_label(label: &str) {
        if !active() {
            return;
        }
        let changed = LABEL.with(|l| {
            let mut l = l.borrow_mut();
            if l.as_deref() == Some(label) {
                false
            } else {
                *l = Some(label.to_string());
                true
            }
        });
        if changed {
            push(TraceEvent {
                name: "thread_name".into(),
                cat: "__metadata",
                ph: Phase::M,
                ts_us: now_us(),
                tid: tid(),
                args: vec![("name", ArgValue::Str(label.to_string()))],
            });
        }
    }

    /// An RAII span: records a begin event at creation and an end event —
    /// carrying any arguments added during its lifetime — when dropped.
    #[must_use = "a span measures its guard's lifetime"]
    pub struct SpanGuard {
        live: bool,
        name: String,
        cat: &'static str,
        tid: u64,
        args: Vec<(&'static str, ArgValue)>,
    }

    /// Opens a span on the current thread. Inert (one atomic load) while
    /// recording is off.
    pub fn span(cat: &'static str, name: &str) -> SpanGuard {
        if !active() {
            return SpanGuard {
                live: false,
                name: String::new(),
                cat,
                tid: 0,
                args: Vec::new(),
            };
        }
        let tid = tid();
        let name = name.to_string();
        push(TraceEvent {
            name: name.clone(),
            cat,
            ph: Phase::B,
            ts_us: now_us(),
            tid,
            args: Vec::new(),
        });
        SpanGuard {
            live: true,
            name,
            cat,
            tid,
            args: Vec::new(),
        }
    }

    /// A span for one kernel launch, tagged with its width.
    pub fn kernel_span(label: &str, width: usize) -> SpanGuard {
        let mut sp = span("kernel", label);
        sp.arg_u64("width", width as u64);
        sp
    }

    impl SpanGuard {
        /// Attaches an integer argument to the span's end event.
        pub fn arg_u64(&mut self, key: &'static str, value: u64) {
            if self.live {
                self.args.push((key, ArgValue::U64(value)));
            }
        }

        /// Attaches a float argument to the span's end event.
        pub fn arg_f64(&mut self, key: &'static str, value: f64) {
            if self.live {
                self.args.push((key, ArgValue::F64(value)));
            }
        }

        /// Attaches a text argument to the span's end event.
        pub fn arg_str(&mut self, key: &'static str, value: &str) {
            if self.live {
                self.args.push((key, ArgValue::Str(value.to_string())));
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if !self.live {
                return;
            }
            // The end event is recorded even if tracing was disabled
            // mid-span, keeping every B matched by an E.
            push(TraceEvent {
                name: std::mem::take(&mut self.name),
                cat: self.cat,
                ph: Phase::E,
                ts_us: now_us(),
                tid: self.tid,
                args: std::mem::take(&mut self.args),
            });
        }
    }

    /// Records a zero-duration instant event with arguments.
    pub fn instant(cat: &'static str, name: &str, args: Vec<(&'static str, ArgValue)>) {
        if !active() {
            return;
        }
        push(TraceEvent {
            name: name.to_string(),
            cat,
            ph: Phase::I,
            ts_us: now_us(),
            tid: tid(),
            args,
        });
    }

    /// Drains all recorded events (they are removed from the collector).
    pub fn take_events() -> Vec<TraceEvent> {
        std::mem::take(&mut *EVENTS.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Copies all recorded events without draining.
    pub fn snapshot_events() -> Vec<TraceEvent> {
        EVENTS
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    #![allow(clippy::missing_const_for_fn)]
    use super::{ArgValue, TraceEvent};

    /// Always false: the collector is not compiled in.
    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn enable() {}

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn disable() {}

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn set_thread_label(_label: &str) {}

    /// Zero-sized stand-in for the real guard; all methods compile away.
    #[must_use = "a span measures its guard's lifetime"]
    pub struct SpanGuard;

    /// Returns a zero-sized guard; compiles to nothing.
    #[inline(always)]
    pub fn span(_cat: &'static str, _name: &str) -> SpanGuard {
        SpanGuard
    }

    /// Returns a zero-sized guard; compiles to nothing.
    #[inline(always)]
    pub fn kernel_span(_label: &str, _width: usize) -> SpanGuard {
        SpanGuard
    }

    impl SpanGuard {
        /// No-op without the `enabled` feature.
        #[inline(always)]
        pub fn arg_u64(&mut self, _key: &'static str, _value: u64) {}

        /// No-op without the `enabled` feature.
        #[inline(always)]
        pub fn arg_f64(&mut self, _key: &'static str, _value: f64) {}

        /// No-op without the `enabled` feature.
        #[inline(always)]
        pub fn arg_str(&mut self, _key: &'static str, _value: &str) {}
    }

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn instant(_cat: &'static str, _name: &str, _args: Vec<(&'static str, ArgValue)>) {}

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn take_events() -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn snapshot_events() -> Vec<TraceEvent> {
        Vec::new()
    }
}

pub use imp::{
    active, disable, enable, instant, kernel_span, set_thread_label, snapshot_events, span,
    take_events, SpanGuard,
};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // The collector is process-global, so everything that records runs in
    // this one test (cargo may run tests concurrently in one process).
    #[test]
    fn spans_nest_and_balance() {
        enable();
        {
            let mut outer = span("test", "outer");
            outer.arg_u64("n", 7);
            set_thread_label("span-test-thread");
            {
                let _inner = span("test", "inner");
                instant("test", "tick", vec![("k", ArgValue::Str("v".into()))]);
            }
        }
        disable();
        let events = take_events();
        let b: Vec<_> = events.iter().filter(|e| e.ph == Phase::B).collect();
        let e: Vec<_> = events.iter().filter(|e| e.ph == Phase::E).collect();
        assert_eq!(b.len(), 2);
        assert_eq!(e.len(), 2);
        // Nesting: inner closes before outer on the same thread.
        assert_eq!(b[0].name, "outer");
        assert_eq!(b[1].name, "inner");
        assert_eq!(e[0].name, "inner");
        assert_eq!(e[1].name, "outer");
        assert_eq!(b[0].tid, e[1].tid);
        // Args ride on the end event.
        assert_eq!(e[1].args, vec![("n", ArgValue::U64(7))]);
        assert!(events.iter().any(|ev| ev.ph == Phase::I));
        assert!(events
            .iter()
            .any(|ev| ev.ph == Phase::M && ev.name == "thread_name"));
        // Timestamps are monotone per thread.
        let mut last = 0;
        for ev in events.iter().filter(|ev| ev.tid == b[0].tid) {
            assert!(ev.ts_us >= last);
            last = ev.ts_us;
        }
        // Inactive spans record nothing.
        let _ = span("test", "after-disable");
        assert!(take_events().is_empty());
    }
}

//! Prometheus-style text metrics: atomic histograms plus exposition-format
//! rendering helpers.
//!
//! These are always compiled (no feature gate): metric updates sit on
//! per-job paths, not per-kernel paths, and the service's `metrics` op
//! must answer even in builds without the span collector.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket latency histogram, safe to observe from many threads.
///
/// Values are in seconds; the running sum is kept in integer microseconds
/// so concurrent observes need no compare-and-swap loop.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

/// A point-in-time copy of a [`Histogram`], with *cumulative* bucket
/// counts as the Prometheus exposition format expects.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds (seconds) of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// Cumulative count of observations `<=` each bound.
    pub cumulative: Vec<u64>,
    /// Total observations (the implicit `+Inf` bucket).
    pub count: u64,
    /// Sum of all observed values, in seconds.
    pub sum_seconds: f64,
}

impl Histogram {
    /// A histogram with the given ascending finite bucket bounds (in
    /// seconds). An implicit `+Inf` bucket catches the tail.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Default bounds for service latencies: 100µs to 10s, roughly
    /// logarithmic.
    pub fn latency_default() -> Self {
        Self::new(&[
            0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
            2.5, 5.0, 10.0,
        ])
    }

    /// Records one observation (in seconds; negative values clamp to 0).
    pub fn observe(&self, seconds: f64) {
        let v = seconds.max(0.0);
        // Non-cumulative per-bucket counts internally; snapshot cumulates.
        if let Some(i) = self.bounds.iter().position(|&b| v <= b) {
            self.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state with cumulative bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(self.buckets.len());
        let mut running = 0u64;
        for b in &self.buckets {
            running += b.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            cumulative,
            count: self.count.load(Ordering::Relaxed),
            sum_seconds: self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// Process-global counters for the incremental-resimulation machinery:
/// support-pruned rounds, dirty-cone resim, and in-place class refinement.
///
/// The engine increments these on per-round paths (never per kernel), and
/// the service's `metrics` op renders them next to the launch profile, so
/// a fleet exposes how much simulation work incrementality is saving.
#[derive(Debug, Default)]
pub struct SimCounters {
    /// Support-pruned simulation rounds (G refinement rounds and L phases
    /// that simulated only live cones instead of the whole miter).
    pub pruned_rounds: AtomicU64,
    /// Nodes outside the live cone that pruned rounds never launched
    /// (the saving relative to full resimulation).
    pub pruned_nodes_skipped: AtomicU64,
    /// Nodes whose signature words were memoized across a miter rewrite
    /// by the dirty-cone resimulator (one copy launch, no re-evaluation).
    pub resim_clean_nodes: AtomicU64,
    /// Nodes re-launched as the dirty frontier (TFO of merged nodes).
    pub resim_dirty_nodes: AtomicU64,
    /// Equivalence classes split in place by fresh-pattern refinement,
    /// instead of rebucketing every node from scratch.
    pub classes_refined: AtomicU64,
    /// Signature-column levels retired from the resident window to the
    /// spill tier by level-windowed streaming.
    pub window_spills: AtomicU64,
    /// Signature words those retirements moved out of device residency.
    pub window_spilled_words: AtomicU64,
    /// Spilled levels re-materialized on demand (disk-tier segment
    /// fills for cex scans, refinement, or dirty-cone donor reads).
    pub window_fills: AtomicU64,
    /// Signature words those fills brought back.
    pub window_filled_words: AtomicU64,
    /// Candidate merges proven replaceable through observability
    /// don't-care analysis instead of escalating (pairs whose raw
    /// signatures differ only in ODC-masked bits).
    pub odc_masked_merges: AtomicU64,
}

impl SimCounters {
    /// Relaxed add on one counter field.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed load of one counter field.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Number of proof-engine slots in [`ProveCounters`]. The `trace` crate
/// cannot name the engines (they live above it in the crate graph), so the
/// prover maps each engine kind to a fixed slot and the service renders
/// the slot back to its label.
pub const PROVE_ENGINE_SLOTS: usize = 8;

/// Process-global per-engine counters for the adaptive proving dispatcher:
/// which engine won each class, which attempts lost or were cancelled by a
/// faster rival, and the wall time each engine consumed (winners *and*
/// losers — the difficulty model charges both).
///
/// Indexed by engine slot (see [`PROVE_ENGINE_SLOTS`]); the service's
/// `metrics` op renders these as `parsweep_prove_engine_*` with an
/// `engine` label.
#[derive(Debug)]
pub struct ProveCounters {
    /// Attempts that produced the winning verdict, per engine slot.
    pub wins: [AtomicU64; PROVE_ENGINE_SLOTS],
    /// Attempts that ran to completion without deciding (lost), per slot.
    pub losses: [AtomicU64; PROVE_ENGINE_SLOTS],
    /// Attempts cancelled at a poll point (a rival decided first, or the
    /// budget tripped), per slot.
    pub cancelled: [AtomicU64; PROVE_ENGINE_SLOTS],
    /// Attempts skipped by admissibility or routing, per slot.
    pub skipped: [AtomicU64; PROVE_ENGINE_SLOTS],
    /// Total wall time charged to each engine, in integer microseconds.
    pub elapsed_micros: [AtomicU64; PROVE_ENGINE_SLOTS],
}

/// The process-global [`ProveCounters`] instance.
pub fn prove_counters() -> &'static ProveCounters {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static COUNTERS: ProveCounters = ProveCounters {
        wins: [ZERO; PROVE_ENGINE_SLOTS],
        losses: [ZERO; PROVE_ENGINE_SLOTS],
        cancelled: [ZERO; PROVE_ENGINE_SLOTS],
        skipped: [ZERO; PROVE_ENGINE_SLOTS],
        elapsed_micros: [ZERO; PROVE_ENGINE_SLOTS],
    };
    &COUNTERS
}

/// The process-global [`SimCounters`] instance.
pub fn sim_counters() -> &'static SimCounters {
    static COUNTERS: SimCounters = SimCounters {
        pruned_rounds: AtomicU64::new(0),
        pruned_nodes_skipped: AtomicU64::new(0),
        resim_clean_nodes: AtomicU64::new(0),
        resim_dirty_nodes: AtomicU64::new(0),
        classes_refined: AtomicU64::new(0),
        window_spills: AtomicU64::new(0),
        window_spilled_words: AtomicU64::new(0),
        window_fills: AtomicU64::new(0),
        window_filled_words: AtomicU64::new(0),
        odc_masked_merges: AtomicU64::new(0),
    };
    &COUNTERS
}

/// Formats a number the way Prometheus expects: integral values without a
/// trailing `.0`, everything else in plain decimal.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Appends a `counter` metric in exposition format.
pub fn render_counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

/// Appends a labeled `counter` family in exposition format: one `# HELP` /
/// `# TYPE` header, then one `name{labels} value` series per entry.
/// Entries whose value is zero are still rendered, so scrapes see a stable
/// series set. Label values must not contain `"` or `\`.
pub fn render_labeled_counter(
    out: &mut String,
    name: &str,
    help: &str,
    label: &str,
    series: &[(&str, u64)],
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
    for (value, count) in series {
        out.push_str(&format!("{name}{{{label}=\"{value}\"}} {count}\n"));
    }
}

/// Appends a `gauge` metric in exposition format.
pub fn render_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
        fmt_value(value)
    ));
}

/// Appends a `histogram` metric (cumulative `_bucket` series plus `_sum`
/// and `_count`) in exposition format.
pub fn render_histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    for (bound, cum) in snap.bounds.iter().zip(&snap.cumulative) {
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cum}\n",
            fmt_value(*bound)
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
        snap.count,
        fmt_value(snap.sum_seconds),
        snap.count
    ));
}

/// Appends a labeled `gauge` family in exposition format: one `# HELP` /
/// `# TYPE` header, then one `name{labels} value` series per entry.
/// Label values must not contain `"` or `\`.
pub fn render_labeled_gauge(
    out: &mut String,
    name: &str,
    help: &str,
    label: &str,
    series: &[(&str, f64)],
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
    for (value, v) in series {
        out.push_str(&format!(
            "{name}{{{label}=\"{value}\"}} {}\n",
            fmt_value(*v)
        ));
    }
}

/// Appends a labeled `histogram` family in exposition format: one
/// `# HELP` / `# TYPE` header, then each snapshot's `_bucket`/`_sum`/
/// `_count` series tagged with its label value (e.g. per-lane latency).
/// Label values must not contain `"` or `\`.
pub fn render_labeled_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    label: &str,
    series: &[(&str, HistogramSnapshot)],
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    for (value, snap) in series {
        for (bound, cum) in snap.bounds.iter().zip(&snap.cumulative) {
            out.push_str(&format!(
                "{name}_bucket{{{label}=\"{value}\",le=\"{}\"}} {cum}\n",
                fmt_value(*bound)
            ));
        }
        out.push_str(&format!(
            "{name}_bucket{{{label}=\"{value}\",le=\"+Inf\"}} {}\n\
             {name}_sum{{{label}=\"{value}\"}} {}\n\
             {name}_count{{{label}=\"{value}\"}} {}\n",
            snap.count,
            fmt_value(snap.sum_seconds),
            snap.count
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cumulate() {
        let h = Histogram::new(&[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.005);
        h.observe(0.005);
        h.observe(5.0); // tail: +Inf only
        let s = h.snapshot();
        assert_eq!(s.cumulative, vec![1, 3, 3]);
        assert_eq!(s.count, 4);
        assert!((s.sum_seconds - 5.0105).abs() < 1e-6);
    }

    #[test]
    fn histogram_is_thread_safe() {
        let h = Histogram::latency_default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        h.observe(0.002);
                    }
                });
            }
        });
        assert_eq!(h.count(), 400);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[0.1, 0.01]);
    }

    #[test]
    fn labeled_counter_renders_every_series() {
        let mut out = String::new();
        render_labeled_counter(
            &mut out,
            "parsweep_prove_engine_wins_total",
            "Wins per engine.",
            "engine",
            &[("structural", 2), ("sat_sweep", 0)],
        );
        assert!(out.contains("# TYPE parsweep_prove_engine_wins_total counter"));
        assert!(out.contains("parsweep_prove_engine_wins_total{engine=\"structural\"} 2"));
        assert!(
            out.contains("parsweep_prove_engine_wins_total{engine=\"sat_sweep\"} 0"),
            "zero series still rendered"
        );
        for line in out.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn labeled_histogram_renders_per_label_series() {
        let fast = Histogram::new(&[0.01, 0.1]);
        fast.observe(0.005);
        let slow = Histogram::new(&[0.01, 0.1]);
        slow.observe(0.5);
        let mut out = String::new();
        render_labeled_histogram(
            &mut out,
            "parsweep_net_latency_seconds",
            "Per-lane job latency.",
            "lane",
            &[("interactive", fast.snapshot()), ("batch", slow.snapshot())],
        );
        assert_eq!(
            out.matches("# TYPE parsweep_net_latency_seconds histogram")
                .count(),
            1,
            "one family header"
        );
        assert!(
            out.contains("parsweep_net_latency_seconds_bucket{lane=\"interactive\",le=\"0.01\"} 1")
        );
        assert!(out.contains("parsweep_net_latency_seconds_bucket{lane=\"batch\",le=\"+Inf\"} 1"));
        assert!(out.contains("parsweep_net_latency_seconds_count{lane=\"batch\"} 1"));
        for line in out.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn prove_counters_slots_are_independent() {
        let c = prove_counters();
        let before = SimCounters::get(&c.wins[7]);
        SimCounters::add(&c.wins[7], 3);
        assert_eq!(SimCounters::get(&c.wins[7]), before + 3);
        // Other arrays and slots are untouched by the add above.
        let _ = SimCounters::get(&c.losses[7]);
    }

    #[test]
    fn exposition_format_shape() {
        let mut out = String::new();
        render_counter(&mut out, "parsweep_jobs", "Jobs.", 3);
        render_gauge(&mut out, "parsweep_util", "Busy fraction.", 0.5);
        let h = Histogram::new(&[0.01, 0.1]);
        h.observe(0.05);
        render_histogram(&mut out, "parsweep_wait_seconds", "Wait.", &h.snapshot());
        assert!(out.contains("# TYPE parsweep_jobs counter"));
        assert!(out.contains("parsweep_jobs 3"));
        assert!(out.contains("parsweep_util 0.5"));
        assert!(out.contains("parsweep_wait_seconds_bucket{le=\"0.01\"} 0"));
        assert!(out.contains("parsweep_wait_seconds_bucket{le=\"0.1\"} 1"));
        assert!(out.contains("parsweep_wait_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(out.contains("parsweep_wait_seconds_count 1"));
        // Every line is either a comment or `name{labels} value`.
        for line in out.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "malformed line: {line}"
            );
        }
    }
}

//! # parsweep-trace — structured tracing and metrics for the stack
//!
//! The paper's evaluation (Fig. 6/7) attributes runtime to the engine's
//! P/G/L phases and to simulation effort. This crate is the observability
//! layer that makes that attribution reproducible from one run: *spans*
//! instrument the engine (phases, FRAIG rounds, SAT fallback), the device
//! runtime (kernel launches, stream epochs, graph replays) and the job
//! service (submit → shard → worker → cache probe → verdict), and two
//! exporters surface them:
//!
//! * a **Chrome-trace JSON** writer ([`write_chrome_trace`]) producing a
//!   `chrome://tracing` / Perfetto-loadable event array with per-thread
//!   nested spans;
//! * **Prometheus-style text** helpers ([`metrics`]) used by the service's
//!   `metrics` op for counters and latency histograms.
//!
//! Spans carry two kinds of time: **wall time** (the `B`/`E` timestamps)
//! and the executor cost model's deterministic **modeled time** (attached
//! as a span argument by the instrumented crates), so a trace can be
//! compared across machines.
//!
//! ## Zero cost when disabled
//!
//! The span layer is compiled in only under the `enabled` cargo feature
//! (downstream crates forward it as `trace`). Without the feature, every
//! [`span`]/[`instant`] call is an inline empty function returning a
//! zero-sized guard — static dispatch, no atomics, no branches — so tier-1
//! timings are unchanged. With the feature compiled in, recording still
//! only happens after [`enable`] (or the `PARSWEEP_TRACE` environment
//! variable) flips the runtime switch; an inactive compiled-in tracer
//! costs one relaxed atomic load per span.
//!
//! The [`clock`] and [`metrics`] modules are *not* feature-gated: they sit
//! on cold paths (per-job accounting, report formatting) and are the
//! single source of time for reports that must distinguish wall from
//! modeled time — and for tests that inject a deterministic clock.

#![warn(missing_docs)]

pub mod clock;
pub mod metrics;

mod chrome;
mod span;

pub use chrome::{chrome_trace_json, events_to_json, validate_events, write_chrome_trace};
pub use clock::{Clock, ManualClock, WallClock};
pub use span::{
    active, disable, enable, instant, kernel_span, set_thread_label, snapshot_events, span,
    take_events, ArgValue, Phase, SpanGuard, TraceEvent,
};

/// The modeled GPU width used whenever a span or report converts a launch
/// profile into deterministic modeled time — one value shared by the
/// engine's phase spans and the benchmark harness so the numbers compare.
pub const MODEL_CORES: u64 = 4096;

/// True when the span collector is compiled in (the `enabled` feature).
#[inline(always)]
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

/// Reads `PARSWEEP_TRACE`: a non-empty value other than `0` names the
/// Chrome-trace output path. This only reports the request — callers
/// decide whether to [`enable`] (and warn when the collector is not
/// [`compiled`] in).
pub fn env_trace_path() -> Option<String> {
    match std::env::var("PARSWEEP_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_path_rules() {
        // Can't mutate the environment safely in tests that run in
        // parallel; just exercise the accessor.
        let _ = env_trace_path();
        assert_eq!(compiled(), cfg!(feature = "enabled"));
    }
}

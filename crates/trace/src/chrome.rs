//! Chrome-trace export: serializes the collector's events into the
//! `chrome://tracing` / Perfetto JSON array format, plus a structural
//! validator used by tests and CI.

use crate::span::{snapshot_events, ArgValue, Phase, TraceEvent};

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn arg_value_into(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => out.push_str(&n.to_string()),
        ArgValue::F64(f) if f.is_finite() => out.push_str(&f.to_string()),
        ArgValue::F64(_) => out.push_str("null"),
        ArgValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

fn event_into(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, &e.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, e.cat);
    out.push_str("\",\"ph\":\"");
    out.push_str(e.ph.as_str());
    out.push_str("\",\"ts\":");
    out.push_str(&e.ts_us.to_string());
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&e.tid.to_string());
    if e.ph == Phase::I {
        // Thread-scoped instant, so the viewer draws it in its lane.
        out.push_str(",\"s\":\"t\"");
    }
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(out, k);
            out.push_str("\":");
            arg_value_into(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

/// Serializes events to a Chrome-trace JSON array string.
pub fn events_to_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 4);
    out.push_str("[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        event_into(&mut out, e);
    }
    out.push_str("\n]\n");
    out
}

/// Serializes everything recorded so far (without draining the collector)
/// to a Chrome-trace JSON array. Empty (`[]`) when the collector is not
/// compiled in or nothing was recorded.
pub fn chrome_trace_json() -> String {
    events_to_json(&snapshot_events())
}

/// Writes the current trace to `path` as Chrome-trace JSON, validating
/// the event stream first (an unbalanced or out-of-order stream is a bug
/// in the instrumentation, better caught at export than in the viewer).
pub fn write_chrome_trace(path: &str) -> std::io::Result<()> {
    let events = snapshot_events();
    if let Err(msg) = validate_events(&events) {
        return Err(std::io::Error::other(format!("invalid trace: {msg}")));
    }
    std::fs::write(path, events_to_json(&events))
}

/// Checks structural well-formedness: per thread, every `B` is closed by
/// a matching `E` in LIFO order and timestamps never go backwards.
pub fn validate_events(events: &[TraceEvent]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut stacks: HashMap<u64, Vec<&str>> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    for e in events {
        let last = last_ts.entry(e.tid).or_insert(0);
        if e.ts_us < *last {
            return Err(format!(
                "timestamp regression on tid {}: {} after {} ({})",
                e.tid, e.ts_us, last, e.name
            ));
        }
        *last = e.ts_us;
        match e.ph {
            Phase::B => stacks.entry(e.tid).or_default().push(&e.name),
            Phase::E => match stacks.entry(e.tid).or_default().pop() {
                Some(open) if open == e.name => {}
                Some(open) => {
                    return Err(format!(
                        "tid {}: E \"{}\" closes open span \"{}\"",
                        e.tid, e.name, open
                    ))
                }
                None => return Err(format!("tid {}: E \"{}\" without a B", e.tid, e.name)),
            },
            Phase::I | Phase::M => {}
        }
    }
    for (tid, stack) in stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span \"{open}\" never closed"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ph: Phase, ts: u64, tid: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: "test",
            ph,
            ts_us: ts,
            tid,
            args: Vec::new(),
        }
    }

    #[test]
    fn valid_stream_passes() {
        let events = vec![
            ev("a", Phase::B, 0, 1),
            ev("b", Phase::B, 1, 1),
            ev("b", Phase::E, 2, 1),
            ev("x", Phase::B, 0, 2),
            ev("tick", Phase::I, 3, 1),
            ev("a", Phase::E, 4, 1),
            ev("x", Phase::E, 9, 2),
        ];
        assert_eq!(validate_events(&events), Ok(()));
        let json = events_to_json(&events);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"s\":\"t\""));
    }

    #[test]
    fn mismatched_close_fails() {
        let events = vec![ev("a", Phase::B, 0, 1), ev("b", Phase::E, 1, 1)];
        assert!(validate_events(&events)
            .unwrap_err()
            .contains("closes open"));
    }

    #[test]
    fn unclosed_span_fails() {
        let events = vec![ev("a", Phase::B, 0, 1)];
        assert!(validate_events(&events)
            .unwrap_err()
            .contains("never closed"));
    }

    #[test]
    fn timestamp_regression_fails() {
        let events = vec![ev("a", Phase::B, 5, 1), ev("a", Phase::E, 3, 1)];
        assert!(validate_events(&events).unwrap_err().contains("regression"));
    }

    #[test]
    fn args_are_escaped_json() {
        let mut e = ev("quote\"and\\slash", Phase::B, 0, 1);
        e.args = vec![
            ("count", ArgValue::U64(3)),
            ("rate", ArgValue::F64(0.5)),
            ("label", ArgValue::Str("line\nbreak".into())),
        ];
        let json = events_to_json(&[e]);
        assert!(json.contains("quote\\\"and\\\\slash"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"rate\":0.5"));
        assert!(json.contains("line\\nbreak"));
    }
}
